//! The `RunLog`: a sealed, ordered record of everything a run's scheduler
//! observed and decided.
//!
//! A log captures the three nondeterminism seams of a run (DESIGN.md §12):
//! the root [`RunSeed`](easched_core::RunSeed) and every named derivation
//! taken from it, the per-invocation observation stream each backend
//! returned (post-chaos — what the scheduler *saw*, faults included), and
//! the ordered [`DecisionRecord`] stream the scheduler emitted. Feeding the
//! observations back through a
//! [`ReplayBackend`](crate::replay::ReplayBackend) re-executes the run's
//! decision logic byte-identically; diffing the re-run's records against
//! the recorded stream pinpoints the first divergence.
//!
//! The on-disk form follows the v3 table journal's idiom: a line-oriented
//! text format where every line carries a trailing `crc <hex>` FNV-1a seal
//! and floats are serialized as `{:016x}` bit patterns (byte-exact, NaN
//! included). Parsing truncates at the first unsealed line, so a log torn
//! mid-write by a crash loses only its tail; the `end` footer
//! distinguishes a truncated log from a complete one.

use easched_core::fnv1a64;
use easched_runtime::vfs::Vfs;
use easched_runtime::Observation;
use easched_sim::CounterSnapshot;
use easched_telemetry::DecisionRecord;
use std::io;
use std::path::Path;

/// Format version written in the header. Bump when the line grammar
/// changes; [`RunLog::from_text`] refuses versions it does not know, so a
/// future reader can dispatch on this field and keep old logs replayable
/// (ROADMAP: de-vendoring `rand` shifts future PRNG streams, but logs
/// carry their own observations, so old logs replay unchanged).
pub const FORMAT_VERSION: u32 = 1;

/// The version written when a log carries admission-layer events
/// (overload runs). Single-tenant recordings keep writing v1, so every
/// pre-tenancy log — committed fixtures included — stays byte-stable.
pub const FORMAT_VERSION_ADMISSION: u32 = 2;

/// The version written when a log carries fleet replication events
/// (`easched fleet` recordings, DESIGN.md §15). Non-fleet recordings keep
/// writing v1/v2, so every pre-fleet log — committed fixtures included —
/// stays byte-stable.
pub const FORMAT_VERSION_FLEET: u32 = 3;

/// One backend call a scheduler made during an invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepCall {
    /// A `profile_step(chunk)` call.
    Profile {
        /// The GPU chunk size the scheduler requested.
        chunk: u64,
    },
    /// A `run_split(alpha)` call.
    Split {
        /// The offload ratio the scheduler executed at.
        alpha: f64,
    },
}

/// One recorded backend call: what was asked, what came back, and how many
/// items were left afterwards.
///
/// `remaining_after` is recorded separately from the observation because a
/// fault-corrupted observation legitimately *lies* about item counts (e.g.
/// [`Fault::GpuHang`](easched_runtime::Fault) reports zero GPU items for a
/// chunk that really ran); the replay backend must track the truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedStep {
    /// The call the scheduler made.
    pub call: StepCall,
    /// The (possibly chaos-corrupted) observation the scheduler saw.
    pub obs: Observation,
    /// Ground-truth items remaining after the call.
    pub remaining_after: u64,
}

/// One admission-layer decision in an overloaded run (v2 logs only).
///
/// The admission controller is deterministic — replay re-runs it and
/// demands the identical stream — so these records are both a trace for
/// humans and a cross-check for the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionRecord {
    /// The admission tick the decision was made on.
    pub tick: u64,
    /// The tenant's registry index.
    pub tenant: u64,
    /// The brownout rung at decision time ([`BrownoutLevel::code`]).
    ///
    /// [`BrownoutLevel::code`]: easched_runtime::BrownoutLevel::code
    pub level: u8,
    /// What happened: 0 admit, 1 queue, 2 shed, 3 execution-start marker
    /// (delimits the invocation group of a drained request).
    pub verdict: u8,
    /// Verdict argument: the ticket (admit/queue/exec), the queue
    /// position packed with the ticket, or the shed retry-after seconds
    /// as `f64` bits.
    pub arg: u64,
}

/// One entry in a run's ordered event stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A named seed derivation taken from the root (`index` for
    /// per-invocation streams within a domain).
    Derive {
        /// Derivation domain, e.g. `"chaos"` or `"workload/BS"`.
        domain: String,
        /// Stream index within the domain, if indexed.
        index: Option<u64>,
        /// The derived seed value.
        seed: u64,
    },
    /// The start of one kernel invocation.
    Invocation {
        /// Kernel id the scheduler was invoked with.
        kernel: u64,
        /// Items in the invocation.
        items: u64,
        /// The backend's `gpu_profile_size()` (replay must answer the
        /// same value, or the scheduler would pick different chunks).
        profile_size: u64,
        /// Human label (workload abbreviation), informational only.
        label: String,
    },
    /// One backend call within the current invocation.
    Step(RecordedStep),
    /// The telemetry record the scheduler emitted for the current
    /// invocation.
    Decision(DecisionRecord),
    /// One admission-layer decision (overload recordings; forces v2).
    Admission(AdmissionRecord),
    /// One fleet replication event (fleet recordings; forces v3).
    ///
    /// The payload is an opaque single line owned by `easched-fleet` —
    /// the log stores and seals it verbatim, and fleet replay parses it
    /// back with the fleet crate's own grammar. Keeping the grammar out
    /// of this crate means the replication protocol can evolve without a
    /// run-log version bump, exactly like decision records own their
    /// word encoding.
    Fleet {
        /// The fleet event line, verbatim (no newlines).
        line: String,
    },
}

/// A complete (or torn-tail-truncated) recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLog {
    /// The format version this log serializes as ([`FORMAT_VERSION`] for
    /// single-tenant runs, [`FORMAT_VERSION_ADMISSION`] when the stream
    /// carries admission events).
    pub version: u32,
    /// The run's root seed (`RunSeed::root()`).
    pub root: u64,
    /// FNV-1a fingerprint of the power model text the scheduler ran with.
    pub platform_fp: u64,
    /// FNV-1a fingerprint of the scheduler configuration (`Debug` form).
    pub config_fp: u64,
    /// The ordered event stream.
    pub events: Vec<Event>,
    /// Whether the `end` footer was present and consistent. A `false`
    /// here means the tail was torn (crash mid-record): the surviving
    /// prefix is still replayable.
    pub complete: bool,
}

/// Why a byte stream failed to parse as a [`RunLog`] at all (tail
/// truncation is *not* an error — see [`RunLog::complete`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The header magic line is missing or unsealed.
    NotARunLog,
    /// The header declares a format version this reader does not know.
    UnknownVersion(u32),
    /// A sealed-and-valid header line is malformed (corruption that FNV
    /// happened to miss, or a writer bug).
    MalformedHeader(String),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::NotARunLog => write!(f, "not an easched run log"),
            LogError::UnknownVersion(v) => write!(f, "unknown run-log format version {v}"),
            LogError::MalformedHeader(line) => write!(f, "malformed run-log header: {line:?}"),
        }
    }
}

impl std::error::Error for LogError {}

impl RunLog {
    /// Serializes the log, every line sealed.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        seal_line(&mut out, &format!("easched-runlog v{}", self.version));
        seal_line(&mut out, &format!("root {:016x}", self.root));
        seal_line(&mut out, &format!("platform {:016x}", self.platform_fp));
        seal_line(&mut out, &format!("config {:016x}", self.config_fp));
        for event in &self.events {
            seal_line(&mut out, &event_line(event));
        }
        seal_line(&mut out, &format!("end {}", self.events.len()));
        out
    }

    /// Writes the serialized log through a [`Vfs`] — the storage-chaos
    /// seam (DESIGN.md §16). With [`StdFs`](easched_runtime::vfs::StdFs)
    /// this is `fs::write` plus an fsync; under a chaos fs the write can
    /// fail, which is the point.
    pub fn save_with(&self, vfs: &dyn Vfs, path: &Path) -> io::Result<()> {
        vfs.write(path, self.to_text().as_bytes())?;
        let mut file = vfs.open_write(path)?;
        file.sync_all()
    }

    /// [`save_with`](RunLog::save_with) under fault injection: retries up
    /// to `attempts` times, advancing the chaos fs's op counter past the
    /// fault window each round. Returns how many attempts failed before
    /// one stuck, or the last error once the budget is spent — the
    /// CLI-level twin of the store's degrade-and-re-arm loop.
    pub fn save_with_retries(&self, vfs: &dyn Vfs, path: &Path, attempts: u32) -> io::Result<u32> {
        let mut failed = 0;
        loop {
            match self.save_with(vfs, path) {
                Ok(()) => return Ok(failed),
                Err(e) if failed + 1 >= attempts => return Err(e),
                Err(_) => failed += 1,
            }
        }
    }

    /// Parses a log, tolerating a torn tail: the first line whose seal or
    /// grammar fails truncates the event stream there (and clears
    /// [`complete`](RunLog::complete)). Only a broken *header* is a hard
    /// error — without root and fingerprints there is nothing to replay.
    pub fn from_text(text: &str) -> Result<RunLog, LogError> {
        let mut lines = text.lines();
        let magic = lines.next().and_then(unseal).ok_or(LogError::NotARunLog)?;
        let version = magic
            .strip_prefix("easched-runlog v")
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or(LogError::NotARunLog)?;
        if version != FORMAT_VERSION
            && version != FORMAT_VERSION_ADMISSION
            && version != FORMAT_VERSION_FLEET
        {
            return Err(LogError::UnknownVersion(version));
        }
        let mut header = |tag: &str| -> Result<u64, LogError> {
            let line = lines.next().and_then(unseal).ok_or(LogError::NotARunLog)?;
            line.strip_prefix(tag)
                .and_then(|rest| u64::from_str_radix(rest.trim(), 16).ok())
                .ok_or_else(|| LogError::MalformedHeader(line.to_string()))
        };
        let root = header("root ")?;
        let platform_fp = header("platform ")?;
        let config_fp = header("config ")?;

        let mut events = Vec::new();
        let mut complete = false;
        for line in lines {
            let Some(body) = unseal(line) else { break };
            if let Some(count) = body.strip_prefix("end ") {
                complete = count.trim().parse::<usize>() == Ok(events.len());
                break;
            }
            match parse_event(body) {
                Some(event) => events.push(event),
                None => break,
            }
        }
        Ok(RunLog {
            version,
            root,
            platform_fp,
            config_fp,
            events,
            complete,
        })
    }

    /// The recorded decision stream, in emission order.
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Decision(r) => Some(*r),
                _ => None,
            })
            .collect()
    }

    /// The recorded admission-layer decisions, in order (empty for v1
    /// logs).
    pub fn admissions(&self) -> Vec<AdmissionRecord> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Admission(r) => Some(*r),
                _ => None,
            })
            .collect()
    }

    /// The recorded fleet replication lines, in order (empty for v1/v2
    /// logs). The fleet crate owns the line grammar.
    pub fn fleet_lines(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Fleet { line } => Some(line.as_str()),
                _ => None,
            })
            .collect()
    }

    /// The recorded invocations, each with its backend-call steps in
    /// order — the replay backend's feed.
    pub fn invocations(&self) -> Vec<LoggedInvocation<'_>> {
        let mut out: Vec<LoggedInvocation<'_>> = Vec::new();
        for event in &self.events {
            match event {
                Event::Invocation {
                    kernel,
                    items,
                    profile_size,
                    label,
                } => out.push(LoggedInvocation {
                    kernel: *kernel,
                    items: *items,
                    profile_size: *profile_size,
                    label,
                    steps: Vec::new(),
                }),
                Event::Step(step) => {
                    if let Some(inv) = out.last_mut() {
                        inv.steps.push(*step);
                    }
                }
                Event::Derive { .. }
                | Event::Decision(_)
                | Event::Admission(_)
                | Event::Fleet { .. } => {}
            }
        }
        out
    }

    /// Cuts the log to its first `offset` events — the prefix an SLO
    /// exemplar names (`easched replay --at <offset>`) — then backs the
    /// cut off to the last complete invocation boundary, dropping any
    /// trailing `Invocation`/`Step` events whose [`DecisionRecord`] the
    /// prefix does not contain. The slice is a well-formed, complete log
    /// in its own right: every invocation it carries replays, and an
    /// overload replay of the slice reproduces the sliced stream line
    /// for line before running past the cut.
    pub fn slice_at(&self, offset: u64) -> RunLog {
        let take = (offset as usize).min(self.events.len());
        let mut events: Vec<Event> = self.events[..take].to_vec();
        while matches!(
            events.last(),
            Some(Event::Invocation { .. } | Event::Step(_))
        ) {
            events.pop();
        }
        RunLog {
            version: self.version,
            root: self.root,
            platform_fp: self.platform_fp,
            config_fp: self.config_fp,
            events,
            complete: true,
        }
    }

    /// Corrupts the `index`-th recorded step (counting across the whole
    /// run) by scaling its observed energy ×1.5 — an intentional
    /// divergence for exercising the bisect reporter. Returns `false` if
    /// the log has fewer steps.
    pub fn perturb_step(&mut self, index: usize) -> bool {
        let mut seen = 0;
        for event in &mut self.events {
            if let Event::Step(step) = event {
                if seen == index {
                    step.obs.energy_joules = step.obs.energy_joules * 1.5 + 1.0;
                    return true;
                }
                seen += 1;
            }
        }
        false
    }
}

/// One invocation as recorded in a log (borrowed view).
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedInvocation<'a> {
    /// Kernel id.
    pub kernel: u64,
    /// Items in the invocation.
    pub items: u64,
    /// Recorded `gpu_profile_size()`.
    pub profile_size: u64,
    /// Workload label.
    pub label: &'a str,
    /// Backend calls, in order.
    pub steps: Vec<RecordedStep>,
}

fn seal_line(out: &mut String, body: &str) {
    debug_assert!(!body.contains('\n'), "run-log lines are single lines");
    out.push_str(body);
    out.push_str(&format!(" crc {:016x}\n", fnv1a64(body.as_bytes())));
}

/// Strips and verifies the trailing seal; `None` if absent or wrong.
fn unseal(line: &str) -> Option<&str> {
    let at = line.rfind(" crc ")?;
    let (body, seal) = line.split_at(at);
    let seal = u64::from_str_radix(seal.trim_start_matches(" crc ").trim(), 16).ok()?;
    (fnv1a64(body.as_bytes()) == seal).then_some(body)
}

fn event_line(event: &Event) -> String {
    match event {
        Event::Derive {
            domain,
            index,
            seed,
        } => {
            let idx = index.map_or("-".to_string(), |i| i.to_string());
            format!("derive {} {idx} {seed:016x}", sanitize(domain))
        }
        Event::Invocation {
            kernel,
            items,
            profile_size,
            label,
        } => format!(
            "invocation {kernel:016x} {items} {profile_size} {}",
            sanitize(label)
        ),
        Event::Step(step) => {
            let call = match step.call {
                StepCall::Profile { chunk } => format!("profile {chunk}"),
                StepCall::Split { alpha } => format!("split {:016x}", alpha.to_bits()),
            };
            format!(
                "step {call} {} {}",
                step.remaining_after,
                obs_words(&step.obs)
            )
        }
        Event::Decision(record) => {
            let words: Vec<String> = record
                .encode()
                .iter()
                .map(|w| format!("{w:016x}"))
                .collect();
            format!("decision {} {}", record.seq, words.join(" "))
        }
        Event::Admission(r) => format!(
            "admission {} {} {} {} {:016x}",
            r.tick, r.tenant, r.level, r.verdict, r.arg
        ),
        // The payload is verbatim (it may itself carry an inner seal);
        // only newlines would break the line grammar, and the fleet
        // writer never produces them.
        Event::Fleet { line } => format!("fleet {}", line.replace('\n', " ")),
    }
}

/// Whitespace would break the line grammar; labels and domains are
/// code-chosen, so just squash any stray space.
fn sanitize(s: &str) -> String {
    s.replace(char::is_whitespace, "_")
}

fn obs_words(obs: &Observation) -> String {
    format!(
        "{:016x} {} {} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x}",
        obs.elapsed.to_bits(),
        obs.cpu_items,
        obs.gpu_items,
        obs.cpu_time.to_bits(),
        obs.gpu_time.to_bits(),
        obs.energy_joules.to_bits(),
        obs.counters.instructions.to_bits(),
        obs.counters.loads.to_bits(),
        obs.counters.l3_misses.to_bits(),
    )
}

fn parse_event(body: &str) -> Option<Event> {
    // Fleet lines are opaque to this crate and may contain arbitrary
    // spacing — take the rest of the line verbatim instead of word-
    // splitting it.
    if let Some(line) = body.strip_prefix("fleet ") {
        return Some(Event::Fleet {
            line: line.to_string(),
        });
    }
    let mut parts = body.split_whitespace();
    match parts.next()? {
        "derive" => {
            let domain = parts.next()?.to_string();
            let index = match parts.next()? {
                "-" => None,
                i => Some(i.parse().ok()?),
            };
            let seed = u64::from_str_radix(parts.next()?, 16).ok()?;
            end_of(parts)?;
            Some(Event::Derive {
                domain,
                index,
                seed,
            })
        }
        "invocation" => {
            let kernel = u64::from_str_radix(parts.next()?, 16).ok()?;
            let items = parts.next()?.parse().ok()?;
            let profile_size = parts.next()?.parse().ok()?;
            let label = parts.next()?.to_string();
            end_of(parts)?;
            Some(Event::Invocation {
                kernel,
                items,
                profile_size,
                label,
            })
        }
        "step" => {
            let call = match parts.next()? {
                "profile" => StepCall::Profile {
                    chunk: parts.next()?.parse().ok()?,
                },
                "split" => StepCall::Split {
                    alpha: f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?),
                },
                _ => return None,
            };
            let remaining_after = parts.next()?.parse().ok()?;
            let obs = parse_obs(&mut parts)?;
            end_of(parts)?;
            Some(Event::Step(RecordedStep {
                call,
                obs,
                remaining_after,
            }))
        }
        "decision" => {
            let seq = parts.next()?.parse().ok()?;
            let mut words = [0u64; DecisionRecord::WORDS];
            for w in &mut words {
                *w = u64::from_str_radix(parts.next()?, 16).ok()?;
            }
            end_of(parts)?;
            Some(Event::Decision(DecisionRecord::decode(seq, &words)))
        }
        "admission" => {
            let tick = parts.next()?.parse().ok()?;
            let tenant = parts.next()?.parse().ok()?;
            let level = parts.next()?.parse().ok()?;
            let verdict = parts.next()?.parse().ok()?;
            let arg = u64::from_str_radix(parts.next()?, 16).ok()?;
            end_of(parts)?;
            Some(Event::Admission(AdmissionRecord {
                tick,
                tenant,
                level,
                verdict,
                arg,
            }))
        }
        _ => None,
    }
}

fn parse_obs(parts: &mut std::str::SplitWhitespace<'_>) -> Option<Observation> {
    let bits =
        |parts: &mut std::str::SplitWhitespace<'_>| u64::from_str_radix(parts.next()?, 16).ok();
    Some(Observation {
        elapsed: f64::from_bits(bits(parts)?),
        cpu_items: parts.next()?.parse().ok()?,
        gpu_items: parts.next()?.parse().ok()?,
        cpu_time: f64::from_bits(bits(parts)?),
        gpu_time: f64::from_bits(bits(parts)?),
        energy_joules: f64::from_bits(bits(parts)?),
        counters: CounterSnapshot {
            instructions: f64::from_bits(bits(parts)?),
            loads: f64::from_bits(bits(parts)?),
            l3_misses: f64::from_bits(bits(parts)?),
        },
    })
}

/// `Some(())` only when the iterator is exhausted (trailing junk on a
/// line is treated as corruption).
fn end_of(mut parts: std::str::SplitWhitespace<'_>) -> Option<()> {
    parts.next().is_none().then_some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> RunLog {
        let obs = Observation {
            elapsed: 0.25,
            cpu_items: 100,
            gpu_items: 2240,
            cpu_time: 0.2,
            gpu_time: 0.25,
            energy_joules: 12.5,
            counters: CounterSnapshot {
                instructions: 1.0e9,
                loads: 2.0e8,
                l3_misses: 3.0e6,
            },
        };
        RunLog {
            version: FORMAT_VERSION,
            root: 0xDEAD_BEEF,
            platform_fp: 0x1234,
            config_fp: 0x5678,
            events: vec![
                Event::Derive {
                    domain: "chaos".into(),
                    index: None,
                    seed: 42,
                },
                Event::Invocation {
                    kernel: 7,
                    items: 10_000,
                    profile_size: 2240,
                    label: "BS".into(),
                },
                Event::Step(RecordedStep {
                    call: StepCall::Profile { chunk: 2240 },
                    obs,
                    remaining_after: 7660,
                }),
                Event::Step(RecordedStep {
                    call: StepCall::Split { alpha: 0.65 },
                    obs: Observation {
                        elapsed: f64::NAN,
                        ..obs
                    },
                    remaining_after: 0,
                }),
                Event::Decision(DecisionRecord {
                    seq: 0,
                    kernel: 7,
                    alpha: 0.65,
                    items: 10_000,
                    ..Default::default()
                }),
            ],
            complete: true,
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let log = sample_log();
        let text = log.to_text();
        let back = RunLog::from_text(&text).unwrap();
        // NaN fields break PartialEq, so compare the re-serialization.
        assert_eq!(back.to_text(), text);
        assert!(back.complete);
        assert_eq!(back.events.len(), log.events.len());
    }

    #[test]
    fn save_with_retries_rides_out_injected_faults() {
        use easched_runtime::vfs::{ChaosFs, ChaosFsPlan, StorageFault};
        use easched_runtime::TickClock;
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!("runlog-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.log");
        let log = sample_log();
        // Attempt 1 consumes ops 0 (create) and 1 (write_all, faulted);
        // attempt 2 runs ops 2..=5 (create, write_all, open_write,
        // sync_all — faulted); attempt 3 must land on ops 6..=9.
        let plan = ChaosFsPlan::at(1, StorageFault::Enospc).then(5, StorageFault::FsyncFail);
        let vfs = ChaosFs::new(11, plan, Arc::new(TickClock::new()));
        let failed = log.save_with_retries(&vfs, &path, 8).unwrap();
        assert_eq!(failed, 2, "both scheduled faults cost one attempt each");
        let back = RunLog::from_text(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(back.complete);
        assert_eq!(back.to_text(), log.to_text());
        // A budget smaller than the fault window surfaces the error.
        let stubborn = ChaosFs::new(11, ChaosFsPlan::storm(1000), Arc::new(TickClock::new()));
        assert!(log.save_with_retries(&stubborn, &path, 3).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_but_parses() {
        let text = sample_log().to_text();
        // Tear mid-way through the last event line (before the footer).
        let keep = text.lines().count() - 2;
        let torn: String = text
            .lines()
            .take(keep)
            .map(|l| format!("{l}\n"))
            .chain(std::iter::once("decision 1 fff".to_string()))
            .collect();
        let log = RunLog::from_text(&torn).unwrap();
        assert!(!log.complete);
        assert_eq!(log.events.len(), keep - 4, "header is 4 lines");
        assert_eq!(log.root, 0xDEAD_BEEF);
    }

    #[test]
    fn corrupt_header_is_a_hard_error() {
        assert_eq!(RunLog::from_text("garbage"), Err(LogError::NotARunLog));
        let mut text = sample_log().to_text();
        text = text.replacen("root", "r00t", 1);
        assert!(matches!(
            RunLog::from_text(&text),
            Err(LogError::NotARunLog)
        ));
    }

    #[test]
    fn unknown_version_is_refused() {
        let mut out = String::new();
        seal_line(&mut out, "easched-runlog v99");
        assert_eq!(RunLog::from_text(&out), Err(LogError::UnknownVersion(99)));
    }

    #[test]
    fn invocations_group_steps() {
        let log = sample_log();
        let invs = log.invocations();
        assert_eq!(invs.len(), 1);
        assert_eq!(invs[0].kernel, 7);
        assert_eq!(invs[0].steps.len(), 2);
        assert_eq!(invs[0].steps[0].call, StepCall::Profile { chunk: 2240 });
    }

    #[test]
    fn perturb_changes_exactly_one_step() {
        let mut log = sample_log();
        let before = log.to_text();
        assert!(log.perturb_step(1));
        assert!(!log.perturb_step(9));
        let after = log.to_text();
        let changed: Vec<_> = before
            .lines()
            .zip(after.lines())
            .filter(|(a, b)| a != b)
            .collect();
        assert_eq!(changed.len(), 1);
        assert!(changed[0].0.starts_with("step split"));
    }

    #[test]
    fn decisions_extracts_the_stream() {
        let d = sample_log().decisions();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kernel, 7);
    }

    #[test]
    fn fleet_events_round_trip_verbatim_as_v3() {
        let mut log = sample_log();
        log.version = FORMAT_VERSION_FLEET;
        // Fleet payloads may carry an inner seal and arbitrary spacing —
        // both must survive verbatim.
        log.events.push(Event::Fleet {
            line: "spec nodes 3 seed 0007".to_string(),
        });
        log.events.push(Event::Fleet {
            line: "frame 0 1 ent 2 crc 00000000deadbeef".to_string(),
        });
        let text = log.to_text();
        let back = RunLog::from_text(&text).unwrap();
        assert_eq!(back.version, FORMAT_VERSION_FLEET);
        assert!(back.complete);
        assert_eq!(
            back.fleet_lines(),
            vec![
                "spec nodes 3 seed 0007",
                "frame 0 1 ent 2 crc 00000000deadbeef"
            ]
        );
        assert_eq!(back.to_text(), text);
        // Fleet events never leak into the invocation feed.
        assert_eq!(back.invocations().len(), log.invocations().len());
    }

    #[test]
    fn slice_at_trims_to_complete_invocation_boundaries() {
        let log = sample_log();
        // Cutting mid-invocation (after the Invocation and one Step, but
        // before the Decision) backs off past the whole invocation.
        let slice = log.slice_at(3);
        assert_eq!(slice.events.len(), 1, "only the derive survives");
        assert!(matches!(slice.events[0], Event::Derive { .. }));
        assert!(slice.complete);
        assert_eq!(slice.root, log.root);
        // Cutting at or past the Decision keeps the invocation whole.
        let full = log.slice_at(5);
        assert_eq!(full.events.len(), 5);
        assert_eq!(full.invocations().len(), 1);
        assert_eq!(full.decisions().len(), 1);
        // An offset past the end is the identity slice.
        assert_eq!(log.slice_at(99).events.len(), log.events.len());
        // The slice round-trips through text like any complete log.
        let back = RunLog::from_text(&full.to_text()).unwrap();
        assert!(back.complete);
        assert_eq!(back.events.len(), 5);
    }

    #[test]
    fn admission_events_round_trip_as_v2() {
        let mut log = sample_log();
        log.version = FORMAT_VERSION_ADMISSION;
        let rec = AdmissionRecord {
            tick: 3,
            tenant: 5,
            level: 1,
            verdict: 2,
            arg: 2.0f64.to_bits(),
        };
        log.events.insert(1, Event::Admission(rec));
        let text = log.to_text();
        assert!(text.starts_with("easched-runlog v2 "));
        let back = RunLog::from_text(&text).unwrap();
        assert_eq!(back.version, FORMAT_VERSION_ADMISSION);
        assert_eq!(back.to_text(), text);
        assert_eq!(back.admissions(), vec![rec]);
        // v1 logs report no admissions.
        assert!(sample_log().admissions().is_empty());
    }
}
