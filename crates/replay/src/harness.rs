//! End-to-end record/replay of a chaos storm — the canonical scenario.
//!
//! [`record_chaos_storm`] runs the reduced suite (BFS, Blackscholes,
//! Mandelbrot) for several rounds under a seeded random fault plan drawn
//! from the run's [`RunSeed`], with the EAS scheduler learning across
//! workloads, a [`TickClock`] driving the decide timer, and every seam
//! tapped by a [`Recorder`]. [`replay_chaos_storm`] rebuilds the same
//! scheduler from the log's fingerprinted platform + config and re-feeds
//! the recorded observations; a clean replay reproduces the decision
//! stream — and the final table and health counters — byte-identically,
//! chaos faults, drift reprofiles and breaker trips included.
//!
//! The storm deliberately reuses one scheduler *and* one fault-step
//! counter across all workloads and rounds, so recorded state (learned
//! table entries, breaker state, chaos step offsets) threads through the
//! whole run — the gnarliest case the replay layer must get right.

use crate::record::{Recorder, RecordingScheduler};
use crate::replay::{replay_log, ReplayOutcome};
use crate::RunLog;
use easched_core::{
    characterize, fnv1a64, model_to_text, table_to_text, CharacterizationConfig, EasConfig,
    EasScheduler, HealthReport, Objective, PowerModel, RunSeed,
};
use easched_kernels::suite;
use easched_runtime::{run_workload_chaos, ChaosInjector, Fault, FaultPlan, TickClock};
use easched_sim::{Machine, Platform};
use easched_telemetry::{FanoutSink, RingSink, TelemetrySink, DEFAULT_SPAN_CAPACITY};
use std::sync::Arc;

/// Shape of a recorded chaos storm.
#[derive(Debug, Clone)]
pub struct StormSpec {
    /// Root seed; everything stochastic in the run derives from it.
    pub seed: RunSeed,
    /// Passes over the three-workload rotation.
    pub rounds: usize,
    /// Per-step fault probability of the random plan.
    pub chaos_rate: f64,
}

impl StormSpec {
    /// A storm rooted at `root` with the default shape (2 rounds, 20 %
    /// fault rate over all six vettable kinds).
    pub fn new(root: u64) -> StormSpec {
        StormSpec {
            seed: RunSeed::new(root),
            rounds: 2,
            chaos_rate: 0.2,
        }
    }
}

/// A finished recording plus the run's final engine state (for asserting
/// that a replay reconverges to the same place).
#[derive(Debug)]
pub struct RecordedStorm {
    /// The sealed log.
    pub log: RunLog,
    /// Final health counters of the recorded run.
    pub health: HealthReport,
    /// Final kernel table of the recorded run, as text.
    pub table: String,
}

/// Why a log refused to replay against this build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The characterized platform model no longer matches the recording.
    PlatformMismatch {
        /// Fingerprint in the log.
        recorded: u64,
        /// Fingerprint of the model this build characterizes.
        live: u64,
    },
    /// The scheduler configuration no longer matches the recording.
    ConfigMismatch {
        /// Fingerprint in the log.
        recorded: u64,
        /// Fingerprint of the config this build constructs.
        live: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::PlatformMismatch { recorded, live } => write!(
                f,
                "platform fingerprint mismatch: log {recorded:016x}, this build {live:016x}"
            ),
            ReplayError::ConfigMismatch { recorded, live } => write!(
                f,
                "config fingerprint mismatch: log {recorded:016x}, this build {live:016x}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// The storm's workload rotation (labels are suite abbreviations).
fn storm_workloads() -> Vec<Box<dyn easched_kernels::Workload>> {
    vec![
        suite::bfs_small(),
        suite::blackscholes_small(),
        suite::mandelbrot_small(),
    ]
}

/// The platform every replayable recording runs on (the storm harness,
/// the CLI `record` subcommand, the `shared_runtime` example's `--record`
/// mode). Measurement noise is zeroed: the sim is deterministic either
/// way, but a noiseless platform keeps recorded energies bit-stable
/// across refactors of the noise model itself.
pub fn storm_platform() -> Platform {
    let mut p = Platform::haswell_desktop();
    p.pcu.measurement_noise = 0.0;
    p
}

fn storm_model(platform: &Platform) -> PowerModel {
    characterize(platform, &CharacterizationConfig::default())
}

fn storm_config(seed: RunSeed) -> EasConfig {
    EasConfig::new(Objective::EnergyDelay).with_seed(seed)
}

/// Fingerprints `(platform, config)` the way logs record them.
fn fingerprints(model: &PowerModel, config: &EasConfig) -> (u64, u64) {
    (
        fnv1a64(model_to_text(model).as_bytes()),
        fnv1a64(format!("{config:?}").as_bytes()),
    )
}

/// Builds the canonical replayable setup for root seed `seed`: an
/// [`EasScheduler`] on the [`storm_platform`] model with a virtual
/// [`TickClock`] and a [`Recorder`] (already attached as the telemetry
/// sink, seed manifest logged) whose fingerprints
/// [`scheduler_for_log`] will accept. Shared by [`record_chaos_storm`],
/// the CLI, and the `shared_runtime` example.
pub fn recording_setup(seed: RunSeed) -> (EasScheduler, Arc<Recorder>) {
    let platform = storm_platform();
    let model = storm_model(&platform);
    let config = storm_config(seed);
    let (platform_fp, config_fp) = fingerprints(&model, &config);

    let recorder = Recorder::new(seed, platform_fp, config_fp);
    // The full seed inventory: suite input-generation constants first
    // (they predate the root — see `suite::seeds`), then any derivations
    // the caller takes from the root.
    for (name, value) in suite::seeds::manifest() {
        recorder.note_seed(name, value);
    }

    let mut eas = EasScheduler::new(model, config);
    eas.set_telemetry(Some(Arc::clone(&recorder) as Arc<dyn TelemetrySink>));
    eas.set_clock(Arc::new(TickClock::new()));
    (eas, recorder)
}

/// [`recording_setup`] plus the live observability plane: the scheduler's
/// sink becomes a [`FanoutSink`] teeing the [`Recorder`] (run log +
/// exemplar offsets) and a span-tracing [`RingSink`] (metrics registry +
/// causal spans for the scrape server). The recorder stays first so
/// [`TelemetrySink::offset`] reads log offsets; the ring sink is the
/// span owner.
///
/// The trace-id root is `seed.derive("trace")` taken *directly* from the
/// seed, not through [`Recorder::derive`]: spans are derived state
/// (DESIGN.md §14), so the derivation must not enter the event stream —
/// an observed run's log stays byte-identical to an unobserved one.
pub fn recording_setup_observed(seed: RunSeed) -> (EasScheduler, Arc<Recorder>, Arc<RingSink>) {
    let (mut eas, recorder) = recording_setup(seed);
    let ring = Arc::new(
        RingSink::default().with_span_tracing(DEFAULT_SPAN_CAPACITY, seed.derive("trace")),
    );
    let fanout = FanoutSink::new(vec![
        Arc::clone(&recorder) as Arc<dyn TelemetrySink>,
        Arc::clone(&ring) as Arc<dyn TelemetrySink>,
    ]);
    eas.set_telemetry(Some(Arc::new(fanout) as Arc<dyn TelemetrySink>));
    (eas, recorder, ring)
}

/// Records a chaos storm, returning the log and the run's final state.
pub fn record_chaos_storm(spec: &StormSpec) -> RecordedStorm {
    let (mut eas, recorder) = recording_setup(spec.seed);
    let chaos_seed = recorder.derive(spec.seed, "chaos");

    let mut injector = ChaosInjector::new(FaultPlan::Random {
        seed: chaos_seed,
        rate: spec.chaos_rate,
        kinds: Fault::ALL.to_vec(),
    });
    let mut machine = Machine::new(storm_platform());
    for _round in 0..spec.rounds {
        for workload in storm_workloads() {
            let label = workload.spec().abbrev;
            let mut recording = RecordingScheduler::new(&mut eas, Arc::clone(&recorder), label);
            let (_, verification) = run_workload_chaos(
                &mut machine,
                workload.as_ref(),
                &mut recording,
                &mut injector,
            );
            assert!(
                verification.is_passed(),
                "chaos corrupts observations, never outputs: {label}"
            );
        }
    }

    RecordedStorm {
        log: recorder.finish(),
        health: eas.health(),
        table: table_to_text(eas.table()),
    }
}

/// Builds the scheduler a storm log replays against, verifying the log's
/// platform and config fingerprints first.
pub fn scheduler_for_log(log: &RunLog) -> Result<EasScheduler, ReplayError> {
    let platform = storm_platform();
    let model = storm_model(&platform);
    let config = storm_config(RunSeed::new(log.root));
    let (platform_fp, config_fp) = fingerprints(&model, &config);
    if platform_fp != log.platform_fp {
        return Err(ReplayError::PlatformMismatch {
            recorded: log.platform_fp,
            live: platform_fp,
        });
    }
    if config_fp != log.config_fp {
        return Err(ReplayError::ConfigMismatch {
            recorded: log.config_fp,
            live: config_fp,
        });
    }
    let mut eas = EasScheduler::new(model, config);
    eas.set_clock(Arc::new(TickClock::new()));
    Ok(eas)
}

/// Replays a storm log recorded by [`record_chaos_storm`] and diffs the
/// decision streams.
pub fn replay_chaos_storm(log: &RunLog) -> Result<ReplayOutcome, ReplayError> {
    let mut eas = scheduler_for_log(log)?;
    Ok(replay_log(log, &mut eas))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_replays_byte_identically() {
        let recorded = record_chaos_storm(&StormSpec::new(7));
        let outcome = replay_chaos_storm(&recorded.log).unwrap();
        assert!(
            outcome.identical(),
            "divergence: {}",
            outcome.divergence.unwrap().render()
        );
        assert_eq!(outcome.recorded.len(), outcome.live.len());
        assert!(!outcome.recorded.is_empty());
        // The replay reconverges to the same engine state.
        assert_eq!(outcome.table, recorded.table);
        assert_eq!(outcome.health, recorded.health);
    }

    #[test]
    fn recording_is_deterministic() {
        let a = record_chaos_storm(&StormSpec::new(23));
        let b = record_chaos_storm(&StormSpec::new(23));
        assert_eq!(a.log.to_text(), b.log.to_text());
    }

    #[test]
    fn different_roots_differ() {
        let a = record_chaos_storm(&StormSpec::new(7));
        let b = record_chaos_storm(&StormSpec::new(8));
        assert_ne!(a.log.to_text(), b.log.to_text());
    }

    #[test]
    fn trace_ids_equal_indexed_seed_derivations() {
        // The span sink's trace-id allocator must be the same function as
        // `RunSeed::derive_indexed("trace", ordinal)` — that equality is
        // what makes trace ids replay-stable without logging them. The
        // telemetry crate cannot see `RunSeed`, so the equality is pinned
        // here, cross-crate.
        let seed = RunSeed::new(7);
        let (_eas, _recorder, ring) = recording_setup_observed(seed);
        let sink = ring.span_sink().expect("observed setup traces spans");
        assert_eq!(sink.root(), seed.derive("trace"));
        for ordinal in 0..32u64 {
            assert_eq!(
                sink.next_trace(),
                seed.derive_indexed("trace", ordinal),
                "trace ordinal {ordinal} diverged from the seed derivation"
            );
        }
        assert_eq!(sink.traces_started(), 32);
    }

    #[test]
    fn perturbed_log_diverges_and_reports() {
        let mut recorded = record_chaos_storm(&StormSpec::new(7));
        let steps = recorded
            .log
            .events
            .iter()
            .filter(|e| matches!(e, crate::log::Event::Step(_)))
            .count();
        assert!(recorded.log.perturb_step(steps / 2));
        let outcome = replay_chaos_storm(&recorded.log).unwrap();
        let divergence = outcome.divergence.expect("perturbation must diverge");
        let report = divergence.render();
        assert!(report.contains("first divergent decision"), "{report}");
        assert!(!divergence.table.is_empty());
    }
}
