//! Deterministic record/replay for the EAS pipeline (DESIGN.md §12).
//!
//! Every source of nondeterminism in a run is behind a seam this crate
//! can tap: the clock ([`easched_runtime::Clock`]), the run's RNG root
//! ([`easched_core::RunSeed`]), and the observations a backend returns.
//! Recording taps all three into a [`RunLog`] — a line-oriented,
//! CRC-sealed text format in the style of the persistence journal —
//! and replaying re-feeds the recorded observations through a
//! [`ReplayBackend`] so the scheduler re-executes its decision sequence
//! byte-identically, chaos faults and all.
//!
//! The crate is layered:
//!
//! - [`log`] — the `RunLog` container and its torn-tail-tolerant codec;
//! - [`record`] — [`Recorder`] (a [`easched_telemetry::TelemetrySink`])
//!   plus the scheduler/backend shims that tap live runs;
//! - [`replay`] — [`ReplayBackend`] and [`replay_log`], diffing the live
//!   decision stream against the recording and snapshotting engine state
//!   at the first divergence (time-travel debugging);
//! - [`harness`] — the canonical chaos-storm scenario: record, replay,
//!   fingerprint-check;
//! - [`overload`] — the multi-tenant overload storm (admission control,
//!   backpressure, brownout) recorded as a v2 log and replayed by
//!   re-running the admission controller against the replayed decision
//!   stream;
//! - [`bisect`] — shrinking a divergent log to a minimal reproducer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisect;
pub mod harness;
pub mod log;
pub mod overload;
pub mod record;
pub mod replay;

pub use bisect::{bisect_storm, BisectReport};
pub use harness::{
    record_chaos_storm, recording_setup, recording_setup_observed, replay_chaos_storm,
    scheduler_for_log, storm_platform, RecordedStorm, ReplayError, StormSpec,
};
pub use log::{
    AdmissionRecord, Event, LogError, LoggedInvocation, RecordedStep, RunLog, StepCall,
    FORMAT_VERSION, FORMAT_VERSION_ADMISSION, FORMAT_VERSION_FLEET,
};
pub use overload::{
    record_overload_storm, record_overload_storm_observed, record_overload_storm_observed_with,
    replay_overload_storm, LiveObservability, ObservedOverload, OverloadReplayOutcome,
    OverloadSpec, RecordedOverload,
};
pub use record::{Recorder, RecordingBackend, RecordingScheduler};
pub use replay::{
    differing_fields, replay_log, CollectorSink, Divergence, ReplayBackend, ReplayOutcome,
};
