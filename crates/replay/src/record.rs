//! Recording a live run into a [`RunLog`].
//!
//! Three taps, one ordered event stream:
//!
//! * [`Recorder`] implements [`TelemetrySink`], so attaching it to a
//!   scheduler ([`EasScheduler::set_telemetry`]) captures the
//!   [`DecisionRecord`] stream exactly as the scheduler emits it (the
//!   recorder assigns publication-order sequence numbers, like the ring
//!   sink it stands in for);
//! * [`RecordingScheduler`] wraps any [`Scheduler`] and interposes a
//!   [`RecordingBackend`] inside each `schedule()` call, logging every
//!   backend call the policy makes with the observation it saw —
//!   *post-chaos*, so a fault-injected run records the lies the scheduler
//!   was told, which is precisely what replay must re-feed;
//! * [`Recorder::derive`] / [`Recorder::derive_indexed`] wrap
//!   [`RunSeed`]'s derivations, writing each one into the log so a replay
//!   (or a human) can verify which seeds steered the run.
//!
//! Composition matters: wrap the scheduler *outside* chaos, i.e.
//! `run_workload_chaos(machine, w, &mut RecordingScheduler::new(&mut eas,
//! rec, "BS"), &mut injector)` — the chaos layer lives between the real
//! backend and the scheduler, so the recording backend (which *is* the
//! scheduler's view) sees corrupted observations and true `remaining()`.
//!
//! [`EasScheduler::set_telemetry`]: easched_core::EasScheduler::set_telemetry

use crate::log::{
    AdmissionRecord, Event, RecordedStep, RunLog, StepCall, FORMAT_VERSION,
    FORMAT_VERSION_ADMISSION, FORMAT_VERSION_FLEET,
};
use easched_core::RunSeed;
use easched_runtime::{Backend, KernelId, Observation, Scheduler};
use easched_telemetry::{ControlEvent, DecisionRecord, TelemetrySink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Accumulates a run's event stream; clone the `Arc` into every tap.
#[derive(Debug)]
pub struct Recorder {
    root: u64,
    platform_fp: u64,
    config_fp: u64,
    events: Mutex<Vec<Event>>,
    seq: AtomicU64,
}

impl Recorder {
    /// Starts a recording for a run rooted at `seed`, stamped with the
    /// platform and configuration fingerprints replay will verify
    /// (FNV-1a of the model text and the config's `Debug` form).
    pub fn new(seed: RunSeed, platform_fp: u64, config_fp: u64) -> Arc<Recorder> {
        Arc::new(Recorder {
            root: seed.root(),
            platform_fp,
            config_fp,
            events: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
        })
    }

    fn push(&self, event: Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// Derives and logs a named seed (see [`RunSeed::derive`]).
    pub fn derive(&self, seed: RunSeed, domain: &str) -> u64 {
        let value = seed.derive(domain);
        self.push(Event::Derive {
            domain: domain.to_string(),
            index: None,
            seed: value,
        });
        value
    }

    /// Derives and logs the `index`-th seed of a domain (see
    /// [`RunSeed::derive_indexed`]).
    pub fn derive_indexed(&self, seed: RunSeed, domain: &str, index: u64) -> u64 {
        let value = seed.derive_indexed(domain, index);
        self.push(Event::Derive {
            domain: domain.to_string(),
            index: Some(index),
            seed: value,
        });
        value
    }

    /// Logs an already-known seed (e.g. a suite workload's baked-in
    /// generation seed) so the log carries the full seed inventory even
    /// for values that predate [`RunSeed`].
    pub fn note_seed(&self, domain: &str, value: u64) {
        self.push(Event::Derive {
            domain: domain.to_string(),
            index: None,
            seed: value,
        });
    }

    fn note_invocation(&self, kernel: KernelId, items: u64, profile_size: u64, label: &str) {
        self.push(Event::Invocation {
            kernel,
            items,
            profile_size,
            label: label.to_string(),
        });
    }

    fn note_step(&self, step: RecordedStep) {
        self.push(Event::Step(step));
    }

    /// Logs one admission-layer decision. Any admission event promotes
    /// the finished log to the v2 format; single-tenant recordings that
    /// never call this keep serializing as v1, byte-identically.
    pub fn note_admission(&self, record: AdmissionRecord) {
        self.push(Event::Admission(record));
    }

    /// Logs one fleet replication event (an opaque single line owned by
    /// `easched-fleet`, DESIGN.md §15). Any fleet event promotes the
    /// finished log to the v3 format; non-fleet recordings that never
    /// call this keep serializing as v1/v2, byte-identically.
    pub fn note_fleet(&self, line: impl Into<String>) {
        let line: String = line.into();
        debug_assert!(!line.contains('\n'), "fleet events are single lines");
        self.push(Event::Fleet { line });
    }

    /// The decision records captured so far, in publication order. The
    /// overload harness derives its simulated power samples and GPU-proxy
    /// debits from these — on both the record and the replay side, which
    /// is what makes the admission controller's inputs reproducible.
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter_map(|e| match e {
                Event::Decision(r) => Some(*r),
                _ => None,
            })
            .collect()
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots the recording into a complete [`RunLog`] — v2 iff the
    /// stream carries admission events, v1 (the pre-tenancy format)
    /// otherwise.
    pub fn finish(&self) -> RunLog {
        let events = self
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let version = if events.iter().any(|e| matches!(e, Event::Fleet { .. })) {
            FORMAT_VERSION_FLEET
        } else if events.iter().any(|e| matches!(e, Event::Admission(_))) {
            FORMAT_VERSION_ADMISSION
        } else {
            FORMAT_VERSION
        };
        RunLog {
            version,
            root: self.root,
            platform_fp: self.platform_fp,
            config_fp: self.config_fp,
            events,
            complete: true,
        }
    }
}

impl TelemetrySink for Recorder {
    fn record(&self, record: &DecisionRecord) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.push(Event::Decision(DecisionRecord { seq, ..*record }));
    }

    fn control(&self, _event: &ControlEvent) {
        // Control events are derived state (DESIGN.md §12): a faithful
        // replay regenerates them from the same observations, so the log
        // does not carry them.
    }

    fn offset(&self) -> u64 {
        // The exemplar hook (DESIGN.md §14): the current event count is
        // exactly the prefix length `easched replay --at <offset>` cuts
        // at, so an SLO event stamped here replays to the breaching
        // slice.
        self.len() as u64
    }
}

/// Wraps a [`Scheduler`] so every invocation it handles is recorded.
#[derive(Debug)]
pub struct RecordingScheduler<'a, S: Scheduler> {
    inner: &'a mut S,
    recorder: Arc<Recorder>,
    label: String,
}

impl<'a, S: Scheduler> RecordingScheduler<'a, S> {
    /// Wraps `inner`; `label` tags the recorded invocations (workload
    /// abbreviation, human-facing only).
    pub fn new(inner: &'a mut S, recorder: Arc<Recorder>, label: &str) -> Self {
        RecordingScheduler {
            inner,
            recorder,
            label: label.to_string(),
        }
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<'_, S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schedule(&mut self, kernel: KernelId, backend: &mut dyn Backend) {
        self.recorder.note_invocation(
            kernel,
            backend.remaining(),
            backend.gpu_profile_size(),
            &self.label,
        );
        let mut tap = RecordingBackend {
            inner: backend,
            recorder: &self.recorder,
        };
        self.inner.schedule(kernel, &mut tap);
    }
}

/// A [`Backend`] decorator that logs every call and its observation.
pub struct RecordingBackend<'a> {
    inner: &'a mut dyn Backend,
    recorder: &'a Recorder,
}

impl std::fmt::Debug for RecordingBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingBackend").finish_non_exhaustive()
    }
}

impl Backend for RecordingBackend<'_> {
    fn remaining(&self) -> u64 {
        self.inner.remaining()
    }

    fn gpu_profile_size(&self) -> u64 {
        self.inner.gpu_profile_size()
    }

    fn profile_step(&mut self, gpu_chunk: u64) -> Observation {
        let obs = self.inner.profile_step(gpu_chunk);
        self.recorder.note_step(RecordedStep {
            call: StepCall::Profile { chunk: gpu_chunk },
            obs,
            remaining_after: self.inner.remaining(),
        });
        obs
    }

    fn run_split(&mut self, alpha: f64) -> Observation {
        let obs = self.inner.run_split(alpha);
        self.recorder.note_step(RecordedStep {
            call: StepCall::Split { alpha },
            obs,
            remaining_after: self.inner.remaining(),
        });
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easched_runtime::backend::test_support::FakeBackend;
    use easched_runtime::scheduler::FixedAlpha;

    #[test]
    fn records_invocation_steps_in_order() {
        let rec = Recorder::new(RunSeed::new(7), 1, 2);
        let mut fixed = FixedAlpha::new(0.5);
        let mut sched = RecordingScheduler::new(&mut fixed, Arc::clone(&rec), "T");
        let mut backend = FakeBackend::new(10_000, 1.0e6, 2.0e6);
        sched.schedule(9, &mut backend);

        let log = rec.finish();
        assert_eq!(log.root, 7);
        let invs = log.invocations();
        assert_eq!(invs.len(), 1);
        assert_eq!(invs[0].kernel, 9);
        assert_eq!(invs[0].items, 10_000);
        assert_eq!(invs[0].profile_size, 2240);
        assert_eq!(invs[0].label, "T");
        assert_eq!(invs[0].steps.len(), 1);
        assert_eq!(invs[0].steps[0].remaining_after, 0);
        assert!(matches!(
            invs[0].steps[0].call,
            StepCall::Split { alpha } if alpha == 0.5
        ));
    }

    #[test]
    fn sink_assigns_sequence_numbers() {
        let rec = Recorder::new(RunSeed::default(), 0, 0);
        let sink: &dyn TelemetrySink = &*rec;
        sink.record(&DecisionRecord::default());
        sink.record(&DecisionRecord::default());
        let seqs: Vec<u64> = rec.finish().decisions().iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn derivations_are_logged_and_correct() {
        let seed = RunSeed::new(1009);
        let rec = Recorder::new(seed, 0, 0);
        let a = rec.derive(seed, "chaos");
        let b = rec.derive_indexed(seed, "stream", 3);
        rec.note_seed("workload/BS", 0xB7);
        assert_eq!(a, seed.derive("chaos"));
        assert_eq!(b, seed.derive_indexed("stream", 3));
        let log = rec.finish();
        assert_eq!(log.events.len(), 3);
        assert!(matches!(
            &log.events[2],
            Event::Derive { domain, seed: 0xB7, .. } if domain == "workload/BS"
        ));
    }
}
