//! Re-executing a recorded run and diffing it against the log.
//!
//! [`ReplayBackend`] impersonates the recorded backend for one
//! invocation: each `profile_step`/`run_split` call is matched against
//! the next recorded step and answered with the recorded observation, so
//! the scheduler re-sees exactly what it saw live — chaos corruption,
//! drift windows, watchdog stalls and all — without a simulator or real
//! hardware behind it. [`replay_log`] drives a fresh scheduler through
//! every recorded invocation, collects its live [`DecisionRecord`]
//! stream, and reports the first divergence from the recorded stream
//! (bit-level, NaN-tolerant), together with the engine state — table and
//! health — at the moment of divergence. That is the time-travel
//! debugging loop: perturb, replay, and the diff hands you the first
//! decision where history changed.
//!
//! A structurally divergent scheduler (one that asks for a different
//! chunk or α than the log has next) would deadlock a strict replayer,
//! so after noting the first structural mismatch the backend *free-runs*:
//! it synthesizes deterministic observations (fixed nominal device rates)
//! and keeps consuming items, letting the run complete so the decision
//! diff can still be reported.

use crate::log::{LoggedInvocation, RecordedStep, RunLog, StepCall};
use easched_core::{table_to_text, EasScheduler, HealthReport};
use easched_runtime::{Backend, Observation, Scheduler};
use easched_telemetry::{DecisionRecord, TelemetrySink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Nominal device rates for free-running synthesized observations after a
/// structural divergence (same constants the test fake uses).
const FREE_RUN_CPU_RATE: f64 = 1.0e6;
const FREE_RUN_GPU_RATE: f64 = 2.0e6;
const FREE_RUN_POWER: f64 = 55.0;

/// A backend that answers one recorded invocation's calls from the log.
#[derive(Debug)]
pub struct ReplayBackend<'a> {
    steps: &'a [RecordedStep],
    cursor: usize,
    remaining: u64,
    profile_size: u64,
    divergence: Option<String>,
}

impl<'a> ReplayBackend<'a> {
    /// A backend for one recorded invocation.
    pub fn new(invocation: &'a LoggedInvocation<'a>) -> ReplayBackend<'a> {
        ReplayBackend {
            steps: &invocation.steps,
            cursor: 0,
            remaining: invocation.items,
            profile_size: invocation.profile_size,
            divergence: None,
        }
    }

    /// The first structural mismatch, if the live scheduler called the
    /// backend differently than the recording (human-readable).
    pub fn divergence(&self) -> Option<&str> {
        self.divergence.as_deref()
    }

    /// Recorded steps not consumed by the live scheduler.
    pub fn unconsumed_steps(&self) -> usize {
        self.steps.len() - self.cursor
    }

    fn next_matching(&mut self, wanted: &StepCall, desc: &str) -> Option<RecordedStep> {
        if self.divergence.is_some() {
            return None;
        }
        match self.steps.get(self.cursor) {
            Some(step) if calls_match(&step.call, wanted) => {
                self.cursor += 1;
                Some(*step)
            }
            other => {
                self.divergence = Some(format!(
                    "live scheduler called {desc} but log step {} is {:?}",
                    self.cursor,
                    other.map(|s| s.call)
                ));
                None
            }
        }
    }

    /// Deterministic stand-in observation once the log no longer applies.
    fn synthesize(&mut self, gpu_items: u64, cpu_items: u64) -> Observation {
        let gpu_time = gpu_items as f64 / FREE_RUN_GPU_RATE;
        let cpu_time = cpu_items as f64 / FREE_RUN_CPU_RATE;
        let elapsed = gpu_time.max(cpu_time);
        self.remaining -= gpu_items + cpu_items;
        Observation {
            elapsed,
            cpu_items,
            gpu_items,
            cpu_time,
            gpu_time,
            energy_joules: FREE_RUN_POWER * elapsed,
            ..Default::default()
        }
    }
}

/// `run_split` α must match bit-for-bit: the recorded α came out of the
/// same deterministic minimizer the replay re-runs, so any difference at
/// all is a real divergence, not float noise.
fn calls_match(recorded: &StepCall, wanted: &StepCall) -> bool {
    match (recorded, wanted) {
        (StepCall::Profile { chunk: a }, StepCall::Profile { chunk: b }) => a == b,
        (StepCall::Split { alpha: a }, StepCall::Split { alpha: b }) => a.to_bits() == b.to_bits(),
        _ => false,
    }
}

impl Backend for ReplayBackend<'_> {
    fn remaining(&self) -> u64 {
        self.remaining
    }

    fn gpu_profile_size(&self) -> u64 {
        self.profile_size
    }

    fn profile_step(&mut self, gpu_chunk: u64) -> Observation {
        let call = StepCall::Profile { chunk: gpu_chunk };
        if let Some(step) = self.next_matching(&call, &format!("profile_step({gpu_chunk})")) {
            self.remaining = step.remaining_after;
            return step.obs;
        }
        let gpu = gpu_chunk.min(self.remaining);
        let cpu = ((self.remaining - gpu) / 2).min((FREE_RUN_CPU_RATE / 1.0e3) as u64);
        self.synthesize(gpu, cpu)
    }

    fn run_split(&mut self, alpha: f64) -> Observation {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        let call = StepCall::Split { alpha };
        if let Some(step) = self.next_matching(&call, &format!("run_split({alpha})")) {
            self.remaining = step.remaining_after;
            return step.obs;
        }
        let gpu = (self.remaining as f64 * alpha).round() as u64;
        let cpu = self.remaining - gpu;
        self.synthesize(gpu, cpu)
    }
}

/// A telemetry sink that just collects records (publication-order seqs,
/// like the ring sink) for the replay-side diff.
#[derive(Debug, Default)]
pub struct CollectorSink {
    records: Mutex<Vec<DecisionRecord>>,
    seq: AtomicU64,
}

impl CollectorSink {
    /// An empty collector ready to attach.
    pub fn new() -> Arc<CollectorSink> {
        Arc::new(CollectorSink::default())
    }

    /// The records collected so far, in publication order.
    pub fn records(&self) -> Vec<DecisionRecord> {
        self.records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl TelemetrySink for CollectorSink {
    fn record(&self, record: &DecisionRecord) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(DecisionRecord { seq, ..*record });
    }
}

/// The first point where a replay's decision stream left the recording.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index into the decision stream (0-based) of the first divergent
    /// record.
    pub decision_index: usize,
    /// 0-based ordinal of the invocation that emitted it.
    pub invocation: usize,
    /// Workload label of that invocation.
    pub label: String,
    /// The recorded decision at that index (`None`: the live run emitted
    /// *more* decisions than were recorded).
    pub recorded: Option<DecisionRecord>,
    /// The live decision at that index (`None`: the live run emitted
    /// fewer).
    pub live: Option<DecisionRecord>,
    /// Names of the differing record fields (empty when one side is
    /// missing entirely).
    pub fields: Vec<&'static str>,
    /// First structural backend mismatch, if the live scheduler also
    /// called the backend differently.
    pub structural: Option<String>,
    /// The kernel table as text at the moment of divergence — the engine
    /// state a time-traveling debugger lands on.
    pub table: String,
    /// Health counters at the moment of divergence.
    pub health: HealthReport,
}

impl Divergence {
    /// A multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "first divergent decision: index {} (invocation {} [{}])\n",
            self.decision_index, self.invocation, self.label
        );
        match (&self.recorded, &self.live) {
            (Some(r), Some(l)) => {
                out.push_str(&format!("  differing fields: {}\n", self.fields.join(", ")));
                out.push_str(&format!("  recorded: {r:?}\n  live:     {l:?}\n"));
            }
            (Some(r), None) => {
                out.push_str(&format!("  live run ended early; recorded: {r:?}\n"));
            }
            (None, Some(l)) => {
                out.push_str(&format!("  live run emitted extra decision: {l:?}\n"));
            }
            (None, None) => {}
        }
        if let Some(s) = &self.structural {
            out.push_str(&format!("  structural: {s}\n"));
        }
        out.push_str(&format!("  health at divergence: {:?}\n", self.health));
        out.push_str("  kernel table at divergence:\n");
        for line in self.table.lines() {
            out.push_str(&format!("    {line}\n"));
        }
        out
    }
}

/// Outcome of replaying a full log against a fresh scheduler.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Decisions the live re-run emitted (up to the divergence, if any).
    pub live: Vec<DecisionRecord>,
    /// Decisions the log recorded.
    pub recorded: Vec<DecisionRecord>,
    /// The first divergence, or `None` for a byte-identical replay.
    pub divergence: Option<Divergence>,
    /// Invocations actually replayed (all of them unless diverged).
    pub invocations_replayed: usize,
    /// Final health counters of the replaying scheduler.
    pub health: HealthReport,
    /// Final kernel table of the replaying scheduler, as text.
    pub table: String,
}

impl ReplayOutcome {
    /// `true` when the replay reproduced the recorded decision stream
    /// bit-for-bit.
    pub fn identical(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Replays `log` through `scheduler` (which must be freshly built from
/// the same model + config the recording used — see the fingerprints in
/// the log header) and diffs the decision streams.
///
/// The scheduler's telemetry sink is replaced with a collector for the
/// duration; the first divergent decision stops the replay so the
/// reported table/health are the state *at* the divergence.
pub fn replay_log(log: &RunLog, scheduler: &mut EasScheduler) -> ReplayOutcome {
    let collector = CollectorSink::new();
    scheduler.set_telemetry(Some(Arc::clone(&collector) as Arc<dyn TelemetrySink>));

    let recorded = log.decisions();
    let invocations = log.invocations();
    let mut divergence = None;
    let mut replayed: usize = 0;

    for (ordinal, invocation) in invocations.iter().enumerate() {
        let mut backend = ReplayBackend::new(invocation);
        scheduler.schedule(invocation.kernel, &mut backend);
        let structural = backend.divergence().map(String::from);
        replayed += 1;

        let live = collector.records();
        if let Some(index) = first_divergent(&recorded, &live) {
            divergence = Some(build_divergence(
                index,
                ordinal,
                invocation.label,
                &recorded,
                &live,
                structural,
                scheduler,
            ));
            break;
        }
        if let Some(s) = structural {
            // The backend calls diverged but every decision so far still
            // matches (possible when corruption cancels out downstream) —
            // report it anchored at the next decision index.
            divergence = Some(build_divergence(
                live.len(),
                ordinal,
                invocation.label,
                &recorded,
                &live,
                Some(s),
                scheduler,
            ));
            break;
        }
    }

    let live = collector.records();
    if divergence.is_none() && live.len() != recorded.len() {
        let index = live.len().min(recorded.len());
        divergence = Some(build_divergence(
            index,
            replayed.saturating_sub(1),
            invocations.last().map_or("", |i| i.label),
            &recorded,
            &live,
            None,
            scheduler,
        ));
    }

    ReplayOutcome {
        live,
        recorded,
        divergence,
        invocations_replayed: replayed,
        health: scheduler.health(),
        table: table_to_text(scheduler.table()),
    }
}

fn build_divergence(
    index: usize,
    invocation: usize,
    label: &str,
    recorded: &[DecisionRecord],
    live: &[DecisionRecord],
    structural: Option<String>,
    scheduler: &EasScheduler,
) -> Divergence {
    let rec = recorded.get(index).copied();
    let liv = live.get(index).copied();
    let fields = match (&rec, &liv) {
        (Some(r), Some(l)) => differing_fields(r, l),
        _ => Vec::new(),
    };
    Divergence {
        decision_index: index,
        invocation,
        label: label.to_string(),
        recorded: rec,
        live: liv,
        fields,
        structural,
        table: table_to_text(scheduler.table()),
        health: scheduler.health(),
    }
}

/// Index of the first pair that is not bitwise-equal, if any (only over
/// the common prefix; length mismatch is handled by the caller).
fn first_divergent(recorded: &[DecisionRecord], live: &[DecisionRecord]) -> Option<usize> {
    recorded
        .iter()
        .zip(live.iter())
        .position(|(r, l)| !r.bitwise_eq(l))
}

/// Field names of the encoded words where two records differ.
pub fn differing_fields(a: &DecisionRecord, b: &DecisionRecord) -> Vec<&'static str> {
    const NAMES: [&str; DecisionRecord::WORDS] = [
        "kernel",
        "path/class/breaker/rounds",
        "r_c",
        "r_g",
        "alpha",
        "predicted_power",
        "predicted_time",
        "predicted_objective",
        "profile_time",
        "profile_energy",
        "split_time",
        "split_energy",
        "items/decide_nanos",
    ];
    let wa = a.encode();
    let wb = b.encode();
    let mut out: Vec<&'static str> = NAMES
        .iter()
        .zip(wa.iter().zip(wb.iter()))
        .filter(|(_, (x, y))| x != y)
        .map(|(n, _)| *n)
        .collect();
    if a.seq != b.seq {
        out.insert(0, "seq");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{Event, RunLog};

    fn one_invocation_log() -> RunLog {
        let obs = Observation {
            elapsed: 0.1,
            cpu_items: 1000,
            gpu_items: 4000,
            cpu_time: 0.1,
            gpu_time: 0.1,
            energy_joules: 5.0,
            ..Default::default()
        };
        RunLog {
            version: crate::log::FORMAT_VERSION,
            root: 1,
            platform_fp: 0,
            config_fp: 0,
            events: vec![
                Event::Invocation {
                    kernel: 3,
                    items: 10_000,
                    profile_size: 2240,
                    label: "T".into(),
                },
                Event::Step(RecordedStep {
                    call: StepCall::Profile { chunk: 2240 },
                    obs,
                    remaining_after: 5000,
                }),
                Event::Step(RecordedStep {
                    call: StepCall::Split { alpha: 0.5 },
                    obs,
                    remaining_after: 0,
                }),
            ],
            complete: true,
        }
    }

    #[test]
    fn replay_backend_feeds_recorded_observations() {
        let log = one_invocation_log();
        let invs = log.invocations();
        let mut b = ReplayBackend::new(&invs[0]);
        assert_eq!(b.remaining(), 10_000);
        assert_eq!(b.gpu_profile_size(), 2240);
        let o1 = b.profile_step(2240);
        assert_eq!(o1.gpu_items, 4000, "recorded obs, corrupted counts and all");
        assert_eq!(b.remaining(), 5000, "ground truth, not the obs");
        let o2 = b.run_split(0.5);
        assert_eq!(o2.energy_joules, 5.0);
        assert_eq!(b.remaining(), 0);
        assert!(b.divergence().is_none());
        assert_eq!(b.unconsumed_steps(), 0);
    }

    #[test]
    fn structural_mismatch_noted_then_free_runs() {
        let log = one_invocation_log();
        let invs = log.invocations();
        let mut b = ReplayBackend::new(&invs[0]);
        // Ask for a different chunk than recorded.
        let _ = b.profile_step(999);
        assert!(b.divergence().unwrap().contains("profile_step(999)"));
        // Free-run still consumes everything so a scheduler can finish.
        while b.remaining() > 0 {
            b.run_split(1.0);
        }
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn differing_fields_names_the_word() {
        let a = DecisionRecord {
            alpha: 0.5,
            ..Default::default()
        };
        let b = DecisionRecord {
            alpha: 0.6,
            split_energy: 1.0,
            ..Default::default()
        };
        assert_eq!(differing_fields(&a, &b), vec!["alpha", "split_energy"]);
        // NaN == NaN under the bitwise view.
        let n1 = DecisionRecord {
            r_c: f64::NAN,
            ..Default::default()
        };
        let n2 = DecisionRecord {
            r_c: f64::NAN,
            ..Default::default()
        };
        assert!(differing_fields(&n1, &n2).is_empty());
    }

    #[test]
    fn split_alpha_must_match_bitwise() {
        let a = StepCall::Split { alpha: 0.5 };
        assert!(calls_match(&a, &StepCall::Split { alpha: 0.5 }));
        assert!(!calls_match(&a, &StepCall::Split { alpha: 0.5 + 1e-16 }));
    }
}
