//! Shrinking a divergent log to a minimal reproducer.
//!
//! When a replay diverges (a code change, a perturbed log), the full
//! storm is a poor regression artifact — hundreds of invocations of
//! which a handful matter. [`bisect_storm`] localizes the failure: it
//! truncates the log to the prefix ending at the divergent invocation,
//! then greedily drops earlier invocations while the divergence keeps
//! the same *signature* (same kernel, same differing record fields) —
//! dropping an invocation the divergence actually depends on (one whose
//! table learning feeds the divergent decision) changes the signature
//! and is rejected. The surviving log is a minimal reproducer fit to
//! check in as a regression-test fixture.
//!
//! Decision sequence numbers are reassigned after every cut (the live
//! replay numbers from zero, so a shrunk log must too); everything else
//! is carried verbatim.

use crate::harness::{scheduler_for_log, ReplayError};
use crate::log::{Event, RunLog};
use crate::replay::{replay_log, Divergence};
use easched_runtime::TickClock;
use easched_telemetry::DecisionRecord;
use std::sync::Arc;

/// Outcome of shrinking a divergent log.
#[derive(Debug)]
pub struct BisectReport {
    /// The divergence as seen on the full log.
    pub divergence: Divergence,
    /// The shrunk log, still reproducing the same divergence signature.
    pub minimal: RunLog,
    /// The divergence as seen on the minimal log.
    pub minimal_divergence: Divergence,
    /// Invocations in the original log.
    pub original_invocations: usize,
    /// Invocations surviving in the minimal log.
    pub kept_invocations: usize,
}

impl BisectReport {
    /// A human-readable summary plus the underlying divergence report.
    pub fn render(&self) -> String {
        format!(
            "bisect: shrunk {} invocations to {} (divergence at decision {})\n{}",
            self.original_invocations,
            self.kept_invocations,
            self.divergence.decision_index,
            self.divergence.render()
        )
    }
}

/// What makes two divergences "the same failure" across shrinks: the
/// kernel whose decision went wrong and the set of fields that differ
/// (indices shift as invocations are dropped, so they are not part of
/// the signature).
fn signature(d: &Divergence) -> (Option<u64>, Vec<&'static str>) {
    (d.recorded.or(d.live).map(|r| r.kernel), d.fields.clone())
}

/// Replays a log that bisection knows diverges, returning the first
/// divergence; `None` for a clean candidate (shrink rejected).
fn diverges(log: &RunLog, pristine: &easched_core::EasScheduler) -> Option<Divergence> {
    let mut scheduler = pristine.clone();
    // A fresh virtual clock per replay: the pristine scheduler's TickClock
    // would otherwise carry its read counter across candidates and skew
    // every decide_nanos after the first replay.
    scheduler.set_clock(Arc::new(TickClock::new()));
    replay_log(log, &mut scheduler).divergence
}

/// Bisects a divergent storm log down to a minimal reproducer.
///
/// Returns `Ok(None)` when the log replays cleanly (nothing to bisect);
/// [`ReplayError`] when the log's fingerprints do not match this build.
pub fn bisect_storm(log: &RunLog) -> Result<Option<BisectReport>, ReplayError> {
    let pristine = scheduler_for_log(log)?;
    let Some(divergence) = diverges(log, &pristine) else {
        return Ok(None);
    };
    let target = signature(&divergence);

    let (preamble, groups) = invocation_groups(&log.events);
    let original_invocations = groups.len();

    // Phase 1: truncate to the prefix ending at the divergent invocation
    // (everything after it cannot influence an earlier decision).
    let mut kept: Vec<usize> = (0..=divergence.invocation.min(groups.len() - 1)).collect();

    // Phase 2: greedily drop earlier invocations, newest-first, keeping a
    // cut only if the same divergence signature survives. The divergent
    // invocation itself (the last kept) is never dropped.
    let mut i = kept.len().saturating_sub(1);
    while i > 0 {
        i -= 1;
        let candidate_kept: Vec<usize> = kept.iter().copied().filter(|&k| k != kept[i]).collect();
        let candidate = rebuild(log, &preamble, &groups, &candidate_kept);
        if let Some(d) = diverges(&candidate, &pristine) {
            if signature(&d) == target {
                kept = candidate_kept;
            }
        }
    }

    let minimal = rebuild(log, &preamble, &groups, &kept);
    let minimal_divergence = diverges(&minimal, &pristine)
        .expect("minimal log diverged during shrinking and must still diverge");
    Ok(Some(BisectReport {
        divergence,
        minimal,
        minimal_divergence,
        original_invocations,
        kept_invocations: kept.len(),
    }))
}

/// Splits the event stream into the pre-invocation preamble (seed
/// derivations) and one group per invocation (its header, steps, and
/// decisions, in order).
fn invocation_groups(events: &[Event]) -> (Vec<Event>, Vec<Vec<Event>>) {
    let mut preamble = Vec::new();
    let mut groups: Vec<Vec<Event>> = Vec::new();
    for event in events {
        match event {
            Event::Invocation { .. } => groups.push(vec![event.clone()]),
            _ => match groups.last_mut() {
                Some(group) => group.push(event.clone()),
                None => preamble.push(event.clone()),
            },
        }
    }
    (preamble, groups)
}

/// Reassembles a log from a subset of invocation groups, renumbering the
/// decision stream from zero.
fn rebuild(log: &RunLog, preamble: &[Event], groups: &[Vec<Event>], kept: &[usize]) -> RunLog {
    let mut events: Vec<Event> = preamble.to_vec();
    for &k in kept {
        events.extend(groups[k].iter().cloned());
    }
    let mut seq = 0;
    for event in &mut events {
        if let Event::Decision(record) = event {
            *event = Event::Decision(DecisionRecord { seq, ..*record });
            seq += 1;
        }
    }
    RunLog {
        events,
        complete: true,
        ..*log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{record_chaos_storm, StormSpec};

    #[test]
    fn clean_log_has_nothing_to_bisect() {
        let recorded = record_chaos_storm(&StormSpec::new(7));
        assert!(bisect_storm(&recorded.log).unwrap().is_none());
    }

    #[test]
    fn bisect_shrinks_a_perturbed_log() {
        let mut recorded = record_chaos_storm(&StormSpec::new(7));
        let steps = recorded
            .log
            .events
            .iter()
            .filter(|e| matches!(e, Event::Step(_)))
            .count();
        assert!(recorded.log.perturb_step(steps / 2));

        let report = bisect_storm(&recorded.log)
            .unwrap()
            .expect("perturbed log diverges");
        assert!(report.kept_invocations <= report.original_invocations);
        assert!(report.kept_invocations >= 1);
        // The minimal log is a self-contained reproducer with the same
        // failure signature.
        assert_eq!(
            signature(&report.divergence),
            signature(&report.minimal_divergence)
        );
        let text = report.minimal.to_text();
        let reparsed = RunLog::from_text(&text).unwrap();
        let again = bisect_storm(&reparsed).unwrap().expect("fixture diverges");
        assert_eq!(signature(&again.divergence), signature(&report.divergence));
    }

    #[test]
    fn groups_partition_the_stream() {
        let recorded = record_chaos_storm(&StormSpec::new(23));
        let (preamble, groups) = invocation_groups(&recorded.log.events);
        let total: usize = preamble.len() + groups.iter().map(Vec::len).sum::<usize>();
        assert_eq!(total, recorded.log.events.len());
        assert!(preamble.iter().all(|e| matches!(e, Event::Derive { .. })));
        assert!(groups
            .iter()
            .all(|g| matches!(g[0], Event::Invocation { .. })));
    }
}
