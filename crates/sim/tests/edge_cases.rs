//! Edge-case integration tests for the machine model.

use easched_sim::{KernelTraits, Machine, PhasePlan, Platform};

fn quiet(mut p: Platform) -> Platform {
    p.pcu.measurement_noise = 0.0;
    p
}

fn kernel(mem: f64) -> KernelTraits {
    KernelTraits::builder("edge")
        .cpu_rate(1.0e6)
        .gpu_rate(2.0e6)
        .memory_intensity(mem)
        .build()
}

#[test]
fn partial_cpu_utilization_slows_and_saves_power() {
    let k = kernel(0.0);
    let run = |util: f64| {
        let mut m = Machine::new(quiet(Platform::haswell_desktop()));
        let r = m.run_phase(&k, &PhasePlan::cpu_only(2_000_000).with_cpu_util(util));
        (r.elapsed, r.energy_joules / r.elapsed)
    };
    let (t_full, p_full) = run(1.0);
    let (t_half, p_half) = run(0.5);
    assert!(
        (t_half - 2.0 * t_full).abs() < 0.1 * t_full,
        "half utilization ≈ double time: {t_half} vs {t_full}"
    );
    assert!(p_half < p_full, "half utilization draws less power");
    // But more than idle: the active half still burns.
    assert!(p_half > Platform::haswell_desktop().power.idle * 1.5);
}

#[test]
#[should_panic(expected = "cpu_util must be in (0, 1]")]
fn zero_cpu_util_rejected() {
    let _ = PhasePlan::cpu_only(10).with_cpu_util(0.0);
}

#[test]
fn measurement_noise_does_not_break_determinism() {
    let p = Platform::haswell_desktop(); // 1% noise enabled
    let k = kernel(1.0);
    let run = || {
        let mut m = Machine::with_seed(p.clone(), 99);
        let r = m.run_phase(&k, &PhasePlan::split(3_000_000, 0.5));
        (r.elapsed, m.read_energy_raw())
    };
    assert_eq!(run(), run());
    // And the noisy average stays near the steady point.
    let mut m = Machine::with_seed(p.clone(), 99);
    let r = m.run_phase(&k, &PhasePlan::split(3_000_000, 0.5));
    let avg = r.energy_joules / r.elapsed;
    assert!((avg - 63.0).abs() < 3.0, "noisy combined memory avg {avg}");
}

#[test]
fn back_to_back_invocations_keep_steady_power() {
    // Consecutive split phases must not re-trigger the activation dip
    // (sub-millisecond GPU gaps).
    let k = kernel(1.0);
    let mut m = Machine::new(quiet(Platform::haswell_desktop()));
    m.run_phase(&k, &PhasePlan::split(2_000_000, 0.6)); // warm up
    let r = m.run_phase(&k, &PhasePlan::split(2_000_000, 0.6));
    let avg = r.energy_joules / r.elapsed;
    assert!(
        avg > 58.0,
        "steady back-to-back power {avg} (dip re-triggered?)"
    );
}

#[test]
fn idle_gap_rearms_the_dip() {
    let k = kernel(1.0);
    let mut m = Machine::new(quiet(Platform::haswell_desktop()));
    m.enable_trace();
    // CPU-only warmup, then idle long enough to re-arm, then a burst into
    // the running CPU — modelled here as CPU phase followed by split.
    m.run_phase(&k, &PhasePlan::cpu_only(2_000_000));
    let r = m.run_phase(&k, &PhasePlan::split(2_000_000, 0.05));
    let trace = m.take_trace();
    // The burst right after a long CPU-only stretch dips.
    let min_during_split = trace
        .points()
        .iter()
        .filter(|pt| pt.time > r.elapsed.mul_add(-1.0, m.now()))
        .map(|pt| pt.watts)
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_during_split < 45.0,
        "expected dip, min {min_during_split}"
    );
}

#[test]
fn tablet_phases_scale_to_milliwatt_range() {
    let k = KernelTraits::builder("tablet")
        .cpu_rate(1.0e5)
        .gpu_rate(1.5e5)
        .memory_intensity(0.0)
        .build();
    let mut m = Machine::new(quiet(Platform::baytrail_tablet()));
    let r = m.run_phase(&k, &PhasePlan::split(500_000, 0.6));
    let avg = r.energy_joules / r.elapsed;
    assert!(
        (1.0..3.0).contains(&avg),
        "tablet combined compute power {avg} W"
    );
}

#[test]
fn gpu_only_never_touches_cpu_counters() {
    let k = kernel(1.0);
    let mut m = Machine::new(quiet(Platform::haswell_desktop()));
    m.run_phase(&k, &PhasePlan::gpu_only(1_000_000));
    let c = m.counters();
    assert_eq!(c.instructions, 0.0);
    assert_eq!(c.l3_misses, 0.0);
}

#[test]
fn interleaved_idle_and_phases_account_energy() {
    let k = kernel(0.0);
    let mut m = Machine::new(quiet(Platform::haswell_desktop()));
    let r1 = m.run_phase(&k, &PhasePlan::cpu_only(500_000));
    let e_mid = m.total_joules();
    m.idle(1.0);
    let idle_energy = m.total_joules() - e_mid;
    // Idle burns ~5 W (after a short down-ramp from the 45 W phase).
    assert!((idle_energy - 5.0).abs() < 1.0, "idle energy {idle_energy}");
    let r2 = m.run_phase(&k, &PhasePlan::cpu_only(500_000));
    // The second phase pays the ramp-up from idle again, so it costs no
    // less than the first (which also ramped from idle).
    assert!(r2.energy_joules > 0.9 * r1.energy_joules);
    assert!(m.now() > r1.elapsed + 1.0);
}

#[test]
fn zero_bandwidth_kernel_never_contends() {
    let k = KernelTraits::builder("nobw")
        .cpu_rate(1.0e8)
        .gpu_rate(1.0e8)
        .memory_intensity(1.0)
        .bw_bytes_per_item(0.0)
        .build();
    let mut m = Machine::new(quiet(Platform::haswell_desktop()));
    let r = m.run_phase(&k, &PhasePlan::split(100_000_000, 0.5));
    // Both devices run at their (shared-frequency-derated) full rates.
    assert!(r.cpu_rate() > 0.95e8, "{}", r.cpu_rate());
    assert!(r.gpu_rate() > 0.95e8, "{}", r.gpu_rate());
}
