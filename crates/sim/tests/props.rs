//! Property-based tests for the platform simulator.

use easched_sim::bandwidth::{contended_rates, BwDemand};
use easched_sim::{EnergyCounter, KernelTraits, Machine, PhasePlan, Platform, PowerTrace};
use proptest::prelude::*;

fn platforms() -> impl Strategy<Value = Platform> {
    prop_oneof![
        Just(Platform::haswell_desktop()),
        Just(Platform::baytrail_tablet()),
    ]
}

fn traits_strategy() -> impl Strategy<Value = KernelTraits> {
    (
        1e4..1e7f64,
        1e4..1e7f64,
        0.0..1.0f64,
        0.0..0.6f64,
        0.0..2.0f64,
    )
        .prop_map(|(cpu, gpu, mem, irr, bus)| {
            KernelTraits::builder("prop")
                .cpu_rate(cpu)
                .gpu_rate(gpu)
                .memory_intensity(mem)
                .irregularity(irr)
                .bw_bytes_per_item(bus * 25.6e9 / (cpu + gpu))
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The energy register accounts every deposited joule (wrap-safe).
    #[test]
    fn energy_counter_accounts_deposits(
        start in any::<u32>(),
        deposits in prop::collection::vec(1e-6..10.0f64, 1..50),
    ) {
        let mut c = EnergyCounter::with_raw(start);
        let before = c.read_raw();
        let total: f64 = deposits.iter().sum();
        // Keep under one wrap (2^32 units ≈ 65 kJ) — the sampling assumption.
        prop_assume!(total < 60_000.0);
        for d in deposits {
            c.deposit_joules(d);
        }
        let measured = EnergyCounter::delta_joules(before, c.read_raw());
        prop_assert!((measured - total).abs() < 1e-3 + total * 1e-9);
    }

    /// Contention never raises a rate and never over-grants the bus for
    /// fully memory-bound demands.
    #[test]
    fn contention_is_a_derating(
        rates in prop::collection::vec(1e3..1e9f64, 1..4),
        bytes in 1.0..1e4f64,
        peak in 1e6..1e11f64,
    ) {
        let demands: Vec<BwDemand> = rates
            .iter()
            .map(|&r| BwDemand { rate: r, bytes_per_item: bytes, memory_fraction: 1.0 })
            .collect();
        let out = contended_rates(peak, &demands);
        let mut used = 0.0;
        for (o, d) in out.iter().zip(&demands) {
            prop_assert!(*o <= d.rate * 1.0000001);
            used += o * d.bytes_per_item;
        }
        let requested: f64 = rates.iter().map(|r| r * bytes).sum();
        if requested > peak {
            prop_assert!(used <= peak * 1.0001, "granted {used} > peak {peak}");
        }
    }

    /// run_phase completes exactly the assigned items and advances time.
    #[test]
    fn phases_conserve_items(
        platform in platforms(),
        traits in traits_strategy(),
        n in 1_000u64..2_000_000,
        alpha_step in 0usize..=10,
    ) {
        let alpha = alpha_step as f64 / 10.0;
        let mut m = Machine::new(platform);
        let r = m.run_phase(&traits, &PhasePlan::split(n, alpha));
        prop_assert!((r.cpu_items_done + r.gpu_items_done - n as f64).abs() < 1.0);
        prop_assert!(r.elapsed > 0.0);
        prop_assert!(m.now() >= r.elapsed);
        // Energy is bounded below by idle power and above by a generous
        // multiple of the biggest operating point.
        let idle = m.platform().power.idle;
        let max_power = m.platform().power.both_memory.max(m.platform().power.cpu_memory) * 2.0;
        prop_assert!(r.energy_joules >= 0.5 * idle * r.elapsed);
        prop_assert!(r.energy_joules <= max_power * r.elapsed);
    }

    /// Same seed → identical histories; the machine is deterministic.
    #[test]
    fn machine_is_deterministic(
        traits in traits_strategy(),
        n in 1_000u64..500_000,
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut m = Machine::with_seed(Platform::haswell_desktop(), seed);
            let r1 = m.run_phase(&traits, &PhasePlan::split(n, 0.5).with_seed(1));
            let r2 = m.run_phase(&traits, &PhasePlan::profile(n, 2048).with_seed(2));
            (r1.elapsed, r1.energy_joules, r2.cpu_items_done, m.total_joules(), m.read_energy_raw())
        };
        prop_assert_eq!(run(), run());
    }

    /// The profiling phase never exceeds its pools and stops with the GPU.
    #[test]
    fn profile_phase_respects_pools(
        traits in traits_strategy(),
        pool in 0u64..1_000_000,
        chunk in 1u64..10_000,
    ) {
        let mut m = Machine::new(Platform::haswell_desktop());
        let r = m.run_phase(&traits, &PhasePlan::profile(pool, chunk));
        prop_assert!((r.gpu_items_done - chunk as f64).abs() < 1.0);
        prop_assert!(r.cpu_items_done <= pool as f64 + 1.0);
    }

    /// Trace resampling conserves time-weighted mean power.
    #[test]
    fn resample_conserves_mean_power(
        watts in prop::collection::vec(1.0..100.0f64, 1..100),
        resolution in 0.001..0.1f64,
    ) {
        let mut t = PowerTrace::new();
        let mut now = 0.0;
        for (i, &w) in watts.iter().enumerate() {
            let dur = 0.001 + 0.001 * (i % 7) as f64;
            t.push(now, w, dur);
            now += dur;
        }
        let r = t.resample(resolution);
        prop_assert!((r.mean_power() - t.mean_power()).abs() < 1e-6);
    }

    /// Package power targets respect the calibration envelope.
    #[test]
    fn power_target_within_envelope(
        platform in platforms(),
        uc in 0.0..1.0f64,
        ug in 0.0..1.0f64,
        m in 0.0..1.0f64,
    ) {
        let t = &platform.power;
        let p = t.target_power(uc, ug, m, 1.0, 1.0);
        let hi = [t.cpu_compute, t.cpu_memory, t.gpu_compute, t.gpu_memory, t.both_compute, t.both_memory]
            .into_iter()
            .fold(t.idle, f64::max);
        prop_assert!(p >= 0.0);
        prop_assert!(p <= hi * 1.0001, "p={p} above envelope {hi}");
    }
}
