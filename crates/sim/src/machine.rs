//! The simulated machine: virtual time, device execution, and the black-box
//! observables (energy register, perf counters, wall clock).
//!
//! [`Machine::run_phase`] is the single execution primitive: it processes a
//! batch of data-parallel iterations split between the CPU and GPU, stepping
//! the PCU tick by tick, integrating package power into the energy counter,
//! and accounting per-item hardware-counter footprints. The heterogeneous
//! runtime composes phases into the paper's execution structure (profiling
//! phase, combined phase, single-device tail).

use crate::bandwidth::{contended_rates, BwDemand};
use crate::counters::{CounterBank, CounterSnapshot};
use crate::energy::{EnergyCounter, ENERGY_UNIT_JOULES};
use crate::noise;
use crate::pcu::{PcuInput, PcuState};
use crate::platform::Platform;
use crate::trace::PowerTrace;
use crate::traits::KernelTraits;
use std::cell::Cell;

/// Remaining-item threshold below which a device side counts as finished.
const EPS_ITEMS: f64 = 1e-9;
/// Smallest simulation step, seconds (guarantees progress).
const MIN_DT: f64 = 1e-9;
/// Hard cap on steps per phase; hitting it indicates a simulator bug.
const MAX_STEPS: u64 = 100_000_000;

/// Work assignment for one execution phase.
///
/// A phase runs until both sides finish their assigned items, or — with
/// [`PhasePlan::stop_when_gpu_done`] — until the GPU side finishes (the
/// online-profiling pattern: CPU workers keep draining the shared pool while
/// the GPU proxy thread waits for the GPU chunk).
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePlan {
    /// Iterations assigned to the CPU workers.
    pub cpu_items: f64,
    /// Iterations offloaded to the GPU.
    pub gpu_items: f64,
    /// CPU utilization while CPU work remains (fraction of cores), in (0, 1].
    pub cpu_util: f64,
    /// Stop the phase as soon as the GPU side finishes.
    pub stop_when_gpu_done: bool,
    /// Invocation seed for irregularity noise; combine with a per-kernel
    /// value for reproducible-but-varying behaviour across invocations.
    pub seed: u64,
}

impl PhasePlan {
    /// A phase executing `n` items with GPU offload ratio `alpha` (α·n on the
    /// GPU, the rest on the CPU).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside [0, 1].
    ///
    /// ```
    /// use easched_sim::PhasePlan;
    /// let p = PhasePlan::split(100, 0.25);
    /// assert_eq!(p.gpu_items, 25.0);
    /// assert_eq!(p.cpu_items, 75.0);
    /// ```
    pub fn split(n: u64, alpha: f64) -> PhasePlan {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        let gpu = (n as f64 * alpha).round();
        PhasePlan {
            cpu_items: n as f64 - gpu,
            gpu_items: gpu,
            cpu_util: 1.0,
            stop_when_gpu_done: false,
            seed: 0,
        }
    }

    /// A CPU-only phase of `n` items.
    pub fn cpu_only(n: u64) -> PhasePlan {
        PhasePlan {
            cpu_items: n as f64,
            gpu_items: 0.0,
            cpu_util: 1.0,
            stop_when_gpu_done: false,
            seed: 0,
        }
    }

    /// A GPU-only phase of `n` items.
    pub fn gpu_only(n: u64) -> PhasePlan {
        PhasePlan {
            cpu_items: 0.0,
            gpu_items: n as f64,
            cpu_util: 1.0,
            stop_when_gpu_done: false,
            seed: 0,
        }
    }

    /// An online-profiling phase: offload `gpu_chunk` items to the GPU while
    /// the CPU drains up to `cpu_pool` items; the phase ends when the GPU
    /// chunk completes.
    pub fn profile(cpu_pool: u64, gpu_chunk: u64) -> PhasePlan {
        PhasePlan {
            cpu_items: cpu_pool as f64,
            gpu_items: gpu_chunk as f64,
            cpu_util: 1.0,
            stop_when_gpu_done: true,
            seed: 0,
        }
    }

    /// Sets the invocation seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> PhasePlan {
        self.seed = seed;
        self
    }

    /// Sets the CPU utilization (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `util` is not in (0, 1].
    pub fn with_cpu_util(mut self, util: f64) -> PhasePlan {
        assert!(util > 0.0 && util <= 1.0, "cpu_util must be in (0, 1]");
        self.cpu_util = util;
        self
    }
}

/// What happened during one phase.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseReport {
    /// Wall-clock (virtual) duration of the phase, seconds.
    pub elapsed: f64,
    /// Iterations completed by the CPU.
    pub cpu_items_done: f64,
    /// Iterations completed by the GPU.
    pub gpu_items_done: f64,
    /// Time during which both devices were executing, seconds.
    pub combined_time: f64,
    /// Time the CPU spent executing, seconds.
    pub cpu_busy: f64,
    /// Time the GPU spent executing, seconds.
    pub gpu_busy: f64,
    /// Package energy consumed during the phase, joules (internal exact
    /// accounting; the scheduler should use the energy register instead).
    pub energy_joules: f64,
}

impl PhaseReport {
    /// CPU throughput observed during CPU-busy time, items/second.
    ///
    /// Returns 0 if the CPU never ran.
    pub fn cpu_rate(&self) -> f64 {
        if self.cpu_busy > 0.0 {
            self.cpu_items_done / self.cpu_busy
        } else {
            0.0
        }
    }

    /// GPU throughput observed during GPU-busy time, items/second.
    ///
    /// Returns 0 if the GPU never ran.
    pub fn gpu_rate(&self) -> f64 {
        if self.gpu_busy > 0.0 {
            self.gpu_items_done / self.gpu_busy
        } else {
            0.0
        }
    }
}

/// An injectable malfunction of the package energy register, for chaos
/// testing (see [`Machine::inject_energy_fault`]).
///
/// Real `MSR_PKG_ENERGY_STATUS` reads occasionally come back stale
/// (firmware not updating the MSR) or torn across the 32-bit wrap; these
/// variants reproduce both failure shapes at the register-read boundary so
/// everything downstream — delta arithmetic, observations, the scheduler —
/// sees exactly what broken hardware would produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnergyFault {
    /// The next `reads` register reads return the value latched at
    /// injection time: a stuck sensor, so energy deltas over the faulty
    /// window measure zero.
    Stuck {
        /// How many consecutive reads return the stuck value.
        reads: u32,
    },
    /// The next read returns the true value with the top bit flipped,
    /// which delta arithmetic sees as a spurious half-range wrap
    /// (2³¹ × 2⁻¹⁶ J ≈ 32.8 kJ of phantom energy).
    SpuriousWrap,
}

/// Internal latched state for an injected [`EnergyFault`].
#[derive(Debug, Clone, Copy)]
enum SensorFault {
    Stuck { left: u32, value: u32 },
    Wrap,
}

/// A simulated integrated CPU-GPU machine.
///
/// See the [crate docs](crate) for the modelling rationale. All state
/// (clock, PCU, counters) is owned here; the machine is deterministic given
/// its platform and seed.
#[derive(Debug, Clone)]
pub struct Machine {
    platform: Platform,
    time: f64,
    pcu: PcuState,
    energy: EnergyCounter,
    counters: CounterBank,
    trace: Option<PowerTrace>,
    total_joules: f64,
    seed: u64,
    phase_counter: u64,
    /// Pending injected register fault; `Cell` because faults fire on
    /// `read_energy_raw(&self)`, the same immutable path real MSR reads
    /// take.
    energy_fault: Cell<Option<SensorFault>>,
}

impl Machine {
    /// Creates a machine on `platform` with the default noise seed.
    pub fn new(platform: Platform) -> Machine {
        Machine::with_seed(platform, 0)
    }

    /// Creates a machine with an explicit noise seed (different seeds give
    /// different — but each fully deterministic — noise histories).
    pub fn with_seed(platform: Platform, seed: u64) -> Machine {
        let pcu = PcuState::new(&platform, noise::combine(seed, 0x9C5));
        Machine {
            platform,
            time: 0.0,
            pcu,
            energy: EnergyCounter::new(),
            counters: CounterBank::default(),
            trace: None,
            total_joules: 0.0,
            seed,
            phase_counter: 0,
            energy_fault: Cell::new(None),
        }
    }

    /// The platform this machine simulates.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.time
    }

    /// Reads the raw 32-bit package energy register (wrapping), as the
    /// paper's runtime reads `MSR_PKG_ENERGY_STATUS`.
    ///
    /// If a fault was injected with
    /// [`inject_energy_fault`](Machine::inject_energy_fault), the read
    /// misbehaves accordingly; the underlying accumulation is unaffected,
    /// so the register recovers once the fault expires.
    pub fn read_energy_raw(&self) -> u32 {
        match self.energy_fault.get() {
            Some(SensorFault::Stuck { left, value }) => {
                self.energy_fault.set(if left > 1 {
                    Some(SensorFault::Stuck {
                        left: left - 1,
                        value,
                    })
                } else {
                    None
                });
                value
            }
            Some(SensorFault::Wrap) => {
                self.energy_fault.set(None);
                self.energy.read_raw() ^ 0x8000_0000
            }
            None => self.energy.read_raw(),
        }
    }

    /// Injects a one-shot malfunction into the energy register — the sim's
    /// hook for fault-injection tests. The fault affects only subsequent
    /// [`read_energy_raw`](Machine::read_energy_raw) calls, never the
    /// energy actually accumulated.
    pub fn inject_energy_fault(&mut self, fault: EnergyFault) {
        let state = match fault {
            EnergyFault::Stuck { reads: 0 } => None,
            EnergyFault::Stuck { reads } => Some(SensorFault::Stuck {
                left: reads,
                value: self.energy.read_raw(),
            }),
            EnergyFault::SpuriousWrap => Some(SensorFault::Wrap),
        };
        self.energy_fault.set(state);
    }

    /// Joules per energy register unit.
    pub fn energy_unit_joules(&self) -> f64 {
        ENERGY_UNIT_JOULES
    }

    /// Exact total package energy since machine creation, joules.
    /// Diagnostic only — schedulers must use the register.
    pub fn total_joules(&self) -> f64 {
        self.total_joules
    }

    /// Snapshot of the CPU hardware counters.
    pub fn counters(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Enables power tracing; subsequent steps append samples.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(PowerTrace::new());
        }
    }

    /// Takes the accumulated trace, leaving tracing enabled with an empty
    /// trace. Returns an empty trace if tracing was never enabled.
    pub fn take_trace(&mut self) -> PowerTrace {
        match self.trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => PowerTrace::new(),
        }
    }

    /// Advances the machine `seconds` with both devices idle.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or non-finite.
    pub fn idle(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "idle duration must be non-negative"
        );
        let mut remaining = seconds;
        let input = PcuInput::default();
        while remaining > MIN_DT {
            let dt = remaining.min(self.platform.pcu.tick);
            self.advance(&input, dt);
            remaining -= dt;
        }
    }

    /// Executes one phase of `traits` under `plan`. See [`PhasePlan`].
    ///
    /// # Panics
    ///
    /// Panics if the plan contains negative or non-finite item counts.
    pub fn run_phase(&mut self, traits: &KernelTraits, plan: &PhasePlan) -> PhaseReport {
        assert!(
            plan.cpu_items.is_finite() && plan.cpu_items >= 0.0,
            "cpu_items must be non-negative"
        );
        assert!(
            plan.gpu_items.is_finite() && plan.gpu_items >= 0.0,
            "gpu_items must be non-negative"
        );
        self.phase_counter += 1;
        let phase_seed = noise::combine(self.seed, noise::combine(plan.seed, self.phase_counter));
        let sigma_cpu = traits.irregularity() * 0.10;
        let sigma_gpu = traits.irregularity() * 0.22;
        let cpu_noise = noise::rate_factor(noise::combine(phase_seed, 1), sigma_cpu);
        let gpu_noise = noise::rate_factor(noise::combine(phase_seed, 2), sigma_gpu);

        // GPU occupancy: a chunk smaller than the hardware width cannot fill
        // the machine.
        let hw_par = f64::from(self.platform.gpu.hardware_parallelism());
        let occupancy = if plan.gpu_items > 0.0 {
            (plan.gpu_items / hw_par).min(1.0)
        } else {
            1.0
        };

        let mut cpu_rem = plan.cpu_items;
        let mut gpu_rem = plan.gpu_items;
        let mut report = PhaseReport::default();
        let mut steps: u64 = 0;

        loop {
            let cpu_active = cpu_rem > EPS_ITEMS;
            let gpu_active = gpu_rem > EPS_ITEMS;
            if !cpu_active && !gpu_active {
                break;
            }
            if plan.stop_when_gpu_done && !gpu_active {
                break;
            }
            steps += 1;
            assert!(
                steps < MAX_STEPS,
                "run_phase exceeded step budget (simulator bug)"
            );

            let input = PcuInput {
                cpu_util: if cpu_active { plan.cpu_util } else { 0.0 },
                gpu_util: if gpu_active { 1.0 } else { 0.0 },
                mem_intensity: traits.memory_intensity(),
            };
            let grant = self.pcu.freq_grant(&self.platform, &input, self.time);

            // Frequency affects throughput roofline-style: only the compute
            // fraction of an item's time scales with clock speed; the
            // memory-stall fraction does not. (Power, in contrast, scales
            // with f^2.5 — handled inside the PCU's power model.)
            let m = traits.memory_intensity();
            let freq_tp = |scale: f64| {
                if scale >= 1.0 {
                    1.0
                } else {
                    1.0 / ((1.0 - m) / scale.max(1e-6) + m)
                }
            };

            // Uncontended rates at the current frequency grant.
            let cpu_solo = traits.cpu_rate() * plan.cpu_util * freq_tp(grant.cpu) * cpu_noise;
            let gpu_solo = traits.gpu_rate() * occupancy * freq_tp(grant.gpu) * gpu_noise;
            let demands = [
                BwDemand {
                    rate: if cpu_active { cpu_solo } else { 0.0 },
                    bytes_per_item: traits.bw_bytes_per_item(),
                    memory_fraction: traits.memory_intensity(),
                },
                BwDemand {
                    rate: if gpu_active { gpu_solo } else { 0.0 },
                    bytes_per_item: traits.bw_bytes_per_item(),
                    memory_fraction: traits.memory_intensity(),
                },
            ];
            let rates = contended_rates(self.platform.memory.peak_bw_bytes_per_sec, &demands);
            let (rc, rg) = (rates[0], rates[1]);

            // Step until the next completion or PCU tick, whichever first.
            let t_c = if cpu_active && rc > 0.0 {
                cpu_rem / rc
            } else {
                f64::INFINITY
            };
            let t_g = if gpu_active && rg > 0.0 {
                gpu_rem / rg
            } else {
                f64::INFINITY
            };
            let dt = self.platform.pcu.tick.min(t_c).min(t_g).max(MIN_DT);

            let watts = self.advance(&input, dt);
            report.energy_joules += watts * dt;
            report.elapsed += dt;

            if cpu_active {
                let done = (rc * dt).min(cpu_rem);
                cpu_rem -= done;
                report.cpu_items_done += done;
                report.cpu_busy += dt;
                self.counters.record_cpu_items(
                    done,
                    traits.instr_per_item(),
                    traits.loads_per_item(),
                    traits.l3_miss_ratio(self.platform.memory.llc_bytes),
                );
            }
            if gpu_active {
                let done = (rg * dt).min(gpu_rem);
                gpu_rem -= done;
                report.gpu_items_done += done;
                report.gpu_busy += dt;
            }
            if cpu_active && gpu_active {
                report.combined_time += dt;
            }
        }
        report
    }

    /// Advances time by `dt` under `input`, integrating power into the
    /// energy counter and trace. Returns average watts over the interval.
    fn advance(&mut self, input: &PcuInput, dt: f64) -> f64 {
        let watts = self.pcu.step(&self.platform, input, self.time, dt);
        let joules = watts * dt;
        self.energy.deposit_joules(joules);
        self.total_joules += joules;
        if let Some(trace) = self.trace.as_mut() {
            trace.push(self.time, watts, dt);
        }
        self.time += dt;
        watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::AccessPattern;

    fn quiet_haswell() -> Platform {
        let mut p = Platform::haswell_desktop();
        p.pcu.measurement_noise = 0.0;
        p
    }

    fn compute_kernel() -> KernelTraits {
        KernelTraits::builder("compute")
            .cpu_rate(1.0e6)
            .gpu_rate(2.0e6)
            .memory_intensity(0.0)
            .build()
    }

    fn memory_kernel() -> KernelTraits {
        KernelTraits::builder("memory")
            .cpu_rate(1.0e6)
            .gpu_rate(2.0e6)
            .memory_intensity(1.0)
            .access(AccessPattern::Random)
            .working_set_bytes(1 << 30)
            .bw_bytes_per_item(64.0)
            .build()
    }

    #[test]
    fn stuck_energy_fault_freezes_reads_then_recovers() {
        let mut m = Machine::new(quiet_haswell());
        let k = compute_kernel();
        m.run_phase(&k, &PhasePlan::cpu_only(100_000));
        let latched = m.read_energy_raw();
        // Re-inject against the latched value after the read above.
        m.inject_energy_fault(EnergyFault::Stuck { reads: 2 });
        m.run_phase(&k, &PhasePlan::cpu_only(100_000));
        // The two faulty reads both return the injection-time value: the
        // window's delta measures zero despite real energy flowing.
        assert_eq!(m.read_energy_raw(), latched);
        assert_eq!(m.read_energy_raw(), latched);
        // Fault expired: the true (accumulated) value is visible again.
        assert!(m.read_energy_raw() > latched);
    }

    #[test]
    fn spurious_wrap_fault_flips_the_top_bit_once() {
        let mut m = Machine::new(quiet_haswell());
        let k = compute_kernel();
        m.run_phase(&k, &PhasePlan::cpu_only(100_000));
        let truth = m.read_energy_raw();
        m.inject_energy_fault(EnergyFault::SpuriousWrap);
        assert_eq!(m.read_energy_raw(), truth ^ 0x8000_0000);
        // One-shot: the next read is sane again.
        assert_eq!(m.read_energy_raw(), truth);
    }

    #[test]
    fn energy_faults_never_touch_accumulation() {
        let run = |fault: Option<EnergyFault>| {
            let mut m = Machine::new(quiet_haswell());
            if let Some(f) = fault {
                m.inject_energy_fault(f);
            }
            m.run_phase(&compute_kernel(), &PhasePlan::cpu_only(200_000));
            m.total_joules()
        };
        let clean = run(None);
        assert_eq!(clean, run(Some(EnergyFault::Stuck { reads: 10 })));
        assert_eq!(clean, run(Some(EnergyFault::SpuriousWrap)));
    }

    #[test]
    fn cpu_only_phase_takes_expected_time() {
        let mut m = Machine::new(quiet_haswell());
        let k = compute_kernel();
        let r = m.run_phase(&k, &PhasePlan::cpu_only(1_000_000));
        // 1e6 items at 1e6 items/s solo.
        assert!((r.elapsed - 1.0).abs() < 0.01, "elapsed {}", r.elapsed);
        assert!((r.cpu_items_done - 1.0e6).abs() < 1.0);
        assert_eq!(r.gpu_items_done, 0.0);
        assert_eq!(r.combined_time, 0.0);
    }

    #[test]
    fn gpu_only_phase_faster_when_gpu_faster() {
        let mut m = Machine::new(quiet_haswell());
        let k = compute_kernel();
        let r = m.run_phase(&k, &PhasePlan::gpu_only(1_000_000));
        assert!((r.elapsed - 0.5).abs() < 0.01, "elapsed {}", r.elapsed);
    }

    #[test]
    fn split_phase_has_combined_then_tail() {
        let mut m = Machine::new(quiet_haswell());
        let k = compute_kernel();
        // α=0.5: GPU (2e6/s derated) finishes its half before CPU (1e6/s).
        let r = m.run_phase(&k, &PhasePlan::split(1_000_000, 0.5));
        assert!(r.combined_time > 0.0);
        assert!(r.cpu_busy > r.gpu_busy);
        assert!((r.cpu_items_done + r.gpu_items_done - 1.0e6).abs() < 1.0);
    }

    #[test]
    fn combined_mode_derates_throughput() {
        let k = compute_kernel();
        let mut m = Machine::new(quiet_haswell());
        let solo = m.run_phase(&k, &PhasePlan::cpu_only(500_000)).cpu_rate();
        // A long combined run: CPU rate while GPU busy is derated by the
        // shared frequency scale.
        let mut m = Machine::new(quiet_haswell());
        let both = m.run_phase(&k, &PhasePlan::split(4_000_000, 0.5));
        let combined_cpu_rate = both.cpu_rate();
        assert!(
            combined_cpu_rate < solo,
            "combined {combined_cpu_rate} !< solo {solo}"
        );
    }

    #[test]
    fn memory_kernel_contended_in_combined_mode() {
        // Rates sized so the two devices together oversubscribe the bus.
        let k = KernelTraits::builder("hot")
            .cpu_rate(2.0e8)
            .gpu_rate(3.0e8)
            .memory_intensity(1.0)
            .bw_bytes_per_item(64.0)
            .build();
        let mut m = Machine::new(quiet_haswell());
        let solo_gpu = m.run_phase(&k, &PhasePlan::gpu_only(30_000_000)).gpu_rate();
        let mut m = Machine::new(quiet_haswell());
        let both = m.run_phase(&k, &PhasePlan::split(60_000_000, 0.5));
        assert!(
            both.gpu_rate() < solo_gpu * 0.95,
            "bus contention should derate GPU: {} vs {}",
            both.gpu_rate(),
            solo_gpu
        );
    }

    #[test]
    fn profiling_phase_stops_when_gpu_done() {
        let mut m = Machine::new(quiet_haswell());
        let k = compute_kernel();
        let plan = PhasePlan::profile(10_000_000, 2240);
        let r = m.run_phase(&k, &plan);
        assert!((r.gpu_items_done - 2240.0).abs() < 1.0);
        assert!(r.cpu_items_done < 10_000_000.0, "CPU pool not drained");
        assert!(r.cpu_items_done > 0.0, "CPU made progress");
    }

    #[test]
    fn small_gpu_chunks_lose_occupancy() {
        let k = compute_kernel();
        let mut m = Machine::new(quiet_haswell());
        let full = m.run_phase(&k, &PhasePlan::gpu_only(22_400)).gpu_rate();
        let mut m = Machine::new(quiet_haswell());
        let tiny = m.run_phase(&k, &PhasePlan::gpu_only(224)).gpu_rate();
        assert!(
            tiny < full * 0.2,
            "10% occupancy should cut rate ~10x: tiny {tiny} full {full}"
        );
    }

    #[test]
    fn energy_register_matches_internal_joules() {
        let mut m = Machine::new(quiet_haswell());
        let k = memory_kernel();
        let before = m.read_energy_raw();
        m.run_phase(&k, &PhasePlan::split(2_000_000, 0.5));
        let after = m.read_energy_raw();
        let register = EnergyCounter::delta_joules(before, after);
        assert!(
            (register - m.total_joules()).abs() < 2.0 * ENERGY_UNIT_JOULES + 1e-6,
            "register {register} vs exact {}",
            m.total_joules()
        );
        assert!(register > 0.0);
    }

    #[test]
    fn counters_accumulate_cpu_side_only() {
        let mut m = Machine::new(quiet_haswell());
        let k = memory_kernel();
        let r = m.run_phase(&k, &PhasePlan::split(1_000_000, 0.9));
        let c = m.counters();
        let expected_instr = r.cpu_items_done * k.instr_per_item();
        assert!((c.instructions - expected_instr).abs() / expected_instr < 1e-9);
        // Memory kernel with 1 GiB random working set: high miss ratio.
        assert!(c.miss_per_load() > 0.33);
    }

    #[test]
    fn compute_kernel_classifies_compute_bound() {
        let mut m = Machine::new(quiet_haswell());
        let k = compute_kernel();
        m.run_phase(&k, &PhasePlan::cpu_only(100_000));
        assert!(m.counters().miss_per_load() < 0.33);
    }

    #[test]
    fn idle_costs_idle_power() {
        let mut m = Machine::new(quiet_haswell());
        m.idle(2.0);
        assert!((m.now() - 2.0).abs() < 1e-9);
        assert!(
            (m.total_joules() - 10.0).abs() < 0.2,
            "{}",
            m.total_joules()
        );
    }

    #[test]
    fn trace_records_phases() {
        let mut m = Machine::new(quiet_haswell());
        m.enable_trace();
        let k = memory_kernel();
        m.run_phase(&k, &PhasePlan::cpu_only(2_000_000));
        let trace = m.take_trace();
        assert!(!trace.is_empty());
        // Steady memory-bound CPU power ≈ 60 W late in the run.
        let late = &trace.points()[trace.len() - 1];
        assert!((late.watts - 60.0).abs() < 1.0, "late watts {}", late.watts);
        // take_trace resets but keeps tracing on.
        m.run_phase(&k, &PhasePlan::cpu_only(10_000));
        assert!(!m.take_trace().is_empty());
    }

    #[test]
    fn determinism_same_seed() {
        let run = || {
            let mut m = Machine::with_seed(Platform::haswell_desktop(), 42);
            let k = KernelTraits::builder("irr")
                .cpu_rate(1.0e6)
                .gpu_rate(2.0e6)
                .irregularity(0.5)
                .build();
            let r = m.run_phase(&k, &PhasePlan::split(1_000_000, 0.5));
            (r.elapsed, r.cpu_items_done, m.total_joules())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_phases_draw_different_irregular_noise() {
        let mut m = Machine::new(quiet_haswell());
        let k = KernelTraits::builder("irr")
            .cpu_rate(1.0e6)
            .gpu_rate(2.0e6)
            .irregularity(0.8)
            .build();
        let r1 = m.run_phase(&k, &PhasePlan::cpu_only(500_000));
        let r2 = m.run_phase(&k, &PhasePlan::cpu_only(500_000));
        assert!(
            (r1.elapsed - r2.elapsed).abs() > 1e-6,
            "irregular kernels should vary across invocations"
        );
    }

    #[test]
    fn regular_kernel_phases_identical_after_warmup() {
        let mut m = Machine::new(quiet_haswell());
        let k = compute_kernel();
        m.run_phase(&k, &PhasePlan::cpu_only(5_000_000)); // warm PCU
        let r1 = m.run_phase(&k, &PhasePlan::cpu_only(1_000_000));
        let r2 = m.run_phase(&k, &PhasePlan::cpu_only(1_000_000));
        assert!((r1.elapsed - r2.elapsed).abs() < 1e-6);
    }

    #[test]
    fn empty_plan_is_noop() {
        let mut m = Machine::new(quiet_haswell());
        let k = compute_kernel();
        let t0 = m.now();
        let r = m.run_phase(
            &k,
            &PhasePlan {
                cpu_items: 0.0,
                gpu_items: 0.0,
                cpu_util: 1.0,
                stop_when_gpu_done: false,
                seed: 0,
            },
        );
        assert_eq!(r.elapsed, 0.0);
        assert_eq!(m.now(), t0);
    }

    #[test]
    #[should_panic(expected = "cpu_items must be non-negative")]
    fn negative_items_rejected() {
        let mut m = Machine::new(quiet_haswell());
        let k = compute_kernel();
        m.run_phase(
            &k,
            &PhasePlan {
                cpu_items: -1.0,
                gpu_items: 0.0,
                cpu_util: 1.0,
                stop_when_gpu_done: false,
                seed: 0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn split_rejects_bad_alpha() {
        PhasePlan::split(100, 1.5);
    }

    #[test]
    fn phase_report_rates() {
        let r = PhaseReport {
            elapsed: 2.0,
            cpu_items_done: 100.0,
            gpu_items_done: 400.0,
            combined_time: 1.0,
            cpu_busy: 2.0,
            gpu_busy: 1.0,
            energy_joules: 50.0,
        };
        assert_eq!(r.cpu_rate(), 50.0);
        assert_eq!(r.gpu_rate(), 400.0);
        assert_eq!(PhaseReport::default().cpu_rate(), 0.0);
    }
}
