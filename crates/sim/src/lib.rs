//! Deterministic integrated CPU-GPU platform simulator.
//!
//! The CGO'16 paper runs on two physical Windows machines (a Haswell i7-4770
//! desktop and a Bay Trail Z3740 tablet) and observes them strictly through a
//! black-box interface: the `MSR_PKG_ENERGY_STATUS` energy register, wall
//! clock time, and two hardware counters (L3 misses, instructions retired).
//! This crate provides a simulated machine exposing exactly that interface,
//! with internals calibrated to every operating point the paper reports:
//!
//! * steady-state package powers for compute-/memory-bound work on the CPU
//!   alone, the GPU alone, and both together (paper Figures 3, 5, 6);
//! * the package-control-unit (PCU) transient behaviour — first-order power
//!   ramps and the conservative budget-reallocation dip when the GPU
//!   activates during CPU execution (Figure 4);
//! * shared-memory-bandwidth contention that makes combined-mode device
//!   throughput sub-additive (the reason the paper profiles throughput *in*
//!   combined mode);
//! * a wrapping 32-bit RAPL-style energy counter in 2⁻¹⁶ J units.
//!
//! The scheduler crates never look inside the PCU or the power tables — they
//! interact with [`Machine`] through the same observables the real runtime
//! has, keeping the reproduction black-box end to end.
//!
//! # Examples
//!
//! Run a memory-bound kernel split across both devices and read the energy
//! counter the way the paper's runtime reads the MSR:
//!
//! ```
//! use easched_sim::{KernelTraits, Machine, PhasePlan, Platform};
//!
//! let mut m = Machine::new(Platform::haswell_desktop());
//! let traits = KernelTraits::builder("demo")
//!     .cpu_rate(1.0e6)
//!     .gpu_rate(3.0e6)
//!     .build();
//! let before = m.read_energy_raw();
//! let report = m.run_phase(&traits, &PhasePlan::split(1_000_000, 0.5));
//! let after = m.read_energy_raw();
//! let joules = after.wrapping_sub(before) as f64 * m.energy_unit_joules();
//! assert!(joules > 0.0 && report.elapsed > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod counters;
pub mod energy;
pub mod machine;
pub mod noise;
pub mod pcu;
pub mod platform;
pub mod power;
pub mod trace;
pub mod traits;

pub use counters::CounterSnapshot;
pub use energy::EnergyCounter;
pub use machine::{EnergyFault, Machine, PhasePlan, PhaseReport};
pub use platform::{CpuSpec, GpuSpec, MemorySpec, Platform};
pub use power::PowerTable;
pub use trace::{PowerTrace, TracePoint};
pub use traits::{AccessPattern, KernelTraits, KernelTraitsBuilder};
