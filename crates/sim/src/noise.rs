//! Deterministic pseudo-noise for the simulator.
//!
//! Real hardware is noisy: power readings jitter tick to tick, and irregular
//! kernels (input-dependent control flow) have run-to-run throughput
//! variation. The simulator reproduces both with *deterministic* noise
//! derived from hash mixing, so every experiment is exactly repeatable while
//! still stressing the scheduler's robustness the way real noise does.

/// SplitMix64 hash step: a high-quality 64-bit mixer.
///
/// # Examples
///
/// ```
/// use easched_sim::noise::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two seeds into one.
///
/// ```
/// use easched_sim::noise::combine;
/// assert_ne!(combine(1, 2), combine(2, 1));
/// ```
pub fn combine(a: u64, b: u64) -> u64 {
    splitmix64(a ^ splitmix64(b))
}

/// Uniform sample in [0, 1) derived from a seed.
///
/// ```
/// use easched_sim::noise::unit;
/// let u = unit(7);
/// assert!((0.0..1.0).contains(&u));
/// ```
pub fn unit(seed: u64) -> f64 {
    // 53 high-quality bits → [0, 1).
    (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// Symmetric multiplicative jitter: `1 + amplitude·u` with `u` uniform in
/// (−1, 1). `amplitude` 0 returns exactly 1.
///
/// ```
/// use easched_sim::noise::jitter;
/// assert_eq!(jitter(3, 0.0), 1.0);
/// let j = jitter(3, 0.1);
/// assert!(j > 0.9 && j < 1.1);
/// ```
pub fn jitter(seed: u64, amplitude: f64) -> f64 {
    if amplitude == 0.0 {
        return 1.0;
    }
    1.0 + amplitude * (2.0 * unit(seed) - 1.0)
}

/// Log-normal-ish throughput factor for irregular kernels: `exp(σ·z)` with
/// `z` an approximately standard-normal variate (sum of 4 uniforms, central
/// limit). `sigma` 0 returns exactly 1.
///
/// Guaranteed strictly positive.
///
/// ```
/// use easched_sim::noise::rate_factor;
/// assert_eq!(rate_factor(9, 0.0), 1.0);
/// assert!(rate_factor(9, 0.3) > 0.0);
/// ```
pub fn rate_factor(seed: u64, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    // Irwin-Hall(4) recentred/rescaled: mean 0, variance 1.
    let s: f64 = (0..4).map(|i| unit(combine(seed, i))).sum();
    let z = (s - 2.0) * (3.0f64).sqrt();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_distinctness() {
        let vals: Vec<u64> = (0..1000).map(splitmix64).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 1000, "no collisions in small range");
    }

    #[test]
    fn unit_in_range_and_roughly_uniform() {
        let n = 10_000;
        let mean: f64 = (0..n).map(unit).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        for i in 0..n {
            let u = unit(i);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn jitter_bounds() {
        for i in 0..1000 {
            let j = jitter(i, 0.05);
            assert!(j > 0.95 && j < 1.05);
        }
    }

    #[test]
    fn rate_factor_centered_near_one() {
        let n = 20_000;
        let mean: f64 = (0..n).map(|i| rate_factor(i, 0.2)).sum::<f64>() / n as f64;
        // E[exp(σz)] = exp(σ²/2) ≈ 1.02 for σ=0.2.
        assert!((mean - 1.02).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn rate_factor_strictly_positive_even_large_sigma() {
        for i in 0..1000 {
            assert!(rate_factor(i, 2.0) > 0.0);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(rate_factor(123, 0.3), rate_factor(123, 0.3));
        assert_eq!(jitter(55, 0.1), jitter(55, 0.1));
    }

    #[test]
    fn combine_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
        assert_ne!(combine(0, 0), 0);
    }
}
