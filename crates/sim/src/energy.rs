//! RAPL-style package energy counter.
//!
//! The paper measures energy by sampling the machine-specific register
//! `MSR_PKG_ENERGY_STATUS` (footnote 1). That register is a **32-bit
//! wrapping counter** denominated in energy status units (2⁻¹⁶ J ≈ 15.3 µJ
//! on these parts). Reading it from the runtime requires exactly the
//! wraparound-safe subtraction that [`EnergyCounter::delta_joules`]
//! implements; this is the code a real port would run via MSR FFI.

/// Energy status unit: 2⁻¹⁶ joules, the RAPL default on Haswell/Bay Trail.
pub const ENERGY_UNIT_JOULES: f64 = 1.0 / 65536.0;

/// A wrapping 32-bit package energy counter in units of
/// [`ENERGY_UNIT_JOULES`].
///
/// # Examples
///
/// ```
/// use easched_sim::EnergyCounter;
///
/// let mut c = EnergyCounter::new();
/// let before = c.read_raw();
/// c.deposit_joules(1.5);
/// let after = c.read_raw();
/// let measured = EnergyCounter::delta_joules(before, after);
/// assert!((measured - 1.5).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyCounter {
    raw: u32,
    /// Sub-unit residue not yet visible in the register, in joules.
    fraction: f64,
}

impl EnergyCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        EnergyCounter {
            raw: 0,
            fraction: 0.0,
        }
    }

    /// Creates a counter with an arbitrary starting register value, as on
    /// real hardware where the register has been counting since boot.
    ///
    /// ```
    /// use easched_sim::EnergyCounter;
    /// let c = EnergyCounter::with_raw(u32::MAX - 5);
    /// assert_eq!(c.read_raw(), u32::MAX - 5);
    /// ```
    pub fn with_raw(raw: u32) -> Self {
        EnergyCounter { raw, fraction: 0.0 }
    }

    /// Reads the raw 32-bit register.
    pub fn read_raw(&self) -> u32 {
        self.raw
    }

    /// Total energy shown by the register in joules **since the last wrap**;
    /// mainly useful for diagnostics.
    pub fn read_joules(&self) -> f64 {
        self.raw as f64 * ENERGY_UNIT_JOULES
    }

    /// Accumulates `joules` of package energy into the register.
    ///
    /// Negative or non-finite deposits are ignored (power is non-negative).
    pub fn deposit_joules(&mut self, joules: f64) {
        if !(joules.is_finite() && joules > 0.0) {
            return;
        }
        let total = self.fraction + joules;
        let units = (total / ENERGY_UNIT_JOULES).floor();
        self.fraction = total - units * ENERGY_UNIT_JOULES;
        // The register wraps modulo 2³².
        let add = (units as u64 % (1u64 << 32)) as u32;
        self.raw = self.raw.wrapping_add(add);
    }

    /// Wraparound-safe energy delta between two register samples, in joules.
    ///
    /// Assumes at most one wrap between the samples, as the paper's sampling
    /// does (at ~60 W a 32-bit 15 µJ counter wraps roughly every 18 minutes).
    ///
    /// ```
    /// use easched_sim::EnergyCounter;
    /// // Sample taken just before a wrap, second sample after it.
    /// let d = EnergyCounter::delta_joules(u32::MAX - 10, 20);
    /// assert!((d - 31.0 / 65536.0).abs() < 1e-9);
    /// ```
    pub fn delta_joules(before: u32, after: u32) -> f64 {
        after.wrapping_sub(before) as f64 * ENERGY_UNIT_JOULES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(EnergyCounter::new().read_raw(), 0);
        assert_eq!(EnergyCounter::new().read_joules(), 0.0);
    }

    #[test]
    fn accumulates_whole_units() {
        let mut c = EnergyCounter::new();
        c.deposit_joules(1.0);
        assert_eq!(c.read_raw(), 65536);
    }

    #[test]
    fn sub_unit_deposits_eventually_tick() {
        let mut c = EnergyCounter::new();
        // Half a unit at a time: every second deposit ticks the register.
        for _ in 0..10 {
            c.deposit_joules(ENERGY_UNIT_JOULES / 2.0);
        }
        assert_eq!(c.read_raw(), 5);
    }

    #[test]
    fn no_energy_lost_to_fraction() {
        let mut c = EnergyCounter::new();
        let step = 0.000_123_4;
        let n = 10_000;
        for _ in 0..n {
            c.deposit_joules(step);
        }
        let measured = c.read_raw() as f64 * ENERGY_UNIT_JOULES;
        assert!((measured - step * n as f64).abs() < ENERGY_UNIT_JOULES * 2.0);
    }

    #[test]
    fn wraps_at_32_bits() {
        let mut c = EnergyCounter::with_raw(u32::MAX);
        c.deposit_joules(ENERGY_UNIT_JOULES * 2.5);
        assert_eq!(c.read_raw(), 1);
    }

    #[test]
    fn delta_across_wrap() {
        let mut c = EnergyCounter::with_raw(u32::MAX - 100);
        let before = c.read_raw();
        c.deposit_joules(0.01); // 655 units, crosses the wrap
        let after = c.read_raw();
        assert!(after < before, "should have wrapped");
        let d = EnergyCounter::delta_joules(before, after);
        assert!((d - 0.01).abs() < 2.0 * ENERGY_UNIT_JOULES);
    }

    #[test]
    fn ignores_invalid_deposits() {
        let mut c = EnergyCounter::new();
        c.deposit_joules(-1.0);
        c.deposit_joules(f64::NAN);
        c.deposit_joules(f64::INFINITY);
        c.deposit_joules(0.0);
        assert_eq!(c.read_raw(), 0);
    }

    #[test]
    fn unit_matches_rapl_default() {
        assert!((ENERGY_UNIT_JOULES - 15.258e-6).abs() < 0.1e-6);
    }
}
