//! Package control unit (PCU) model.
//!
//! The PCU firmware on integrated parts governs device frequencies and the
//! shared power budget with policies the vendor does not document — the
//! paper's whole premise is treating it as a black box. Our model reproduces
//! the externally observable phenomenology the paper reports:
//!
//! * **Steady states** — package power settles to the calibrated operating
//!   point for the current device activity and workload class (Fig 3).
//! * **First-order ramps** — power approaches its target exponentially with
//!   time constant [`PcuParams::ramp_tau`], so very short kernels never
//!   reach steady state (one reason the paper distinguishes short/long
//!   workload categories).
//! * **Activation dip** — when the GPU becomes active while the CPU is
//!   running, the PCU conservatively reallocates budget: the CPU frequency
//!   dips for [`PcuParams::dip_window`], dropping package power before the
//!   controller re-learns the sustainable operating point. This is Fig 4's
//!   "short GPU bursts drop package power from ~60 W to <40 W".
//! * **Measurement jitter** — deterministic per-tick noise on the power
//!   reading, so curve fitting sees realistic scatter.

use crate::noise;
use crate::platform::Platform;
use crate::power::PowerTable;

/// Tunable PCU control parameters (part of a [`Platform`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PcuParams {
    /// Controller sampling interval in seconds.
    pub tick: f64,
    /// Time constant of the package-power ramp when power is *rising*,
    /// seconds (turbo budgets grow gradually).
    pub ramp_tau: f64,
    /// Time constant when power is *falling*, seconds (clock/power gating is
    /// near-instant, so this is much shorter).
    pub ramp_tau_down: f64,
    /// Duration of the conservative budget-reallocation dip after a GPU
    /// activation, seconds.
    pub dip_window: f64,
    /// CPU frequency scale applied during the dip (relative to its expected
    /// scale).
    pub dip_cpu_scale: f64,
    /// Minimum GPU-idle duration before a fresh activation re-arms the dip,
    /// seconds. Sub-millisecond gaps between consecutive offloads do not
    /// make the PCU forget its learned budget split.
    pub dip_rearm: f64,
    /// Relative amplitude of per-tick power measurement jitter.
    pub measurement_noise: f64,
    /// Package thermal design power, watts. When the steady-state target
    /// for the current activity exceeds this, the PCU throttles both
    /// devices' frequencies until the package fits the budget (the
    /// "shared chip-level power budget and thermal capacity" of §1).
    /// `None` disables the cap.
    pub tdp: Option<f64>,
}

/// Device activity as seen by the PCU each tick.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PcuInput {
    /// CPU utilization in [0, 1].
    pub cpu_util: f64,
    /// GPU utilization in [0, 1].
    pub gpu_util: f64,
    /// Memory intensity of the running kernel in [0, 1].
    pub mem_intensity: f64,
}

/// Frequency scales the PCU currently grants each device, relative to the
/// solo-turbo calibration point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqGrant {
    /// CPU frequency scale.
    pub cpu: f64,
    /// GPU frequency scale.
    pub gpu: f64,
}

/// PCU dynamic state. Owned by the machine; stepped once per simulation
/// step.
#[derive(Debug, Clone)]
pub struct PcuState {
    /// Filtered (observable) package power in watts.
    power: f64,
    gpu_was_active: bool,
    cpu_was_active: bool,
    /// Simulation time of the most recent dip-arming GPU activation.
    last_gpu_activation: f64,
    /// Simulation time the GPU last went idle.
    last_gpu_deactivation: f64,
    tick_count: u64,
    noise_seed: u64,
}

/// Utilization above which a device counts as "active" for activation
/// tracking.
const ACTIVE_THRESHOLD: f64 = 0.05;

impl PcuState {
    /// Creates PCU state resting at the platform's idle power.
    pub fn new(platform: &Platform, noise_seed: u64) -> Self {
        PcuState {
            power: platform.power.idle,
            gpu_was_active: false,
            cpu_was_active: false,
            last_gpu_activation: f64::NEG_INFINITY,
            last_gpu_deactivation: f64::NEG_INFINITY,
            tick_count: 0,
            noise_seed,
        }
    }

    /// Currently observable package power in watts (after ramp filtering and
    /// measurement jitter).
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Frequency scales currently granted, given the instantaneous activity.
    ///
    /// Solo device → 1.0 (the calibration reference). Both devices →
    /// the platform's shared scales. During the post-activation dip window
    /// the CPU is additionally throttled by `dip_cpu_scale`. If the
    /// steady-state power target would exceed the TDP, both grants are
    /// scaled down until the budget fits.
    pub fn freq_grant(&self, platform: &Platform, input: &PcuInput, now: f64) -> FreqGrant {
        let cpu_active = input.cpu_util > ACTIVE_THRESHOLD;
        let gpu_active = input.gpu_util > ACTIVE_THRESHOLD;
        let mut cpu = 1.0;
        let mut gpu = 1.0;
        if cpu_active && gpu_active {
            cpu = platform.sharing.cpu_shared_scale;
            gpu = platform.sharing.gpu_shared_scale;
            if now - self.last_gpu_activation < platform.pcu.dip_window {
                cpu *= platform.pcu.dip_cpu_scale;
            }
        }
        let throttle = Self::tdp_throttle(platform, input);
        FreqGrant {
            cpu: cpu * throttle,
            gpu: gpu * throttle,
        }
    }

    /// Frequency scale (≤ 1) that fits the activity's steady-state power
    /// target inside the TDP; 1 when no cap applies. Dynamic power scales
    /// as f^2.5, so the scale is (tdp/target)^(1/2.5).
    fn tdp_throttle(platform: &Platform, input: &PcuInput) -> f64 {
        let Some(tdp) = platform.pcu.tdp else {
            return 1.0;
        };
        let target = platform.power.target_power(
            input.cpu_util,
            input.gpu_util,
            input.mem_intensity,
            1.0,
            1.0,
        );
        if target <= tdp {
            1.0
        } else {
            // Only the dynamic excess above idle responds to frequency:
            // solve idle + (target − idle)·f^2.5 = tdp for f.
            let idle = platform.power.idle;
            let excess = (target - idle).max(1e-9);
            let budget = (tdp - idle).max(0.0);
            (budget / excess).powf(1.0 / 2.5).clamp(0.05, 1.0)
        }
    }

    /// Advances the PCU by `dt` seconds under `input` activity, returning the
    /// average observable package power over the interval.
    ///
    /// `now` is the simulation time at the *start* of the interval.
    pub fn step(&mut self, platform: &Platform, input: &PcuInput, now: f64, dt: f64) -> f64 {
        debug_assert!(dt > 0.0, "PCU step requires positive dt");
        let cpu_active = input.cpu_util > ACTIVE_THRESHOLD;
        let gpu_active = input.gpu_util > ACTIVE_THRESHOLD;

        // The conservative budget-reallocation dip only occurs when the GPU
        // activates *into* ongoing CPU execution after a real idle period:
        // the PCU had re-granted the whole budget to the CPU and must claw
        // it back. Devices starting together from idle, or offload chunks
        // separated by sub-millisecond gaps, do not dip.
        if gpu_active && !self.gpu_was_active {
            if self.cpu_was_active && now - self.last_gpu_deactivation > platform.pcu.dip_rearm {
                self.last_gpu_activation = now;
            }
        } else if !gpu_active && self.gpu_was_active {
            self.last_gpu_deactivation = now;
        }
        self.gpu_was_active = gpu_active;
        self.cpu_was_active = cpu_active;

        let grant = self.freq_grant(platform, input, now);
        // The power table is calibrated at solo-turbo (factor 1) and at the
        // shared scales in combined mode, so the *factor* fed to the table is
        // the deviation from the expected scale — only transients (the dip)
        // deviate.
        let expected = if cpu_active && gpu_active {
            (
                platform.sharing.cpu_shared_scale,
                platform.sharing.gpu_shared_scale,
            )
        } else {
            (1.0, 1.0)
        };
        let target = self.target_power(
            &platform.power,
            input,
            grant.cpu / expected.0,
            grant.gpu / expected.1,
        );

        // First-order ramp: integrate the exponential approach analytically
        // over dt so step size does not change the trajectory. Falling power
        // uses the (much faster) down time constant.
        let tau = if target < self.power {
            platform.pcu.ramp_tau_down.max(1e-6)
        } else {
            platform.pcu.ramp_tau.max(1e-6)
        };
        let k = (-dt / tau).exp();
        let end_power = target + (self.power - target) * k;
        // Average of the exponential over [0, dt].
        let avg = target + (self.power - target) * (1.0 - k) * tau / dt;
        self.power = end_power;

        self.tick_count += 1;
        let jitter = noise::jitter(
            noise::combine(self.noise_seed, self.tick_count),
            platform.pcu.measurement_noise,
        );
        avg * jitter
    }

    fn target_power(
        &self,
        table: &PowerTable,
        input: &PcuInput,
        cpu_freq_factor: f64,
        gpu_freq_factor: f64,
    ) -> f64 {
        table.target_power(
            input.cpu_util,
            input.gpu_util,
            input.mem_intensity,
            cpu_freq_factor,
            gpu_freq_factor,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(mut p: Platform) -> Platform {
        p.pcu.measurement_noise = 0.0;
        p
    }

    fn run_steady(platform: &Platform, input: PcuInput, secs: f64) -> f64 {
        let mut pcu = PcuState::new(platform, 1);
        let mut t = 0.0;
        let mut last = 0.0;
        while t < secs {
            last = pcu.step(platform, &input, t, platform.pcu.tick);
            t += platform.pcu.tick;
        }
        last
    }

    #[test]
    fn settles_to_cpu_compute_point() {
        let p = quiet(Platform::haswell_desktop());
        let power = run_steady(
            &p,
            PcuInput {
                cpu_util: 1.0,
                gpu_util: 0.0,
                mem_intensity: 0.0,
            },
            1.0,
        );
        assert!((power - 45.0).abs() < 0.5, "steady CPU compute: {power}");
    }

    #[test]
    fn settles_to_combined_memory_point() {
        let p = quiet(Platform::haswell_desktop());
        let power = run_steady(
            &p,
            PcuInput {
                cpu_util: 1.0,
                gpu_util: 1.0,
                mem_intensity: 1.0,
            },
            1.0,
        );
        assert!(
            (power - 63.0).abs() < 0.5,
            "steady combined memory: {power}"
        );
    }

    #[test]
    fn idle_input_rests_at_idle_power() {
        let p = quiet(Platform::haswell_desktop());
        let power = run_steady(&p, PcuInput::default(), 0.5);
        assert!((power - 5.0).abs() < 0.1, "idle: {power}");
    }

    #[test]
    fn ramp_is_gradual() {
        let p = quiet(Platform::haswell_desktop());
        let mut pcu = PcuState::new(&p, 1);
        let input = PcuInput {
            cpu_util: 1.0,
            gpu_util: 0.0,
            mem_intensity: 0.0,
        };
        let first = pcu.step(&p, &input, 0.0, p.pcu.tick);
        assert!(first > 5.0 && first < 45.0, "mid-ramp power: {first}");
    }

    #[test]
    fn ramp_step_size_invariant() {
        // Integrating the ramp in one 50ms step or ten 5ms steps must land on
        // the same trajectory (analytic exponential integration).
        let p = quiet(Platform::haswell_desktop());
        let input = PcuInput {
            cpu_util: 1.0,
            gpu_util: 0.0,
            mem_intensity: 0.5,
        };
        let mut a = PcuState::new(&p, 1);
        a.step(&p, &input, 0.0, 0.05);
        let mut b = PcuState::new(&p, 1);
        for i in 0..10 {
            b.step(&p, &input, i as f64 * 0.005, 0.005);
        }
        assert!((a.power() - b.power()).abs() < 1e-9);
    }

    #[test]
    fn gpu_activation_dip_throttles_cpu() {
        let p = quiet(Platform::haswell_desktop());
        let mut pcu = PcuState::new(&p, 1);
        let cpu_only = PcuInput {
            cpu_util: 1.0,
            gpu_util: 0.0,
            mem_intensity: 1.0,
        };
        // Warm up: CPU alone memory-bound at ~60W.
        let mut t = 0.0;
        for _ in 0..200 {
            pcu.step(&p, &cpu_only, t, p.pcu.tick);
            t += p.pcu.tick;
        }
        assert!((pcu.power() - 60.0).abs() < 0.5);
        // GPU activates: within the dip window, the grant throttles the CPU.
        let both = PcuInput {
            cpu_util: 1.0,
            gpu_util: 1.0,
            mem_intensity: 1.0,
        };
        pcu.step(&p, &both, t, p.pcu.tick);
        let grant = pcu.freq_grant(&p, &both, t + p.pcu.tick);
        assert!(
            grant.cpu < p.sharing.cpu_shared_scale,
            "dip should throttle cpu: {grant:?}"
        );
        // Power heads downward during the dip.
        let mut min_power = f64::INFINITY;
        for _ in 0..((p.pcu.dip_window / p.pcu.tick) as usize) {
            pcu.step(&p, &both, t, p.pcu.tick);
            t += p.pcu.tick;
            min_power = min_power.min(pcu.power());
        }
        assert!(min_power < 40.0, "Fig 4 dip below 40W, got {min_power}");
        // After the window the grant recovers and power climbs to 63W.
        for _ in 0..400 {
            pcu.step(&p, &both, t, p.pcu.tick);
            t += p.pcu.tick;
        }
        assert!(
            (pcu.power() - 63.0).abs() < 0.5,
            "post-dip: {}",
            pcu.power()
        );
    }

    #[test]
    fn re_activation_after_idle_dips_again() {
        let p = quiet(Platform::haswell_desktop());
        let mut pcu = PcuState::new(&p, 1);
        let both = PcuInput {
            cpu_util: 1.0,
            gpu_util: 1.0,
            mem_intensity: 0.0,
        };
        let cpu_only = PcuInput {
            cpu_util: 1.0,
            gpu_util: 0.0,
            mem_intensity: 0.0,
        };
        let mut t = 0.0;
        // First activation.
        pcu.step(&p, &both, t, p.pcu.tick);
        t += p.pcu.tick;
        let first_activation = pcu.last_gpu_activation;
        // GPU goes idle, long CPU phase.
        for _ in 0..100 {
            pcu.step(&p, &cpu_only, t, p.pcu.tick);
            t += p.pcu.tick;
        }
        // Second activation re-arms the dip.
        pcu.step(&p, &both, t, p.pcu.tick);
        assert!(pcu.last_gpu_activation > first_activation);
    }

    #[test]
    fn measurement_noise_bounded_and_deterministic() {
        let p = Platform::haswell_desktop(); // noise 1%
        let input = PcuInput {
            cpu_util: 1.0,
            gpu_util: 0.0,
            mem_intensity: 0.0,
        };
        let run = || {
            let mut pcu = PcuState::new(&p, 7);
            let mut t = 0.0;
            let mut out = Vec::new();
            for _ in 0..100 {
                out.push(pcu.step(&p, &input, t, p.pcu.tick));
                t += p.pcu.tick;
            }
            out
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "deterministic noise");
        // Late samples stay within jitter of the steady point.
        for &w in &a[80..] {
            assert!((w - 45.0).abs() < 45.0 * 0.02);
        }
    }

    #[test]
    fn baytrail_combined_memory_settles() {
        let p = quiet(Platform::baytrail_tablet());
        let power = run_steady(
            &p,
            PcuInput {
                cpu_util: 1.0,
                gpu_util: 1.0,
                mem_intensity: 1.0,
            },
            2.0,
        );
        assert!(
            (power - 1.7).abs() < 0.05,
            "baytrail combined memory: {power}"
        );
    }
}

#[cfg(test)]
mod tdp_tests {
    use super::*;
    use crate::platform::Platform;

    fn capped_platform(tdp: f64) -> Platform {
        let mut p = Platform::haswell_desktop();
        p.pcu.measurement_noise = 0.0;
        p.pcu.tdp = Some(tdp);
        p
    }

    fn steady_power(p: &Platform, input: PcuInput) -> f64 {
        let mut pcu = PcuState::new(p, 1);
        let mut t = 0.0;
        let mut last = 0.0;
        for _ in 0..400 {
            last = pcu.step(p, &input, t, p.pcu.tick);
            t += p.pcu.tick;
        }
        last
    }

    #[test]
    fn default_tdp_never_binds() {
        // The stock desktop TDP (84 W) sits above every operating point, so
        // grants are identical to the uncapped machine.
        let capped = Platform::haswell_desktop();
        let mut uncapped = Platform::haswell_desktop();
        uncapped.pcu.tdp = None;
        let input = PcuInput {
            cpu_util: 1.0,
            gpu_util: 1.0,
            mem_intensity: 1.0,
        };
        let a = PcuState::new(&capped, 1).freq_grant(&capped, &input, 10.0);
        let b = PcuState::new(&uncapped, 1).freq_grant(&uncapped, &input, 10.0);
        assert_eq!(a, b);
    }

    #[test]
    fn low_tdp_caps_package_power() {
        // Cap at 50 W: combined memory-bound (63 W uncapped) must throttle
        // to roughly the budget.
        let p = capped_platform(50.0);
        let input = PcuInput {
            cpu_util: 1.0,
            gpu_util: 1.0,
            mem_intensity: 1.0,
        };
        let power = steady_power(&p, input);
        assert!(power <= 51.0, "capped power {power}");
        assert!(power > 45.0, "throttle should not overshoot far: {power}");
    }

    #[test]
    fn tdp_throttle_reduces_frequency_grants() {
        let p = capped_platform(50.0);
        let input = PcuInput {
            cpu_util: 1.0,
            gpu_util: 1.0,
            mem_intensity: 1.0,
        };
        let grant = PcuState::new(&p, 1).freq_grant(&p, &input, 10.0);
        assert!(grant.cpu < p.sharing.cpu_shared_scale);
        assert!(grant.gpu < p.sharing.gpu_shared_scale);
        // Solo CPU (60 W > 50 W) also throttles.
        let solo = PcuInput {
            cpu_util: 1.0,
            gpu_util: 0.0,
            mem_intensity: 1.0,
        };
        let grant = PcuState::new(&p, 1).freq_grant(&p, &solo, 10.0);
        assert!(grant.cpu < 1.0);
        // Idle never throttles.
        let grant = PcuState::new(&p, 1).freq_grant(&p, &PcuInput::default(), 10.0);
        assert_eq!(grant.cpu, 1.0);
    }

    #[test]
    fn capped_machine_runs_slower_on_compute_kernels() {
        use crate::machine::{Machine, PhasePlan};
        use crate::traits::KernelTraits;
        let k = KernelTraits::builder("hot")
            .cpu_rate(1.0e6)
            .gpu_rate(2.0e6)
            .memory_intensity(0.0)
            .build();
        let run = |tdp: Option<f64>| {
            let mut p = Platform::haswell_desktop();
            p.pcu.measurement_noise = 0.0;
            p.pcu.tdp = tdp;
            let mut m = Machine::new(p);
            m.run_phase(&k, &PhasePlan::split(4_000_000, 0.6)).elapsed
        };
        let free = run(None);
        let capped = run(Some(40.0)); // below the 55 W combined point
        assert!(
            capped > free * 1.1,
            "40 W cap should slow a compute kernel: {capped} vs {free}"
        );
    }
}
