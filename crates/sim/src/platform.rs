//! Platform specifications and the two presets used throughout the paper.
//!
//! A [`Platform`] bundles device geometry, the memory system, the calibrated
//! package power table, and PCU control parameters. The two presets mirror
//! the paper's evaluation machines (§5 *Environment*):
//!
//! * [`Platform::haswell_desktop`] — Intel Core i7-4770 (4C/8T, 3.4 GHz) with
//!   an HD 4600 iGPU (20 EUs × 7 threads × 16-wide SIMD = 2240-way), 8 MiB
//!   LLC, dual-channel DDR3;
//! * [`Platform::baytrail_tablet`] — Intel Atom Z3740 (4C, 1.33 GHz) with a
//!   4-EU iGPU (448-way), 2 MiB L2, single-channel LPDDR3.
//!
//! A third, fleet-added preset extends the pool beyond the paper machines:
//!
//! * [`Platform::skylake_minipc`] — Core i5-6500-class mini-PC (4C/4T,
//!   3.2 GHz) with a 24-EU HD 530 iGPU (2688-way), calibrated from public
//!   geometry and TDP envelopes (DESIGN.md §15).
//!
//! All paper-machine wattages come from the paper's figures; see
//! `DESIGN.md` §2 for the calibration table.

use crate::pcu::PcuParams;
use crate::power::PowerTable;

/// CPU complex geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Physical core count.
    pub cores: u32,
    /// Hardware threads (with SMT).
    pub threads: u32,
    /// Nominal (base) frequency in GHz.
    pub base_ghz: f64,
    /// Maximum single-device turbo frequency in GHz.
    pub turbo_ghz: f64,
}

/// Integrated GPU geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Execution units.
    pub execution_units: u32,
    /// Hardware threads per EU.
    pub threads_per_eu: u32,
    /// SIMD lanes per hardware thread.
    pub simd_width: u32,
    /// Minimum GPU frequency in GHz.
    pub min_ghz: f64,
    /// Maximum (turbo) GPU frequency in GHz.
    pub max_ghz: f64,
}

impl GpuSpec {
    /// Total hardware parallelism: EUs × threads/EU × SIMD width.
    ///
    /// The paper sizes `GPU_PROFILE_SIZE` from this (2240 on the desktop).
    ///
    /// ```
    /// use easched_sim::Platform;
    /// assert_eq!(Platform::haswell_desktop().gpu.hardware_parallelism(), 2240);
    /// assert_eq!(Platform::baytrail_tablet().gpu.hardware_parallelism(), 448);
    /// ```
    pub fn hardware_parallelism(&self) -> u32 {
        self.execution_units * self.threads_per_eu * self.simd_width
    }
}

/// Memory system parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySpec {
    /// Last-level cache size in bytes (shared between CPU and GPU on these
    /// parts).
    pub llc_bytes: u64,
    /// Peak sustainable memory bandwidth in bytes/second.
    pub peak_bw_bytes_per_sec: f64,
    /// Total system memory in bytes.
    pub dram_bytes: u64,
    /// Maximum CPU-GPU shared region in bytes (the Bay Trail OpenCL driver
    /// caps this at 250 MB, which forces smaller tablet inputs — Table 1).
    pub shared_region_bytes: u64,
}

/// Throughput derating applied when both devices execute simultaneously,
/// beyond bandwidth contention: the shared power/thermal budget forces both
/// devices below their solo turbo frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingModel {
    /// CPU frequency scale in combined mode (1.0 = solo turbo).
    pub cpu_shared_scale: f64,
    /// GPU frequency scale in combined mode.
    pub gpu_shared_scale: f64,
}

/// A complete simulated platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Human-readable platform name.
    pub name: &'static str,
    /// CPU geometry.
    pub cpu: CpuSpec,
    /// GPU geometry.
    pub gpu: GpuSpec,
    /// Memory system.
    pub memory: MemorySpec,
    /// Calibrated package power operating points.
    pub power: PowerTable,
    /// PCU control parameters.
    pub pcu: PcuParams,
    /// Combined-mode frequency sharing.
    pub sharing: SharingModel,
    /// `GPU_PROFILE_SIZE`: items per online-profiling offload, sized to fill
    /// the GPU (paper §3.2: 2048 on the desktop's 2240-way GPU).
    pub gpu_profile_items: u64,
}

impl Platform {
    /// The paper's desktop machine: Intel 4th-gen Core i7-4770 + HD 4600.
    ///
    /// Power calibration (paper §2, Figures 3–5): compute-bound ≈45 W CPU
    /// alone / ≈30 W GPU alone / ≈55 W combined; memory-bound ≈60 W CPU
    /// alone (Fig 4) / ≈63 W combined (Fig 3); short GPU bursts dip package
    /// power below 40 W (Fig 4).
    pub fn haswell_desktop() -> Platform {
        Platform {
            name: "haswell-desktop",
            cpu: CpuSpec {
                cores: 4,
                threads: 8,
                base_ghz: 3.4,
                turbo_ghz: 3.9,
            },
            gpu: GpuSpec {
                execution_units: 20,
                threads_per_eu: 7,
                simd_width: 16,
                min_ghz: 0.35,
                max_ghz: 1.2,
            },
            memory: MemorySpec {
                llc_bytes: 8 << 20,
                peak_bw_bytes_per_sec: 25.6e9,
                dram_bytes: 8 << 30,
                shared_region_bytes: 2 << 30,
            },
            power: PowerTable {
                idle: 5.0,
                cpu_compute: 45.0,
                cpu_memory: 60.0,
                gpu_compute: 30.0,
                gpu_memory: 38.0,
                both_compute: 55.0,
                both_memory: 63.0,
            },
            pcu: PcuParams {
                tick: 0.005,
                ramp_tau: 0.025,
                ramp_tau_down: 0.008,
                dip_window: 0.06,
                dip_cpu_scale: 0.22,
                dip_rearm: 0.150,
                measurement_noise: 0.01,
                tdp: Some(84.0), // i7-4770 TDP; above every operating point
            },
            sharing: SharingModel {
                cpu_shared_scale: 0.95,
                gpu_shared_scale: 0.93,
            },
            gpu_profile_items: 2048,
        }
    }

    /// The paper's tablet: Intel Atom Z3740 (Bay Trail).
    ///
    /// Power calibration (paper §2, Fig 6): compute-bound ≈1.5 W CPU alone /
    /// ≈2.0 W GPU alone; memory-bound ≈0.7 W CPU alone / ≈1.3 W GPU alone.
    /// Unlike the desktop, the GPU *costs more power* than the CPU here,
    /// which is why GPU-alone execution loses on this platform (Figs 11–12).
    pub fn baytrail_tablet() -> Platform {
        Platform {
            name: "baytrail-tablet",
            cpu: CpuSpec {
                cores: 4,
                threads: 4,
                base_ghz: 1.33,
                turbo_ghz: 1.86,
            },
            gpu: GpuSpec {
                execution_units: 4,
                threads_per_eu: 7,
                simd_width: 16,
                min_ghz: 0.331,
                max_ghz: 0.667,
            },
            memory: MemorySpec {
                llc_bytes: 2 << 20,
                peak_bw_bytes_per_sec: 8.5e9,
                dram_bytes: 2 << 30,
                shared_region_bytes: 250 << 20,
            },
            power: PowerTable {
                idle: 0.2,
                cpu_compute: 1.5,
                cpu_memory: 0.7,
                gpu_compute: 2.0,
                gpu_memory: 1.3,
                both_compute: 2.6,
                both_memory: 1.7,
            },
            pcu: PcuParams {
                tick: 0.010,
                ramp_tau: 0.060,
                ramp_tau_down: 0.020,
                dip_window: 0.03,
                dip_cpu_scale: 0.85,
                dip_rearm: 0.150,
                measurement_noise: 0.01,
                tdp: Some(4.0), // Z3740 SDP headroom; above the 2.6 W peak
            },
            sharing: SharingModel {
                cpu_shared_scale: 0.96,
                gpu_shared_scale: 0.94,
            },
            gpu_profile_items: 448,
        }
    }

    /// A fleet-added third platform: a Skylake-generation mini-PC
    /// (Core i5-6500 class, 4C/4T at 3.2 GHz) with a Gen9 HD 530 iGPU
    /// (24 EUs × 7 threads × 16-wide SIMD = 2688-way).
    ///
    /// Unlike the two paper machines this preset is calibrated from public
    /// geometry and TDP envelopes rather than the paper's measurements:
    /// desktop-class power ordering (GPU cheaper than CPU, memory-bound
    /// draws more than compute-bound combined), a 65 W TDP ceiling, and a
    /// slightly wider GPU than Haswell's. It exists so fleet replication
    /// always has a platform whose α optima differ from both paper
    /// machines — a ratio learned here is a *prior* elsewhere, never truth
    /// (DESIGN.md §15).
    pub fn skylake_minipc() -> Platform {
        Platform {
            name: "skylake-minipc",
            cpu: CpuSpec {
                cores: 4,
                threads: 4,
                base_ghz: 3.2,
                turbo_ghz: 3.6,
            },
            gpu: GpuSpec {
                execution_units: 24,
                threads_per_eu: 7,
                simd_width: 16,
                min_ghz: 0.35,
                max_ghz: 1.05,
            },
            memory: MemorySpec {
                llc_bytes: 6 << 20,
                peak_bw_bytes_per_sec: 34.1e9,
                dram_bytes: 16 << 30,
                shared_region_bytes: 4 << 30,
            },
            power: PowerTable {
                idle: 4.0,
                cpu_compute: 42.0,
                cpu_memory: 54.0,
                gpu_compute: 26.0,
                gpu_memory: 33.0,
                both_compute: 51.0,
                both_memory: 58.0,
            },
            pcu: PcuParams {
                tick: 0.005,
                ramp_tau: 0.022,
                ramp_tau_down: 0.008,
                dip_window: 0.05,
                dip_cpu_scale: 0.25,
                dip_rearm: 0.150,
                measurement_noise: 0.01,
                tdp: Some(65.0), // i5-6500 TDP; above every operating point
            },
            sharing: SharingModel {
                cpu_shared_scale: 0.95,
                gpu_shared_scale: 0.94,
            },
            gpu_profile_items: 2560,
        }
    }

    /// `GPU_PROFILE_SIZE` for this platform: the number of items offloaded
    /// during one online-profiling step, chosen to (nearly) fill the GPU's
    /// hardware parallelism (paper §3.2: 2048 on the desktop's 2240-way
    /// GPU).
    pub fn gpu_profile_size(&self) -> u64 {
        self.gpu_profile_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_geometry_matches_paper() {
        let p = Platform::haswell_desktop();
        assert_eq!(p.cpu.cores, 4);
        assert_eq!(p.cpu.threads, 8);
        assert_eq!(p.gpu.execution_units, 20);
        assert_eq!(p.gpu.hardware_parallelism(), 2240);
        assert_eq!(p.memory.llc_bytes, 8 << 20);
    }

    #[test]
    fn tablet_geometry_matches_paper() {
        let p = Platform::baytrail_tablet();
        assert_eq!(p.cpu.cores, 4);
        assert_eq!(p.gpu.execution_units, 4);
        assert_eq!(p.gpu.hardware_parallelism(), 448);
        assert_eq!(p.memory.shared_region_bytes, 250 << 20);
    }

    #[test]
    fn desktop_power_ordering_matches_paper() {
        // On the desktop the GPU is the cheaper device; combined modes sit
        // between single-device and additive power.
        let t = &Platform::haswell_desktop().power;
        assert!(t.gpu_compute < t.cpu_compute);
        assert!(t.both_compute > t.cpu_compute);
        assert!(t.both_compute < t.cpu_compute + t.gpu_compute);
        assert!(
            t.both_memory > t.both_compute,
            "memory-bound combined draws more"
        );
    }

    #[test]
    fn tablet_power_ordering_matches_paper() {
        // On Bay Trail the GPU costs MORE than the CPU (paper §5).
        let t = &Platform::baytrail_tablet().power;
        assert!(t.gpu_compute > t.cpu_compute);
        assert!(t.gpu_memory > t.cpu_memory);
        // And memory-bound work draws LESS than compute-bound (paper's
        // "surprisingly" observation in §2).
        assert!(t.cpu_memory < t.cpu_compute);
        assert!(t.gpu_memory < t.gpu_compute);
    }

    #[test]
    fn minipc_geometry_is_a_gen9_hd530() {
        let p = Platform::skylake_minipc();
        assert_eq!(p.cpu.cores, 4);
        assert_eq!(p.cpu.threads, 4); // i5 class: no SMT
        assert_eq!(p.gpu.execution_units, 24);
        assert_eq!(p.gpu.hardware_parallelism(), 2688);
        assert_eq!(p.memory.llc_bytes, 6 << 20);
    }

    #[test]
    fn minipc_power_ordering_is_desktop_class() {
        // Like Haswell: GPU is the cheaper device, combined modes sit
        // between single-device and additive power, memory-bound combined
        // draws more than compute-bound combined.
        let t = &Platform::skylake_minipc().power;
        assert!(t.gpu_compute < t.cpu_compute);
        assert!(t.both_compute > t.cpu_compute);
        assert!(t.both_compute < t.cpu_compute + t.gpu_compute);
        assert!(t.both_memory > t.both_compute);
        // But it is NOT the Haswell table — fleet priors must cross a real
        // platform gap.
        assert_ne!(*t, Platform::haswell_desktop().power);
    }

    #[test]
    fn minipc_stays_under_its_tdp() {
        let p = Platform::skylake_minipc();
        let tdp = p.pcu.tdp.expect("mini-PC has a TDP ceiling");
        for w in [
            p.power.idle,
            p.power.cpu_compute,
            p.power.cpu_memory,
            p.power.gpu_compute,
            p.power.gpu_memory,
            p.power.both_compute,
            p.power.both_memory,
        ] {
            assert!(w < tdp, "{w} W exceeds the {tdp} W TDP");
        }
    }

    #[test]
    fn profile_size_near_gpu_width() {
        // Paper §3.2 uses 2048 for the 2240-way desktop GPU.
        assert_eq!(Platform::haswell_desktop().gpu_profile_size(), 2048);
        assert_eq!(Platform::baytrail_tablet().gpu_profile_size(), 448);
        assert_eq!(Platform::skylake_minipc().gpu_profile_size(), 2560);
        for p in [
            Platform::haswell_desktop(),
            Platform::baytrail_tablet(),
            Platform::skylake_minipc(),
        ] {
            assert!(p.gpu_profile_size() <= u64::from(p.gpu.hardware_parallelism()));
        }
    }

    #[test]
    fn sharing_scales_are_derating() {
        for p in [
            Platform::haswell_desktop(),
            Platform::baytrail_tablet(),
            Platform::skylake_minipc(),
        ] {
            assert!(p.sharing.cpu_shared_scale > 0.0 && p.sharing.cpu_shared_scale <= 1.0);
            assert!(p.sharing.gpu_shared_scale > 0.0 && p.sharing.gpu_shared_scale <= 1.0);
        }
    }

    #[test]
    fn preset_names_are_unique() {
        let names = [
            Platform::haswell_desktop().name,
            Platform::baytrail_tablet().name,
            Platform::skylake_minipc().name,
        ];
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
