//! Package power model: calibrated operating points with bilinear
//! interpolation over device utilization and memory intensity.
//!
//! The paper's black-box premise is that package power at a given CPU-GPU
//! work split is *not* additive — the PCU redistributes the shared budget.
//! We capture that with six calibrated steady-state operating points per
//! platform (compute/memory × CPU-alone/GPU-alone/both) plus idle, and
//! interpolate:
//!
//! * linearly in memory intensity `m` between the compute and memory points;
//! * bilinearly in the device utilizations `u_c`, `u_g`, with an interaction
//!   term chosen so that all four corners (idle, CPU-alone, GPU-alone, both)
//!   reproduce the calibrated wattages exactly.

/// Calibrated steady-state package power operating points, in watts.
///
/// All values are *package* power (cores + GPU slice + ring + LLC + uncore),
/// matching what `MSR_PKG_ENERGY_STATUS` measures.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTable {
    /// Idle package power.
    pub idle: f64,
    /// CPU fully busy alone, compute-bound kernel.
    pub cpu_compute: f64,
    /// CPU fully busy alone, memory-bound kernel.
    pub cpu_memory: f64,
    /// GPU fully busy alone, compute-bound kernel.
    pub gpu_compute: f64,
    /// GPU fully busy alone, memory-bound kernel.
    pub gpu_memory: f64,
    /// Both devices fully busy, compute-bound kernel.
    pub both_compute: f64,
    /// Both devices fully busy, memory-bound kernel.
    pub both_memory: f64,
}

/// Exponent relating frequency scale to dynamic power (≈ f·V² with voltage
/// tracking frequency).
const FREQ_POWER_EXP: f64 = 2.5;

impl PowerTable {
    /// CPU-alone operating point at memory intensity `m`.
    fn cpu_point(&self, m: f64) -> f64 {
        lerp(self.cpu_compute, self.cpu_memory, m)
    }

    /// GPU-alone operating point at memory intensity `m`.
    fn gpu_point(&self, m: f64) -> f64 {
        lerp(self.gpu_compute, self.gpu_memory, m)
    }

    /// Combined operating point at memory intensity `m`.
    fn both_point(&self, m: f64) -> f64 {
        lerp(self.both_compute, self.both_memory, m)
    }

    /// Steady-state package power target.
    ///
    /// * `cpu_util`, `gpu_util` — device utilizations in [0, 1];
    /// * `mem_intensity` — kernel memory intensity in [0, 1];
    /// * `cpu_freq_factor`, `gpu_freq_factor` — ratio of the device's current
    ///   frequency scale to the scale at which the table was calibrated
    ///   (1.0 except during PCU transients such as the activation dip).
    ///
    /// The four corners `(u_c, u_g) ∈ {0,1}²` at unit frequency factors
    /// reproduce `idle`, the CPU point, the GPU point, and the combined point
    /// exactly.
    ///
    /// # Examples
    ///
    /// ```
    /// use easched_sim::Platform;
    /// let t = &Platform::haswell_desktop().power;
    /// let p = t.target_power(1.0, 1.0, 0.0, 1.0, 1.0);
    /// assert!((p - 55.0).abs() < 1e-9); // both devices, compute-bound
    /// ```
    pub fn target_power(
        &self,
        cpu_util: f64,
        gpu_util: f64,
        mem_intensity: f64,
        cpu_freq_factor: f64,
        gpu_freq_factor: f64,
    ) -> f64 {
        let uc = cpu_util.clamp(0.0, 1.0);
        let ug = gpu_util.clamp(0.0, 1.0);
        let m = mem_intensity.clamp(0.0, 1.0);
        let fc = cpu_freq_factor.max(0.0).powf(FREQ_POWER_EXP);
        let fg = gpu_freq_factor.max(0.0).powf(FREQ_POWER_EXP);

        let cpu_excess = (self.cpu_point(m) - self.idle) * uc * fc;
        let gpu_excess = (self.gpu_point(m) - self.idle) * ug * fg;
        // Interaction makes the (1,1) corner land on the calibrated combined
        // point instead of the additive sum. It is attenuated by the smaller
        // frequency factor: during a transient the budget interplay has not
        // settled yet.
        let interaction = (self.both_point(m) - self.cpu_point(m) - self.gpu_point(m) + self.idle)
            * uc
            * ug
            * fc.min(fg);
        (self.idle + cpu_excess + gpu_excess + interaction).max(0.0)
    }
}

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn haswell() -> PowerTable {
        PowerTable {
            idle: 5.0,
            cpu_compute: 45.0,
            cpu_memory: 60.0,
            gpu_compute: 30.0,
            gpu_memory: 38.0,
            both_compute: 55.0,
            both_memory: 63.0,
        }
    }

    #[test]
    fn corners_reproduce_calibration_compute() {
        let t = haswell();
        assert!((t.target_power(0.0, 0.0, 0.0, 1.0, 1.0) - 5.0).abs() < 1e-12);
        assert!((t.target_power(1.0, 0.0, 0.0, 1.0, 1.0) - 45.0).abs() < 1e-12);
        assert!((t.target_power(0.0, 1.0, 0.0, 1.0, 1.0) - 30.0).abs() < 1e-12);
        assert!((t.target_power(1.0, 1.0, 0.0, 1.0, 1.0) - 55.0).abs() < 1e-12);
    }

    #[test]
    fn corners_reproduce_calibration_memory() {
        let t = haswell();
        assert!((t.target_power(1.0, 0.0, 1.0, 1.0, 1.0) - 60.0).abs() < 1e-12);
        assert!((t.target_power(0.0, 1.0, 1.0, 1.0, 1.0) - 38.0).abs() < 1e-12);
        assert!((t.target_power(1.0, 1.0, 1.0, 1.0, 1.0) - 63.0).abs() < 1e-12);
    }

    #[test]
    fn memory_intensity_interpolates() {
        let t = haswell();
        let p = t.target_power(1.0, 0.0, 0.5, 1.0, 1.0);
        assert!((p - 52.5).abs() < 1e-12); // midway between 45 and 60
    }

    #[test]
    fn partial_utilization_between_idle_and_full() {
        let t = haswell();
        let p = t.target_power(0.5, 0.0, 0.0, 1.0, 1.0);
        assert!(p > 5.0 && p < 45.0);
        assert!((p - 25.0).abs() < 1e-12); // linear in utilization
    }

    #[test]
    fn frequency_dip_reduces_cpu_contribution() {
        let t = haswell();
        let full = t.target_power(1.0, 0.0, 1.0, 1.0, 1.0);
        let dipped = t.target_power(1.0, 0.0, 1.0, 0.5, 1.0);
        assert!(dipped < full);
        // Idle floor is preserved.
        assert!(dipped > t.idle);
    }

    #[test]
    fn power_never_negative() {
        let t = PowerTable {
            idle: 1.0,
            cpu_compute: 2.0,
            cpu_memory: 2.0,
            gpu_compute: 2.0,
            gpu_memory: 2.0,
            both_compute: 1.5, // pathological: large negative interaction
            both_memory: 1.5,
        };
        for uc in [0.0, 0.5, 1.0] {
            for ug in [0.0, 0.5, 1.0] {
                assert!(t.target_power(uc, ug, 0.5, 1.0, 1.0) >= 0.0);
            }
        }
    }

    #[test]
    fn out_of_range_inputs_clamped() {
        let t = haswell();
        let p = t.target_power(5.0, -1.0, 2.0, 1.0, 1.0);
        assert!((p - 60.0).abs() < 1e-12); // clamps to cpu-alone memory point
    }

    #[test]
    fn baytrail_memory_cheaper_than_compute() {
        let t = PowerTable {
            idle: 0.2,
            cpu_compute: 1.5,
            cpu_memory: 0.7,
            gpu_compute: 2.0,
            gpu_memory: 1.3,
            both_compute: 2.6,
            both_memory: 1.7,
        };
        let mem = t.target_power(1.0, 1.0, 1.0, 1.0, 1.0);
        let comp = t.target_power(1.0, 1.0, 0.0, 1.0, 1.0);
        assert!(mem < comp, "paper: Bay Trail memory-bound draws less power");
    }
}
