//! Hardware performance counter emulation.
//!
//! The paper's online profiler reads two CPU counters through the Intel
//! Performance Counter Monitor tool: **L3 cache misses** and **total
//! instructions retired**, and classifies a workload as memory-bound when
//! the miss-to-load ratio exceeds 0.33 (§5). The simulator accumulates the
//! same counters from each kernel's per-item footprint.

/// Monotonic CPU performance counters.
///
/// All fields count events since machine creation; consumers take deltas
/// between snapshots exactly as PCM-based tooling does.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CounterSnapshot {
    /// Total instructions retired on the CPU cores.
    pub instructions: f64,
    /// Load/store instructions retired on the CPU cores.
    pub loads: f64,
    /// L3 cache misses from the CPU cores.
    pub l3_misses: f64,
}

impl CounterSnapshot {
    /// Delta between two snapshots (`self` − `earlier`).
    ///
    /// # Examples
    ///
    /// ```
    /// use easched_sim::CounterSnapshot;
    /// let a = CounterSnapshot { instructions: 100.0, loads: 40.0, l3_misses: 5.0 };
    /// let b = CounterSnapshot { instructions: 300.0, loads: 90.0, l3_misses: 30.0 };
    /// let d = b.delta(&a);
    /// assert_eq!(d.instructions, 200.0);
    /// assert_eq!(d.l3_misses, 25.0);
    /// ```
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            instructions: self.instructions - earlier.instructions,
            loads: self.loads - earlier.loads,
            l3_misses: self.l3_misses - earlier.l3_misses,
        }
    }

    /// Memory-intensity metric: L3 misses per load/store instruction.
    ///
    /// Returns 0 when no loads were observed (e.g. an empty window), so an
    /// idle profiling window classifies as compute-bound rather than
    /// dividing by zero — matching the paper's conservative default of CPU
    /// execution for tiny workloads.
    ///
    /// ```
    /// use easched_sim::CounterSnapshot;
    /// let c = CounterSnapshot { instructions: 100.0, loads: 50.0, l3_misses: 25.0 };
    /// assert_eq!(c.miss_per_load(), 0.5);
    /// assert_eq!(CounterSnapshot::default().miss_per_load(), 0.0);
    /// ```
    pub fn miss_per_load(&self) -> f64 {
        if self.loads <= 0.0 {
            0.0
        } else {
            self.l3_misses / self.loads
        }
    }
}

/// Accumulator owned by the [`Machine`](crate::Machine).
#[derive(Debug, Clone, Default)]
pub(crate) struct CounterBank {
    snapshot: CounterSnapshot,
}

impl CounterBank {
    /// Records `items` iterations executed on the CPU with the given
    /// per-item footprint and miss ratio.
    pub(crate) fn record_cpu_items(
        &mut self,
        items: f64,
        instr_per_item: f64,
        loads_per_item: f64,
        miss_ratio: f64,
    ) {
        if !(items.is_finite() && items > 0.0) {
            return;
        }
        self.snapshot.instructions += items * instr_per_item;
        let loads = items * loads_per_item;
        self.snapshot.loads += loads;
        self.snapshot.l3_misses += loads * miss_ratio.clamp(0.0, 1.0);
    }

    pub(crate) fn snapshot(&self) -> CounterSnapshot {
        self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_accumulates() {
        let mut b = CounterBank::default();
        b.record_cpu_items(10.0, 100.0, 20.0, 0.5);
        b.record_cpu_items(10.0, 100.0, 20.0, 0.5);
        let s = b.snapshot();
        assert_eq!(s.instructions, 2000.0);
        assert_eq!(s.loads, 400.0);
        assert_eq!(s.l3_misses, 200.0);
    }

    #[test]
    fn bank_ignores_invalid_items() {
        let mut b = CounterBank::default();
        b.record_cpu_items(-5.0, 100.0, 20.0, 0.5);
        b.record_cpu_items(f64::NAN, 100.0, 20.0, 0.5);
        assert_eq!(b.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn miss_ratio_clamped() {
        let mut b = CounterBank::default();
        b.record_cpu_items(1.0, 1.0, 10.0, 3.0);
        assert_eq!(b.snapshot().l3_misses, 10.0);
    }

    #[test]
    fn delta_and_miss_per_load() {
        let mut b = CounterBank::default();
        b.record_cpu_items(100.0, 50.0, 10.0, 0.4);
        let mid = b.snapshot();
        b.record_cpu_items(100.0, 50.0, 10.0, 0.4);
        let end = b.snapshot();
        let d = end.delta(&mid);
        assert_eq!(d.instructions, 5000.0);
        assert!((d.miss_per_load() - 0.4).abs() < 1e-12);
    }
}
