//! Kernel execution traits: everything the simulator needs to know about a
//! data-parallel kernel to model its timing, power class, and counter
//! footprint on a platform.
//!
//! A [`KernelTraits`] value plays the role the physical machine plays in the
//! paper: it determines how fast each device processes iterations, how much
//! memory bandwidth the kernel demands, and what the hardware counters will
//! read. The scheduler never sees these fields — it must *discover* the
//! relevant behaviour through online profiling, exactly as on real hardware.

use std::fmt;

/// Memory access pattern of a kernel, used to derive its L3 miss ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessPattern {
    /// Sequential streaming reads/writes; hardware prefetchers hide most
    /// misses.
    #[default]
    Streaming,
    /// Regular strided access; prefetchers partially effective.
    Strided,
    /// Data-dependent random access (graph traversal, hash probing).
    Random,
    /// Pointer chasing with no locality (skip lists, linked structures).
    PointerChase,
}

impl AccessPattern {
    /// Baseline probability that a load misses L3 when the working set does
    /// not fit, before working-set scaling.
    pub(crate) fn base_miss(self) -> f64 {
        match self {
            AccessPattern::Streaming => 0.10,
            AccessPattern::Strided => 0.22,
            AccessPattern::Random => 0.85,
            AccessPattern::PointerChase => 0.95,
        }
    }

    /// Miss probability when the working set fits comfortably in the LLC.
    pub(crate) fn resident_miss(self) -> f64 {
        match self {
            AccessPattern::Streaming => 0.01,
            AccessPattern::Strided => 0.02,
            AccessPattern::Random => 0.04,
            AccessPattern::PointerChase => 0.05,
        }
    }
}

/// Simulation profile of a data-parallel kernel on one platform.
///
/// Rates are *solo* rates: items per second when the device runs the kernel
/// alone at its solo operating frequency with ample parallelism. The
/// simulator derates them for frequency sharing, bandwidth contention, GPU
/// occupancy, and per-invocation irregularity noise.
///
/// Construct via [`KernelTraits::builder`].
///
/// # Examples
///
/// ```
/// use easched_sim::{AccessPattern, KernelTraits};
///
/// let traits = KernelTraits::builder("bfs")
///     .cpu_rate(80.0e6)
///     .gpu_rate(120.0e6)
///     .access(AccessPattern::Random)
///     .working_set_bytes(256 << 20)
///     .memory_intensity(0.9)
///     .irregularity(0.3)
///     .build();
/// assert_eq!(traits.name(), "bfs");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTraits {
    name: String,
    cpu_rate: f64,
    gpu_rate: f64,
    memory_intensity: f64,
    access: AccessPattern,
    working_set_bytes: u64,
    instr_per_item: f64,
    loads_per_item: f64,
    bw_bytes_per_item: f64,
    irregularity: f64,
}

impl KernelTraits {
    /// Starts building a traits profile for the kernel named `name`.
    pub fn builder(name: impl Into<String>) -> KernelTraitsBuilder {
        KernelTraitsBuilder::new(name)
    }

    /// Kernel name (diagnostic only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Solo CPU throughput in items/second (all cores).
    pub fn cpu_rate(&self) -> f64 {
        self.cpu_rate
    }

    /// Solo GPU throughput in items/second (full occupancy).
    pub fn gpu_rate(&self) -> f64 {
        self.gpu_rate
    }

    /// Memory intensity in [0, 1]: 0 = purely compute-bound power behaviour,
    /// 1 = purely memory-bound. Interpolates between the platform's
    /// compute/memory operating points.
    pub fn memory_intensity(&self) -> f64 {
        self.memory_intensity
    }

    /// Memory access pattern.
    pub fn access(&self) -> AccessPattern {
        self.access
    }

    /// Resident working-set size in bytes.
    pub fn working_set_bytes(&self) -> u64 {
        self.working_set_bytes
    }

    /// Instructions retired per iteration on the CPU.
    pub fn instr_per_item(&self) -> f64 {
        self.instr_per_item
    }

    /// Load/store instructions per iteration on the CPU.
    pub fn loads_per_item(&self) -> f64 {
        self.loads_per_item
    }

    /// Main-memory traffic per iteration in bytes (bandwidth demand).
    pub fn bw_bytes_per_item(&self) -> f64 {
        self.bw_bytes_per_item
    }

    /// Irregularity in [0, 1]: scale of per-invocation throughput noise
    /// (input-dependent control flow). 0 for regular kernels.
    pub fn irregularity(&self) -> f64 {
        self.irregularity
    }

    /// L3 miss probability per load on a platform with `llc_bytes` of
    /// last-level cache, derived from the access pattern and working set.
    ///
    /// ```
    /// use easched_sim::{AccessPattern, KernelTraits};
    /// let t = KernelTraits::builder("k")
    ///     .access(AccessPattern::Random)
    ///     .working_set_bytes(64 << 20)
    ///     .build();
    /// // 64 MiB random access vs an 8 MiB LLC: mostly misses.
    /// assert!(t.l3_miss_ratio(8 << 20) > 0.5);
    /// // Same pattern fitting in cache: mostly hits.
    /// assert!(t.l3_miss_ratio(128 << 20) < 0.1);
    /// ```
    pub fn l3_miss_ratio(&self, llc_bytes: u64) -> f64 {
        if llc_bytes == 0 {
            return self.access.base_miss();
        }
        let ws = self.working_set_bytes as f64;
        let llc = llc_bytes as f64;
        let resident = self.access.resident_miss();
        if ws <= llc {
            return resident;
        }
        // Fraction of accesses that fall outside the cached portion,
        // saturating toward the pattern's base miss rate.
        let outside = 1.0 - llc / ws;
        resident + (self.access.base_miss() - resident) * outside
    }
}

impl fmt::Display for KernelTraits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (cpu {:.3e} it/s, gpu {:.3e} it/s, mem {:.2})",
            self.name, self.cpu_rate, self.gpu_rate, self.memory_intensity
        )
    }
}

/// Builder for [`KernelTraits`].
///
/// Defaults: rates 1e6 items/s, compute-bound (`memory_intensity` 0),
/// streaming access, 1 MiB working set, 100 instructions and 20 loads per
/// item, 8 bytes of memory traffic per item, no irregularity.
#[derive(Debug, Clone)]
pub struct KernelTraitsBuilder {
    traits: KernelTraits,
}

impl KernelTraitsBuilder {
    fn new(name: impl Into<String>) -> Self {
        KernelTraitsBuilder {
            traits: KernelTraits {
                name: name.into(),
                cpu_rate: 1.0e6,
                gpu_rate: 1.0e6,
                memory_intensity: 0.0,
                access: AccessPattern::Streaming,
                working_set_bytes: 1 << 20,
                instr_per_item: 100.0,
                loads_per_item: 20.0,
                bw_bytes_per_item: 8.0,
                irregularity: 0.0,
            },
        }
    }

    /// Sets the solo CPU rate (items/second).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn cpu_rate(mut self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "cpu_rate must be positive");
        self.traits.cpu_rate = rate;
        self
    }

    /// Sets the solo GPU rate (items/second).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn gpu_rate(mut self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "gpu_rate must be positive");
        self.traits.gpu_rate = rate;
        self
    }

    /// Sets memory intensity, clamped to [0, 1].
    pub fn memory_intensity(mut self, mi: f64) -> Self {
        self.traits.memory_intensity = mi.clamp(0.0, 1.0);
        self
    }

    /// Sets the access pattern.
    pub fn access(mut self, access: AccessPattern) -> Self {
        self.traits.access = access;
        self
    }

    /// Sets the working-set size in bytes.
    pub fn working_set_bytes(mut self, bytes: u64) -> Self {
        self.traits.working_set_bytes = bytes;
        self
    }

    /// Sets instructions retired per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not positive and finite.
    pub fn instr_per_item(mut self, n: f64) -> Self {
        assert!(n.is_finite() && n > 0.0, "instr_per_item must be positive");
        self.traits.instr_per_item = n;
        self
    }

    /// Sets load/store instructions per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `n` is negative or non-finite.
    pub fn loads_per_item(mut self, n: f64) -> Self {
        assert!(
            n.is_finite() && n >= 0.0,
            "loads_per_item must be non-negative"
        );
        self.traits.loads_per_item = n;
        self
    }

    /// Sets memory traffic per iteration in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is negative or non-finite.
    pub fn bw_bytes_per_item(mut self, n: f64) -> Self {
        assert!(
            n.is_finite() && n >= 0.0,
            "bw_bytes_per_item must be non-negative"
        );
        self.traits.bw_bytes_per_item = n;
        self
    }

    /// Sets irregularity, clamped to [0, 1].
    pub fn irregularity(mut self, irr: f64) -> Self {
        self.traits.irregularity = irr.clamp(0.0, 1.0);
        self
    }

    /// Finalizes the traits.
    pub fn build(self) -> KernelTraits {
        self.traits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let t = KernelTraits::builder("k").build();
        assert_eq!(t.name(), "k");
        assert_eq!(t.memory_intensity(), 0.0);
        assert_eq!(t.access(), AccessPattern::Streaming);
        assert!(t.cpu_rate() > 0.0 && t.gpu_rate() > 0.0);
    }

    #[test]
    fn builder_clamps_unit_fields() {
        let t = KernelTraits::builder("k")
            .memory_intensity(7.0)
            .irregularity(-3.0)
            .build();
        assert_eq!(t.memory_intensity(), 1.0);
        assert_eq!(t.irregularity(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cpu_rate must be positive")]
    fn builder_rejects_zero_rate() {
        KernelTraits::builder("k").cpu_rate(0.0);
    }

    #[test]
    #[should_panic(expected = "gpu_rate must be positive")]
    fn builder_rejects_nan_rate() {
        KernelTraits::builder("k").gpu_rate(f64::NAN);
    }

    #[test]
    fn miss_ratio_monotone_in_working_set() {
        let llc = 8u64 << 20;
        let mut prev = 0.0;
        for shift in 18..28 {
            let t = KernelTraits::builder("k")
                .access(AccessPattern::Random)
                .working_set_bytes(1 << shift)
                .build();
            let m = t.l3_miss_ratio(llc);
            assert!(m >= prev, "miss ratio should grow with working set");
            assert!((0.0..=1.0).contains(&m));
            prev = m;
        }
    }

    #[test]
    fn pattern_ordering_when_uncached() {
        let ws = 1u64 << 30;
        let llc = 8u64 << 20;
        let miss = |a: AccessPattern| {
            KernelTraits::builder("k")
                .access(a)
                .working_set_bytes(ws)
                .build()
                .l3_miss_ratio(llc)
        };
        assert!(miss(AccessPattern::Streaming) < miss(AccessPattern::Strided));
        assert!(miss(AccessPattern::Strided) < miss(AccessPattern::Random));
        assert!(miss(AccessPattern::Random) < miss(AccessPattern::PointerChase));
    }

    #[test]
    fn resident_working_set_mostly_hits() {
        let t = KernelTraits::builder("k")
            .access(AccessPattern::PointerChase)
            .working_set_bytes(1 << 20)
            .build();
        assert!(t.l3_miss_ratio(8 << 20) < 0.1);
    }

    #[test]
    fn zero_llc_uses_base_miss() {
        let t = KernelTraits::builder("k")
            .access(AccessPattern::Random)
            .build();
        assert_eq!(t.l3_miss_ratio(0), AccessPattern::Random.base_miss());
    }

    #[test]
    fn display_contains_name_and_rates() {
        let t = KernelTraits::builder("mandelbrot").cpu_rate(2.0e6).build();
        let s = t.to_string();
        assert!(s.contains("mandelbrot"));
        assert!(s.contains("2.000e6"));
    }
}
