//! Package power traces.
//!
//! The paper's Figures 2–4 plot package power over time. When tracing is
//! enabled on a [`Machine`](crate::Machine), every simulation step appends a
//! `(time, watts)` point; [`PowerTrace::resample`] decimates to a plotting
//! resolution and [`PowerTrace::to_csv`] serializes for the figure harness.

/// One sample of package power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Simulation time at the start of the sample, seconds.
    pub time: f64,
    /// Average package power over the sample, watts.
    pub watts: f64,
    /// Sample duration, seconds.
    pub duration: f64,
}

/// A time-ordered series of package power samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerTrace {
    points: Vec<TracePoint>,
}

impl PowerTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        PowerTrace { points: Vec::new() }
    }

    /// Appends a sample. Samples must be appended in time order.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `time` precedes the last sample.
    pub fn push(&mut self, time: f64, watts: f64, duration: f64) {
        debug_assert!(
            self.points.last().is_none_or(|p| time >= p.time),
            "trace points must be time-ordered"
        );
        self.points.push(TracePoint {
            time,
            watts,
            duration,
        });
    }

    /// All samples in time order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Time span covered, seconds (0 for empty traces).
    pub fn span(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.time + b.duration - a.time,
            _ => 0.0,
        }
    }

    /// Time-weighted mean power, watts (0 for empty traces).
    ///
    /// This is what the paper's power-characterization step computes from
    /// the energy counter: total energy / total time.
    ///
    /// # Examples
    ///
    /// ```
    /// use easched_sim::PowerTrace;
    /// let mut t = PowerTrace::new();
    /// t.push(0.0, 10.0, 1.0);
    /// t.push(1.0, 30.0, 3.0);
    /// assert!((t.mean_power() - 25.0).abs() < 1e-12);
    /// ```
    pub fn mean_power(&self) -> f64 {
        let (e, t) = self.points.iter().fold((0.0, 0.0), |(e, t), p| {
            (e + p.watts * p.duration, t + p.duration)
        });
        if t > 0.0 {
            e / t
        } else {
            0.0
        }
    }

    /// Minimum sample power; +∞ for empty traces.
    pub fn min_power(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.watts)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample power; −∞ for empty traces.
    pub fn max_power(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.watts)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Resamples onto a uniform grid of `resolution` seconds by
    /// energy-conserving averaging, for plotting.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not strictly positive.
    pub fn resample(&self, resolution: f64) -> PowerTrace {
        assert!(resolution > 0.0, "resolution must be positive");
        let mut out = PowerTrace::new();
        if self.points.is_empty() {
            return out;
        }
        let start = self.points[0].time;
        let end = start + self.span();
        let mut bucket_start = start;
        while bucket_start < end {
            let bucket_end = bucket_start + resolution;
            let mut energy = 0.0;
            let mut time = 0.0;
            for p in &self.points {
                let s = p.time.max(bucket_start);
                let e = (p.time + p.duration).min(bucket_end);
                if e > s {
                    energy += p.watts * (e - s);
                    time += e - s;
                }
            }
            if time > 0.0 {
                // Duration is the *covered* time, so partially-filled edge
                // buckets keep the trace's time-weighted mean power exact.
                out.push(bucket_start, energy / time, time);
            }
            bucket_start = bucket_end;
        }
        out
    }

    /// Serializes as `time_s,watts` CSV with a header row.
    ///
    /// ```
    /// use easched_sim::PowerTrace;
    /// let mut t = PowerTrace::new();
    /// t.push(0.0, 45.5, 0.01);
    /// assert!(t.to_csv().starts_with("time_s,watts\n0.000000,45.500"));
    /// ```
    pub fn to_csv(&self) -> String {
        let mut s = String::from("time_s,watts\n");
        for p in &self.points {
            s.push_str(&format!("{:.6},{:.3}\n", p.time, p.watts));
        }
        s
    }
}

impl Extend<TracePoint> for PowerTrace {
    fn extend<I: IntoIterator<Item = TracePoint>>(&mut self, iter: I) {
        for p in iter {
            self.push(p.time, p.watts, p.duration);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> PowerTrace {
        let mut t = PowerTrace::new();
        for i in 0..100 {
            t.push(i as f64 * 0.01, 40.0 + (i % 10) as f64, 0.01);
        }
        t
    }

    #[test]
    fn empty_trace_defaults() {
        let t = PowerTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.span(), 0.0);
        assert_eq!(t.mean_power(), 0.0);
        assert_eq!(t.min_power(), f64::INFINITY);
    }

    #[test]
    fn span_and_len() {
        let t = sample_trace();
        assert_eq!(t.len(), 100);
        assert!((t.span() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_power_weighted() {
        let mut t = PowerTrace::new();
        t.push(0.0, 100.0, 0.1);
        t.push(0.1, 0.0, 0.9);
        assert!((t.mean_power() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let t = sample_trace();
        assert_eq!(t.min_power(), 40.0);
        assert_eq!(t.max_power(), 49.0);
    }

    #[test]
    fn resample_conserves_mean() {
        let t = sample_trace();
        let r = t.resample(0.05);
        assert!(r.len() <= t.len());
        assert!((r.mean_power() - t.mean_power()).abs() < 1e-9);
    }

    #[test]
    fn resample_partial_buckets() {
        let mut t = PowerTrace::new();
        t.push(0.0, 10.0, 0.015); // 1.5 buckets at 0.01 resolution
        let r = t.resample(0.01);
        assert_eq!(r.len(), 2);
        assert_eq!(r.points()[0].watts, 10.0);
        assert_eq!(r.points()[1].watts, 10.0);
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn resample_zero_resolution_panics() {
        sample_trace().resample(0.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = sample_trace();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,watts");
        assert_eq!(lines.len(), 101);
        assert!(lines[1].starts_with("0.000000,40.000"));
    }

    #[test]
    fn extend_appends() {
        let mut t = PowerTrace::new();
        t.extend(sample_trace().points().iter().copied());
        assert_eq!(t.len(), 100);
    }
}
