//! Shared memory-bandwidth contention model.
//!
//! On integrated parts the CPU cores and the GPU share one memory controller.
//! When both devices run a bandwidth-hungry kernel simultaneously, neither
//! achieves its solo throughput. This is why the paper's profiler measures
//! R_C and R_G *in combined mode* (§3.2): those contended rates are what the
//! time model T(α) needs for the combined phase — and why the tail phase
//! (single device) runs slightly faster than the model predicts, one of the
//! EAS-vs-Oracle gaps the paper observes.
//!
//! Model: each device demands `rate × bytes_per_item`. If total demand
//! exceeds the platform peak, bandwidth is granted proportionally to demand
//! and each device's *memory-bound fraction* of work slows accordingly
//! (roofline-style: the compute fraction is unaffected).

/// One device's demand entering the contention model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BwDemand {
    /// Uncontended processing rate in items/second.
    pub rate: f64,
    /// Memory traffic per item in bytes.
    pub bytes_per_item: f64,
    /// Fraction of the kernel's time that is bandwidth-limited, in [0, 1].
    pub memory_fraction: f64,
}

/// Effective rates after sharing `peak_bw` bytes/second between demands.
///
/// Returns one derated rate per input demand, in order. Devices with zero
/// demand are unaffected. The result never exceeds the input rate.
///
/// # Examples
///
/// ```
/// use easched_sim::bandwidth::{contended_rates, BwDemand};
///
/// // Two identical fully-memory-bound streams each wanting the full bus.
/// let d = BwDemand { rate: 1.0e6, bytes_per_item: 1000.0, memory_fraction: 1.0 };
/// let rates = contended_rates(1.0e9, &[d, d]);
/// // Each gets half the bus → half the throughput.
/// assert!((rates[0] - 0.5e6).abs() < 1.0);
/// assert_eq!(rates[0], rates[1]);
/// ```
pub fn contended_rates(peak_bw: f64, demands: &[BwDemand]) -> Vec<f64> {
    let total: f64 = demands
        .iter()
        .map(|d| d.rate.max(0.0) * d.bytes_per_item.max(0.0))
        .sum();
    if total <= peak_bw || total <= 0.0 {
        return demands.iter().map(|d| d.rate).collect();
    }
    // Oversubscribed: every byte of demand is granted the same fraction.
    let grant = peak_bw / total;
    demands
        .iter()
        .map(|d| {
            let mf = d.memory_fraction.clamp(0.0, 1.0);
            if mf == 0.0 {
                return d.rate;
            }
            // Roofline composition: time per item = compute part + memory
            // part stretched by 1/grant.
            let slowdown = (1.0 - mf) + mf / grant;
            d.rate / slowdown
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: BwDemand = BwDemand {
        rate: 1.0e6,
        bytes_per_item: 100.0,
        memory_fraction: 1.0,
    };

    #[test]
    fn under_subscription_unaffected() {
        let rates = contended_rates(1.0e9, &[D]);
        assert_eq!(rates, vec![1.0e6]); // demands 1e8 < 1e9
    }

    #[test]
    fn single_oversubscribed_device_throttled() {
        let rates = contended_rates(0.5e8, &[D]); // demands 1e8, bus 0.5e8
        assert!((rates[0] - 0.5e6).abs() < 1.0);
    }

    #[test]
    fn compute_bound_device_untouched_under_contention() {
        let compute = BwDemand {
            memory_fraction: 0.0,
            ..D
        };
        let rates = contended_rates(1.0e8, &[D, compute]);
        assert!(rates[0] < D.rate, "memory-bound slows");
        assert_eq!(rates[1], compute.rate, "compute-bound keeps rate");
    }

    #[test]
    fn partial_memory_fraction_partial_slowdown() {
        let half = BwDemand {
            memory_fraction: 0.5,
            ..D
        };
        let full = contended_rates(1.0e8, &[D, D])[0];
        let part = contended_rates(1.0e8, &[half, D])[0];
        assert!(part > full, "less memory-bound → less slowdown");
        assert!(part < half.rate);
    }

    #[test]
    fn total_granted_bw_not_exceeding_peak() {
        let peak = 1.0e8;
        let rates = contended_rates(peak, &[D, D, D]);
        let used: f64 = rates.iter().map(|r| r * D.bytes_per_item).sum();
        assert!(used <= peak * 1.0001, "granted {used} > peak {peak}");
    }

    #[test]
    fn zero_demand_passthrough() {
        let z = BwDemand { rate: 0.0, ..D };
        let rates = contended_rates(1.0, &[z, D]);
        assert_eq!(rates[0], 0.0);
        assert!(rates[1] > 0.0);
    }

    #[test]
    fn empty_demands_ok() {
        assert!(contended_rates(1.0e9, &[]).is_empty());
    }

    #[test]
    fn rates_never_increase() {
        for peak in [1.0e6, 1.0e7, 1.0e8, 1.0e9] {
            for r in contended_rates(peak, &[D, D]) {
                assert!(r <= D.rate);
            }
        }
    }
}
