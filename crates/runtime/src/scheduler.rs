//! The scheduling-policy interface.
//!
//! Two flavors exist:
//!
//! * [`Scheduler`] — the exclusive, `&mut self` policy the runtime has
//!   always driven; one workload stream per policy instance.
//! * [`ConcurrentScheduler`] — a shared, `&self` policy that many workload
//!   streams can drive at once from separate threads (e.g. EAS with a
//!   sharded kernel table). [`Shared`] adapts an `Arc` of one into a
//!   regular [`Scheduler`], so every existing entry point
//!   (`run_workload`, `replay_trace`, evaluators) works unchanged with a
//!   shared policy.

use crate::backend::Backend;
use std::sync::Arc;

/// Identifies a kernel across invocations — the paper's global table G maps
/// "CPU function pointer" to the learned offload ratio; we use a stable
/// numeric id per kernel instead of a raw pointer.
pub type KernelId = u64;

/// What the admission layer allows this invocation to do with the GPU
/// proxy. The default (`Allow`) is the single-tenant fast path and leaves
/// scheduling byte-identical to a context-free call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GpuPolicy {
    /// Normal scheduling: profile, offload, learn.
    #[default]
    Allow,
    /// Brownout stage 1: learned table entries may still be reused, but
    /// no *new* GPU offload is profiled (unknown kernels run CPU-only
    /// without learning).
    DenyNew,
    /// Brownout stage 2: force α = 0 — every invocation runs CPU-only
    /// and learns nothing.
    Deny,
}

/// Per-invocation admission context, threaded from the multi-tenant
/// frontend down into the scheduling policy.
///
/// `InvocationCtx::default()` is the single-tenant fast path: no deadline
/// budget, GPU fully allowed. Policies must treat a default context
/// exactly like a context-free call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationCtx {
    /// GPU gating from the brownout ladder.
    pub gpu: GpuPolicy,
    /// Per-request deadline budget, seconds; composes with the policy's
    /// own watchdog deadlines (the tighter bound wins).
    pub deadline: Option<f64>,
    /// Causal trace this invocation belongs to; 0 means untraced (the
    /// scheduler allocates a fresh trace when span tracing is enabled).
    /// Purely observational — policies must never branch on it.
    pub trace: u64,
    /// Owning tenant's registry index for span labeling, or `u16::MAX`
    /// when the invocation arrived outside any tenant frontend.
    pub tenant: u16,
}

impl Default for InvocationCtx {
    fn default() -> InvocationCtx {
        InvocationCtx {
            gpu: GpuPolicy::default(),
            deadline: None,
            trace: 0,
            tenant: u16::MAX,
        }
    }
}

impl InvocationCtx {
    /// True when this context changes nothing relative to a context-free
    /// call (the single-tenant fast path). Trace/tenant labels are
    /// observational and deliberately excluded: a traced invocation must
    /// schedule byte-identically to an untraced one.
    pub fn is_default(&self) -> bool {
        self.gpu == GpuPolicy::Allow && self.deadline.is_none()
    }
}

/// A work-partitioning policy.
///
/// The runtime calls [`Scheduler::schedule`] once per kernel invocation with
/// a [`Backend`] holding that invocation's iterations. The policy must
/// consume **all** remaining iterations before returning (the adapters in
/// this crate assert this). Policies keep their own cross-invocation state —
/// e.g. EAS's kernel table G.
pub trait Scheduler {
    /// Human-readable policy name ("EAS", "GPU", …) used in reports.
    fn name(&self) -> &str;

    /// Executes one kernel invocation.
    fn schedule(&mut self, kernel: KernelId, backend: &mut dyn Backend);
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn schedule(&mut self, kernel: KernelId, backend: &mut dyn Backend) {
        (**self).schedule(kernel, backend)
    }
}

/// A work-partitioning policy that can serve many workload streams
/// concurrently.
///
/// Unlike [`Scheduler`], `schedule_shared` takes `&self`: all
/// cross-invocation state (e.g. a learned kernel table) must be interior
/// and thread-safe. One policy instance behind an `Arc` can then be driven
/// from N threads at once, each with its own [`Backend`].
pub trait ConcurrentScheduler: Send + Sync {
    /// Human-readable policy name used in reports.
    fn name(&self) -> &str;

    /// Executes one kernel invocation; may be called concurrently from
    /// many threads (with distinct backends).
    fn schedule_shared(&self, kernel: KernelId, backend: &mut dyn Backend);

    /// Executes one kernel invocation under an admission context.
    ///
    /// The default ignores the context, so existing policies keep
    /// working; context-aware policies (EAS) override this and implement
    /// brownout gating and deadline budgets.
    fn schedule_shared_ctx(&self, kernel: KernelId, backend: &mut dyn Backend, ctx: InvocationCtx) {
        let _ = ctx;
        self.schedule_shared(kernel, backend);
    }
}

/// Adapter presenting an `Arc<ConcurrentScheduler>` as a [`Scheduler`].
///
/// Clone one `Shared` per thread; every clone drives the same underlying
/// policy and shares its learned state.
///
/// # Examples
///
/// ```
/// use easched_runtime::scheduler::{ConcurrentScheduler, Shared};
/// use easched_runtime::{Backend, KernelId, Scheduler};
/// use std::sync::Arc;
///
/// struct AlwaysCpu;
/// impl ConcurrentScheduler for AlwaysCpu {
///     fn name(&self) -> &str { "cpu" }
///     fn schedule_shared(&self, _k: KernelId, b: &mut dyn Backend) {
///         if b.remaining() > 0 { b.run_split(0.0); }
///     }
/// }
///
/// let shared = Shared::new(Arc::new(AlwaysCpu));
/// let mut per_thread = shared.clone(); // one clone per workload stream
/// assert_eq!(per_thread.name(), "cpu");
/// ```
#[derive(Debug)]
pub struct Shared<S: ?Sized> {
    ctx: InvocationCtx,
    policy: Arc<S>,
}

impl<S: ?Sized> Clone for Shared<S> {
    fn clone(&self) -> Self {
        Shared {
            ctx: self.ctx,
            policy: Arc::clone(&self.policy),
        }
    }
}

impl<S: ConcurrentScheduler + ?Sized> Shared<S> {
    /// Wraps a shared policy with the default (single-tenant) context.
    pub fn new(policy: Arc<S>) -> Shared<S> {
        Shared {
            ctx: InvocationCtx::default(),
            policy,
        }
    }

    /// The underlying shared policy.
    pub fn policy(&self) -> &Arc<S> {
        &self.policy
    }

    /// This handle's admission context, applied to every invocation it
    /// schedules.
    pub fn ctx(&self) -> InvocationCtx {
        self.ctx
    }

    /// Returns a handle with the given admission context (builder form).
    pub fn with_ctx(mut self, ctx: InvocationCtx) -> Shared<S> {
        self.ctx = ctx;
        self
    }

    /// Replaces this handle's admission context in place.
    pub fn set_ctx(&mut self, ctx: InvocationCtx) {
        self.ctx = ctx;
    }
}

impl<S: ConcurrentScheduler + ?Sized> Scheduler for Shared<S> {
    fn name(&self) -> &str {
        self.policy.name()
    }

    fn schedule(&mut self, kernel: KernelId, backend: &mut dyn Backend) {
        self.policy.schedule_shared_ctx(kernel, backend, self.ctx)
    }
}

/// The trivial fixed-ratio policy: every invocation runs at offload ratio
/// α with no profiling. `FixedAlpha(0.0)` is CPU-alone, `FixedAlpha(1.0)`
/// GPU-alone; the Oracle scheme is an exhaustive sweep over these.
///
/// # Examples
///
/// ```
/// use easched_runtime::scheduler::FixedAlpha;
/// use easched_runtime::Scheduler;
///
/// let cpu_only = FixedAlpha::new(0.0);
/// assert_eq!(cpu_only.name(), "alpha=0.00");
/// ```
#[derive(Debug, Clone)]
pub struct FixedAlpha {
    alpha: f64,
    name: String,
}

impl FixedAlpha {
    /// Creates a fixed-α policy.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside [0, 1].
    pub fn new(alpha: f64) -> FixedAlpha {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        FixedAlpha {
            alpha,
            name: format!("alpha={alpha:.2}"),
        }
    }

    /// The ratio this policy applies.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Scheduler for FixedAlpha {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(&mut self, _kernel: KernelId, backend: &mut dyn Backend) {
        if backend.remaining() > 0 {
            backend.run_split(self.alpha);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::test_support::FakeBackend;

    #[test]
    fn fixed_alpha_consumes_everything() {
        let mut s = FixedAlpha::new(0.3);
        let mut b = FakeBackend::new(1000, 100.0, 200.0);
        s.schedule(1, &mut b);
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.log, vec!["split(0.30)"]);
    }

    #[test]
    fn fixed_alpha_skips_empty_invocations() {
        let mut s = FixedAlpha::new(0.5);
        let mut b = FakeBackend::new(0, 100.0, 200.0);
        s.schedule(1, &mut b);
        assert!(b.log.is_empty());
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn rejects_out_of_range() {
        FixedAlpha::new(1.2);
    }
}
