//! Real-thread execution backend: work-stealing CPU workers plus a pacing
//! GPU-proxy thread.
//!
//! This is the paper's §4 runtime structure in wall-clock form: the GPU
//! proxy thread "runs on a CPU core and controls the GPU's operation" —
//! here it *emulates* the integrated GPU by executing the kernel
//! functionally while pacing itself to a configured device throughput (we
//! have no OpenCL device; see DESIGN.md §2). CPU workers drain a shared
//! atomic counter exactly as in the paper's `OnlineProfile`.
//!
//! Energy for wall-clock runs is estimated from the platform's calibrated
//! power table (steady-state operating points × phase durations): the
//! demo path trades the PCU transient model for real parallel execution.

use crate::admission::GpuProxyMeter;
use crate::backend::Backend;
use crate::clock::{Clock, WallClock};
use crate::observation::Observation;
use crate::pool;
use easched_sim::{KernelTraits, Platform};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for a [`ThreadBackend`].
#[derive(Debug, Clone)]
pub struct ThreadBackendConfig {
    /// Number of CPU worker threads.
    pub cpu_workers: usize,
    /// Emulated GPU throughput in items/second (wall clock).
    pub gpu_rate: f64,
    /// Pacing granularity of the proxy thread, items.
    pub pacing_batch: u64,
    /// Shared-counter chunk size for CPU workers.
    pub cpu_chunk: u64,
    /// Time source for every timer and pacing sleep in the backend
    /// (defaults to [`WallClock`]; inject a deterministic clock for
    /// record/replay and tests).
    pub clock: Arc<dyn Clock>,
    /// Optional GPU-proxy busy-time meter, debited with every proxy
    /// phase so the admission layer can charge fair-share credits for
    /// wall-clock runs (`None` by default: zero-cost when unmetered).
    pub gpu_meter: Option<Arc<GpuProxyMeter>>,
}

impl ThreadBackendConfig {
    /// A reasonable demo configuration: `workers` CPU threads and an
    /// emulated GPU of `gpu_rate` items/second.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `gpu_rate` is not positive.
    pub fn new(workers: usize, gpu_rate: f64) -> ThreadBackendConfig {
        assert!(workers > 0, "need at least one CPU worker");
        assert!(
            gpu_rate.is_finite() && gpu_rate > 0.0,
            "gpu_rate must be positive"
        );
        ThreadBackendConfig {
            cpu_workers: workers,
            gpu_rate,
            pacing_batch: 256,
            cpu_chunk: 256,
            clock: Arc::new(WallClock),
            gpu_meter: None,
        }
    }

    /// Replaces the backend's time source (builder style).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> ThreadBackendConfig {
        self.clock = clock;
        self
    }

    /// Attaches a GPU-proxy busy-time meter (builder style).
    pub fn with_gpu_meter(mut self, meter: Arc<GpuProxyMeter>) -> ThreadBackendConfig {
        self.gpu_meter = Some(meter);
        self
    }
}

/// One invocation's execution surface over real OS threads.
pub struct ThreadBackend<'a> {
    config: ThreadBackendConfig,
    platform: &'a Platform,
    traits: &'a KernelTraits,
    process: &'a (dyn Fn(usize) + Sync),
    low: u64,
    high: u64,
}

impl std::fmt::Debug for ThreadBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadBackend")
            .field("low", &self.low)
            .field("high", &self.high)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<'a> ThreadBackend<'a> {
    /// Creates a backend for an invocation of `n` items.
    pub fn new(
        config: ThreadBackendConfig,
        platform: &'a Platform,
        traits: &'a KernelTraits,
        n: u64,
        process: &'a (dyn Fn(usize) + Sync),
    ) -> ThreadBackend<'a> {
        ThreadBackend {
            config,
            platform,
            traits,
            process,
            low: 0,
            high: n,
        }
    }

    /// Runs the proxy-paced "GPU" over `[start, end)`. Returns busy seconds.
    fn gpu_execute(&self, start: u64, end: u64) -> f64 {
        let clock = self.config.clock.as_ref();
        let t0 = clock.now();
        let mut done = 0u64;
        let total = end - start;
        while done < total {
            let batch = self.config.pacing_batch.min(total - done);
            for i in start + done..start + done + batch {
                (self.process)(i as usize);
            }
            done += batch;
            // Pace to the emulated device rate.
            let target = done as f64 / self.config.gpu_rate;
            let actual = clock.now() - t0;
            if target > actual {
                clock.sleep(target - actual);
            }
        }
        let busy = clock.now() - t0;
        if let Some(meter) = &self.config.gpu_meter {
            meter.add(busy);
        }
        busy
    }

    /// Steady-state energy estimate for a step with the given phase
    /// durations.
    fn estimate_energy(&self, both: f64, cpu_tail: f64, gpu_tail: f64) -> f64 {
        let m = self.traits.memory_intensity();
        let table = &self.platform.power;
        table.target_power(1.0, 1.0, m, 1.0, 1.0) * both
            + table.target_power(1.0, 0.0, m, 1.0, 1.0) * cpu_tail
            + table.target_power(0.0, 1.0, m, 1.0, 1.0) * gpu_tail
    }
}

impl Backend for ThreadBackend<'_> {
    fn remaining(&self) -> u64 {
        self.high - self.low
    }

    fn gpu_profile_size(&self) -> u64 {
        self.platform.gpu_profile_size()
    }

    fn profile_step(&mut self, gpu_chunk: u64) -> Observation {
        let rem = self.remaining();
        let chunk = gpu_chunk.min(rem);
        let pool_items = rem - chunk;
        let gpu_start = self.high - chunk;

        let clock = Arc::clone(&self.config.clock);
        let stop = AtomicBool::new(false);
        let counter = AtomicU64::new(0);
        let executed = AtomicU64::new(0);
        let t0 = clock.now();
        let mut gpu_time = 0.0;
        let mut cpu_busy = 0.0;

        std::thread::scope(|s| {
            // The GPU proxy thread (paper: one CPU worker acts as proxy).
            let proxy = s.spawn(|| {
                let t = self.gpu_execute(gpu_start, self.high);
                stop.store(true, Ordering::Relaxed);
                t
            });
            // CPU workers atomically grab work from the shared counter
            // until the proxy signals completion or the pool is empty.
            let mut handles = Vec::new();
            for _ in 0..self.config.cpu_workers {
                let counter = &counter;
                let executed = &executed;
                let stop = &stop;
                let low = self.low;
                let chunk_sz = self.config.cpu_chunk;
                let process = self.process;
                let clock = Arc::clone(&clock);
                handles.push(s.spawn(move || {
                    let t = clock.now();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let c = counter.fetch_add(chunk_sz, Ordering::Relaxed);
                        if c >= pool_items {
                            break;
                        }
                        let end = (c + chunk_sz).min(pool_items);
                        for i in c..end {
                            process((low + i) as usize);
                        }
                        executed.fetch_add(end - c, Ordering::Relaxed);
                    }
                    clock.now() - t
                }));
            }
            gpu_time = proxy.join().expect("gpu proxy panicked");
            for h in handles {
                cpu_busy += h.join().expect("cpu worker panicked");
            }
        });

        let cpu_items = executed.load(Ordering::Relaxed);
        let elapsed = clock.now() - t0;
        self.high -= chunk;
        self.low += cpu_items;

        Observation {
            elapsed,
            cpu_items,
            gpu_items: chunk,
            // Aggregate pool throughput is measured against wall time of
            // the combined phase.
            cpu_time: elapsed,
            gpu_time,
            energy_joules: self.estimate_energy(elapsed.min(gpu_time), 0.0, 0.0)
                + self.estimate_energy(0.0, (elapsed - gpu_time).max(0.0), 0.0),
            ..Default::default()
        }
    }

    fn run_split(&mut self, alpha: f64) -> Observation {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        let rem = self.remaining();
        if rem == 0 {
            return Observation::default();
        }
        let gpu = (rem as f64 * alpha).round() as u64;
        let cpu = rem - gpu;
        let gpu_start = self.high - gpu;
        let low = self.low;
        let process = self.process;

        let clock = Arc::clone(&self.config.clock);
        let t0 = clock.now();
        let mut gpu_time = 0.0;
        let mut cpu_report = pool::PoolReport::default();
        std::thread::scope(|s| {
            let proxy = (gpu > 0).then(|| s.spawn(|| self.gpu_execute(gpu_start, self.high)));
            if cpu > 0 {
                cpu_report = pool::parallel_for_clocked(
                    cpu,
                    self.config.cpu_workers,
                    clock.as_ref(),
                    &|i| process((low + i as u64) as usize),
                );
            }
            if let Some(p) = proxy {
                gpu_time = p.join().expect("gpu proxy panicked");
            }
        });
        let elapsed = clock.now() - t0;
        self.high -= gpu;
        self.low += cpu;

        let cpu_time = cpu_report.elapsed;
        let both = cpu_time.min(gpu_time);
        Observation {
            elapsed,
            cpu_items: cpu,
            gpu_items: gpu,
            cpu_time,
            gpu_time,
            energy_joules: self.estimate_energy(
                both,
                (cpu_time - both).max(0.0),
                (gpu_time - both).max(0.0),
            ),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easched_sim::KernelTraits;
    use std::sync::atomic::AtomicU32;

    fn traits() -> KernelTraits {
        KernelTraits::builder("t").memory_intensity(0.0).build()
    }

    #[test]
    fn split_executes_every_index_once() {
        let platform = Platform::haswell_desktop();
        let t = traits();
        let hits: Vec<AtomicU32> = (0..20_000).map(|_| AtomicU32::new(0)).collect();
        let f = |i: usize| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        };
        let mut b = ThreadBackend::new(
            ThreadBackendConfig::new(4, 1.0e7),
            &platform,
            &t,
            20_000,
            &f,
        );
        let obs = b.run_split(0.4);
        assert_eq!(b.remaining(), 0);
        assert_eq!(obs.cpu_items + obs.gpu_items, 20_000);
        assert_eq!(obs.gpu_items, 8_000);
        let _ = b;
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn profile_then_split_covers_everything() {
        let platform = Platform::haswell_desktop();
        let t = traits();
        let hits: Vec<AtomicU32> = (0..30_000).map(|_| AtomicU32::new(0)).collect();
        let f = |i: usize| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        };
        let mut b = ThreadBackend::new(
            // Slow emulated GPU so the CPU pool is busy during profiling.
            ThreadBackendConfig::new(2, 2.0e5),
            &platform,
            &t,
            30_000,
            &f,
        );
        let obs = b.profile_step(2_000);
        assert_eq!(obs.gpu_items, 2_000);
        assert!(obs.elapsed > 0.0);
        b.run_split(0.0);
        assert_eq!(b.remaining(), 0);
        let _ = b;
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn gpu_pacing_approximates_rate() {
        let platform = Platform::haswell_desktop();
        let t = traits();
        let f = |_: usize| {};
        let b = ThreadBackend::new(
            ThreadBackendConfig::new(1, 100_000.0),
            &platform,
            &t,
            10_000,
            &f,
        );
        let secs = b.gpu_execute(0, 10_000);
        // 10k items at 100k items/s ≈ 0.1 s (generous tolerance for CI).
        assert!(secs > 0.05 && secs < 0.5, "paced time {secs}");
    }

    #[test]
    fn energy_estimate_positive_and_scales() {
        let platform = Platform::haswell_desktop();
        let t = traits();
        let f = |_: usize| {};
        let b = ThreadBackend::new(ThreadBackendConfig::new(1, 1e6), &platform, &t, 10, &f);
        let e1 = b.estimate_energy(1.0, 0.0, 0.0);
        let e2 = b.estimate_energy(2.0, 0.0, 0.0);
        assert!(e1 > 0.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        // Combined phase burns more power than a GPU tail.
        assert!(b.estimate_energy(1.0, 0.0, 0.0) > b.estimate_energy(0.0, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "gpu_rate must be positive")]
    fn config_rejects_bad_rate() {
        ThreadBackendConfig::new(2, 0.0);
    }

    #[test]
    fn gpu_meter_accumulates_proxy_busy_time() {
        let platform = Platform::haswell_desktop();
        let t = traits();
        let f = |_: usize| {};
        let meter = Arc::new(GpuProxyMeter::new());
        let cfg = ThreadBackendConfig::new(1, 1.0e6).with_gpu_meter(Arc::clone(&meter));
        let mut b = ThreadBackend::new(cfg, &platform, &t, 10_000, &f);
        let obs = b.run_split(1.0);
        assert!(obs.gpu_time > 0.0);
        assert!(
            (meter.total() - obs.gpu_time).abs() < 1e-9,
            "meter {} vs observed {}",
            meter.total(),
            obs.gpu_time
        );
    }

    #[test]
    fn virtual_clock_runs_are_deterministic_and_unpaced() {
        use crate::clock::TickClock;
        let platform = Platform::haswell_desktop();
        let t = traits();
        let f = |_: usize| {};
        // A single worker makes the clock-call sequence fixed; the virtual
        // clock then makes the observations bit-identical run over run —
        // and nothing actually sleeps, so a "slow" 1 items/s GPU finishes
        // instantly in wall time.
        let run = || {
            let cfg =
                ThreadBackendConfig::new(1, 1.0).with_clock(std::sync::Arc::new(TickClock::new()));
            let mut b = ThreadBackend::new(cfg, &platform, &t, 4_000, &f);
            let o1 = b.profile_step(1_000);
            let o2 = b.run_split(0.5);
            assert_eq!(b.remaining(), 0);
            [
                o1.elapsed.to_bits(),
                o1.gpu_time.to_bits(),
                o1.energy_joules.to_bits(),
                o2.elapsed.to_bits(),
                o2.gpu_time.to_bits(),
                o2.energy_joules.to_bits(),
            ]
        };
        let wall0 = std::time::Instant::now();
        assert_eq!(run(), run());
        // 5k items at 1 item/s would be ~83 minutes of real pacing.
        assert!(wall0.elapsed() < std::time::Duration::from_secs(30));
    }
}
