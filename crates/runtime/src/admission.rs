//! Overload protection for multi-tenant frontends: tenant registry,
//! bounded admission queues with typed backpressure, weighted fair-share
//! credit accounting for the single GPU proxy, and the three-stage
//! brownout ladder (DESIGN.md §13).
//!
//! The paper's runtime assumes one cooperative workload per package; this
//! module is the layer that makes an `Arc<SharedEas>` safe to put in
//! front of many mutually-distrusting tenants. Design rules:
//!
//! * **Never unbounded.** Every tenant has a bounded FIFO queue; an offer
//!   that cannot be queued is *shed* with an explicit retry hint, never
//!   silently dropped or buffered without limit.
//! * **Weighted fair share.** The GPU proxy is one resource. Draining
//!   picks the backlogged tenant with the smallest credit-normalized
//!   debt (`gpu_seconds / weight`), so long-run GPU time converges to
//!   the weight vector for saturated tenants.
//! * **Degrade before deny.** Under package-power pressure the brownout
//!   ladder first stops *new* GPU offload (learned splits still run),
//!   then forces α = 0 for everyone, and only as a last resort sheds the
//!   lowest-priority tenants outright. Transitions are hysteretic (EWMA
//!   power + consecutive-sample streaks) so the ladder cannot flap.
//!
//! Everything here is deterministic given the same offer/complete/power
//! sequence — the replay crate records admission decisions and re-runs
//! this controller to reproduce overloaded runs byte-identically.

use crate::scheduler::{GpuPolicy, InvocationCtx};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// One tenant's contract with the frontend.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Human-readable tenant name (used as the Prometheus label).
    pub name: String,
    /// Fair-share weight; GPU-proxy time converges to the weight vector
    /// across saturated tenants. Must be > 0.
    pub weight: f64,
    /// Shed priority: brownout stage 3 sheds tenants with priority at or
    /// below the configured waterline first. Higher is more protected.
    pub priority: u8,
    /// Bound on this tenant's admission queue; offers beyond it shed.
    pub queue_cap: usize,
    /// Per-request deadline budget, seconds of virtual time; composes
    /// with the scheduler's watchdog deadlines (tighter bound wins).
    pub deadline: Option<f64>,
    /// GPU-proxy seconds this tenant may consume per quota window;
    /// `None` is unmetered.
    pub quota: Option<f64>,
}

impl TenantSpec {
    /// A tenant with the given name and weight, no quota, priority 1,
    /// and a queue bound of 8.
    pub fn new(name: impl Into<String>, weight: f64) -> TenantSpec {
        assert!(weight > 0.0, "tenant weight must be positive");
        TenantSpec {
            name: name.into(),
            weight,
            priority: 1,
            queue_cap: 8,
            deadline: None,
            quota: None,
        }
    }

    /// Sets the shed priority (builder form).
    pub fn with_priority(mut self, priority: u8) -> TenantSpec {
        self.priority = priority;
        self
    }

    /// Sets the queue bound (builder form).
    pub fn with_queue_cap(mut self, cap: usize) -> TenantSpec {
        assert!(cap > 0, "queue cap must be positive");
        self.queue_cap = cap;
        self
    }

    /// Sets the per-request deadline budget (builder form).
    pub fn with_deadline(mut self, seconds: f64) -> TenantSpec {
        assert!(seconds > 0.0, "deadline must be positive");
        self.deadline = Some(seconds);
        self
    }

    /// Sets the per-window GPU-proxy quota (builder form).
    pub fn with_quota(mut self, gpu_seconds: f64) -> TenantSpec {
        assert!(gpu_seconds > 0.0, "quota must be positive");
        self.quota = Some(gpu_seconds);
        self
    }
}

/// The set of tenants a frontend serves. Index order is identity: tenant
/// ids are positions in this registry.
#[derive(Debug, Clone, Default)]
pub struct TenantRegistry {
    specs: Vec<TenantSpec>,
}

impl TenantRegistry {
    /// A registry over the given tenants.
    pub fn new(specs: Vec<TenantSpec>) -> TenantRegistry {
        assert!(!specs.is_empty(), "registry needs at least one tenant");
        TenantRegistry { specs }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the registry holds no tenants (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The spec for tenant `id`.
    pub fn spec(&self, id: usize) -> &TenantSpec {
        &self.specs[id]
    }

    /// Iterates `(id, spec)` in identity order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &TenantSpec)> {
        self.specs.iter().enumerate()
    }
}

/// Typed outcome of offering one request to the admission controller.
/// There is no untyped "maybe later" — callers always learn exactly what
/// happened and what to do next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionOutcome {
    /// Admitted at the head of an empty queue: the request runs in the
    /// next drain without waiting behind anyone.
    Admit {
        /// Ticket identifying the request in later drains.
        ticket: u64,
    },
    /// Queued behind `pos` earlier requests of the same tenant.
    Queue {
        /// Ticket identifying the request in later drains.
        ticket: u64,
        /// Requests ahead of this one in the tenant's queue.
        pos: usize,
    },
    /// Shed: the frontend refuses the request. `retry_after` is the
    /// suggested backoff in ticks before offering again.
    Shed {
        /// Suggested backoff, in scheduler ticks.
        retry_after: f64,
    },
}

impl AdmissionOutcome {
    /// Stable wire code (0 admit, 1 queue, 2 shed) used by the replay
    /// log's admission records.
    pub fn code(&self) -> u8 {
        match self {
            AdmissionOutcome::Admit { .. } => 0,
            AdmissionOutcome::Queue { .. } => 1,
            AdmissionOutcome::Shed { .. } => 2,
        }
    }

    /// The argument word paired with [`code`](AdmissionOutcome::code) in
    /// the replay log: ticket for admit/queue-position for queue,
    /// retry-after bits for shed.
    pub fn arg(&self) -> u64 {
        match *self {
            AdmissionOutcome::Admit { ticket } => ticket,
            AdmissionOutcome::Queue { ticket: _, pos } => pos as u64,
            AdmissionOutcome::Shed { retry_after } => retry_after.to_bits(),
        }
    }
}

/// Rung of the brownout ladder, from healthy to load-shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum BrownoutLevel {
    /// Power within budget: no degradation.
    #[default]
    Normal,
    /// Stage 1: deny *new* GPU offload; learned table entries still run.
    DenyGpu,
    /// Stage 2: force α = 0 for every invocation.
    ForceCpu,
    /// Stage 3: additionally shed the lowest-priority tenants outright.
    ShedLoad,
}

impl BrownoutLevel {
    /// Stable numeric code (0..=3), used in telemetry and replay logs.
    pub fn code(self) -> u8 {
        match self {
            BrownoutLevel::Normal => 0,
            BrownoutLevel::DenyGpu => 1,
            BrownoutLevel::ForceCpu => 2,
            BrownoutLevel::ShedLoad => 3,
        }
    }

    /// Inverse of [`code`](BrownoutLevel::code).
    pub fn from_code(code: u8) -> Option<BrownoutLevel> {
        Some(match code {
            0 => BrownoutLevel::Normal,
            1 => BrownoutLevel::DenyGpu,
            2 => BrownoutLevel::ForceCpu,
            3 => BrownoutLevel::ShedLoad,
            _ => return None,
        })
    }

    /// The GPU gate this rung imposes on admitted invocations.
    pub fn gpu_policy(self) -> GpuPolicy {
        match self {
            BrownoutLevel::Normal => GpuPolicy::Allow,
            BrownoutLevel::DenyGpu => GpuPolicy::DenyNew,
            BrownoutLevel::ForceCpu | BrownoutLevel::ShedLoad => GpuPolicy::Deny,
        }
    }

    fn up(self) -> BrownoutLevel {
        match self {
            BrownoutLevel::Normal => BrownoutLevel::DenyGpu,
            BrownoutLevel::DenyGpu => BrownoutLevel::ForceCpu,
            _ => BrownoutLevel::ShedLoad,
        }
    }

    fn down(self) -> BrownoutLevel {
        match self {
            BrownoutLevel::ShedLoad => BrownoutLevel::ForceCpu,
            BrownoutLevel::ForceCpu => BrownoutLevel::DenyGpu,
            _ => BrownoutLevel::Normal,
        }
    }
}

/// Hysteresis parameters for the brownout controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Package power budget, watts (the contended resource).
    pub power_budget: f64,
    /// Escalate one rung after `streak` consecutive EWMA samples above
    /// `power_budget * enter_margin`.
    pub enter_margin: f64,
    /// De-escalate one rung after `streak` consecutive EWMA samples
    /// below `power_budget * exit_margin`. Must sit below `enter_margin`
    /// — the gap is the hysteresis band that prevents flapping.
    pub exit_margin: f64,
    /// EWMA weight of the newest power sample (0 < w ≤ 1).
    pub ewma_weight: f64,
    /// Consecutive-sample streak required for any transition.
    pub streak: u32,
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig {
            power_budget: 45.0,
            enter_margin: 1.0,
            exit_margin: 0.85,
            ewma_weight: 0.3,
            streak: 3,
        }
    }
}

/// Hysteresis controller over the simulated package power signal. One
/// rung per transition: even a huge surge walks the ladder a stage at a
/// time, each stage gated by its own streak.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    cfg: BrownoutConfig,
    level: BrownoutLevel,
    ewma: Option<f64>,
    hot_streak: u32,
    cool_streak: u32,
}

impl BrownoutController {
    /// A controller at `Normal` with the given hysteresis parameters.
    pub fn new(cfg: BrownoutConfig) -> BrownoutController {
        assert!(cfg.power_budget > 0.0, "power budget must be positive");
        assert!(
            cfg.exit_margin < cfg.enter_margin,
            "exit margin must sit below enter margin (hysteresis band)"
        );
        assert!(
            cfg.ewma_weight > 0.0 && cfg.ewma_weight <= 1.0,
            "ewma weight must be in (0, 1]"
        );
        BrownoutController {
            cfg,
            level: BrownoutLevel::Normal,
            ewma: None,
            hot_streak: 0,
            cool_streak: 0,
        }
    }

    /// Current rung.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// Smoothed power estimate, watts (None before the first sample).
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }

    /// Folds one package-power sample; returns the transition if this
    /// sample moved the ladder.
    pub fn observe(&mut self, watts: f64) -> Option<(BrownoutLevel, BrownoutLevel)> {
        if !watts.is_finite() || watts < 0.0 {
            return None;
        }
        let w = self.cfg.ewma_weight;
        let ewma = match self.ewma {
            Some(prev) => prev * (1.0 - w) + watts * w,
            None => watts,
        };
        self.ewma = Some(ewma);

        if ewma > self.cfg.power_budget * self.cfg.enter_margin {
            self.cool_streak = 0;
            self.hot_streak += 1;
            if self.hot_streak >= self.cfg.streak.max(1) && self.level != BrownoutLevel::ShedLoad {
                self.hot_streak = 0;
                let from = self.level;
                self.level = self.level.up();
                return Some((from, self.level));
            }
        } else if ewma < self.cfg.power_budget * self.cfg.exit_margin {
            self.hot_streak = 0;
            self.cool_streak += 1;
            if self.cool_streak >= self.cfg.streak.max(1) && self.level != BrownoutLevel::Normal {
                self.cool_streak = 0;
                let from = self.level;
                self.level = self.level.down();
                return Some((from, self.level));
            }
        } else {
            // Inside the hysteresis band: hold the rung, reset streaks.
            self.hot_streak = 0;
            self.cool_streak = 0;
        }
        None
    }
}

/// Controller-wide knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Requests drained (executed) per tick across all tenants.
    pub slots_per_tick: usize,
    /// Backoff hint (ticks) attached to queue-full sheds.
    pub retry_after: f64,
    /// Quota window length in ticks; per-tenant GPU-quota consumption
    /// resets at window boundaries.
    pub quota_window: u64,
    /// Brownout stage 3 sheds tenants with priority at or below this.
    pub shed_below_priority: u8,
    /// Brownout hysteresis parameters.
    pub brownout: BrownoutConfig,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            slots_per_tick: 4,
            retry_after: 2.0,
            quota_window: 16,
            shed_below_priority: 0,
            brownout: BrownoutConfig::default(),
        }
    }
}

/// Per-tenant counters, reported alongside health telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TenantStats {
    /// Requests offered.
    pub offered: u64,
    /// Offers admitted at the queue head.
    pub admitted: u64,
    /// Offers queued behind earlier requests.
    pub queued: u64,
    /// Offers shed (all causes, including quota and brownout).
    pub shed: u64,
    /// Sheds caused specifically by an exhausted GPU quota.
    pub quota_denials: u64,
    /// GPU-proxy seconds consumed since construction.
    pub gpu_seconds: f64,
    /// Deepest the tenant's queue has ever been.
    pub queue_high_water: usize,
    /// Current queue depth.
    pub queue_len: usize,
}

/// One queued request: the ticket plus the tick it entered the queue,
/// so drains can report exact queue-wait (the SLO layer's raw signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueueEntry {
    ticket: u64,
    enqueued: u64,
}

/// One request handed out by
/// [`drain_detailed`](AdmissionController::drain_detailed): where it came
/// from, which ticket it carries, and how long it queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainedRequest {
    /// Owning tenant's registry index.
    pub tenant: usize,
    /// Ticket assigned at offer time.
    pub ticket: u64,
    /// Full ticks spent queued between offer and this drain.
    pub waited_ticks: u64,
}

/// The admission controller: bounded per-tenant queues, weighted
/// fair-share draining, quota windows, and the brownout ladder.
///
/// Deterministic by construction — no clocks, no RNG; state advances
/// only through [`offer`](AdmissionController::offer),
/// [`drain`](AdmissionController::drain),
/// [`complete`](AdmissionController::complete),
/// [`observe_power`](AdmissionController::observe_power) and
/// [`advance_tick`](AdmissionController::advance_tick).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    registry: TenantRegistry,
    cfg: AdmissionConfig,
    brownout: BrownoutController,
    queues: Vec<VecDeque<QueueEntry>>,
    debt: Vec<f64>,
    quota_used: Vec<f64>,
    stats: Vec<TenantStats>,
    tick: u64,
    next_ticket: u64,
    completions: u64,
}

impl AdmissionController {
    /// A fresh controller over the given tenants.
    pub fn new(registry: TenantRegistry, cfg: AdmissionConfig) -> AdmissionController {
        let n = registry.len();
        AdmissionController {
            registry,
            brownout: BrownoutController::new(cfg.brownout),
            cfg,
            queues: vec![VecDeque::new(); n],
            debt: vec![0.0; n],
            quota_used: vec![0.0; n],
            stats: vec![TenantStats::default(); n],
            tick: 0,
            next_ticket: 0,
            completions: 0,
        }
    }

    /// The tenant registry.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Current brownout rung.
    pub fn level(&self) -> BrownoutLevel {
        self.brownout.level()
    }

    /// Current tick (advanced by [`advance_tick`](Self::advance_tick)).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Offers one request on behalf of `tenant`. Always returns a typed
    /// outcome; queue growth is bounded by the tenant's `queue_cap`.
    pub fn offer(&mut self, tenant: usize) -> AdmissionOutcome {
        let spec = self.registry.spec(tenant).clone();
        self.stats[tenant].offered += 1;

        if self.brownout.level() == BrownoutLevel::ShedLoad
            && spec.priority <= self.cfg.shed_below_priority
        {
            self.stats[tenant].shed += 1;
            return AdmissionOutcome::Shed {
                retry_after: self.cfg.retry_after,
            };
        }

        if let Some(quota) = spec.quota {
            if self.quota_used[tenant] >= quota {
                self.stats[tenant].shed += 1;
                self.stats[tenant].quota_denials += 1;
                let window = self.cfg.quota_window.max(1);
                let to_window_end = window - self.tick % window;
                return AdmissionOutcome::Shed {
                    retry_after: to_window_end as f64,
                };
            }
        }

        let queue = &mut self.queues[tenant];
        if queue.len() >= spec.queue_cap {
            self.stats[tenant].shed += 1;
            return AdmissionOutcome::Shed {
                retry_after: self.cfg.retry_after,
            };
        }

        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let pos = queue.len();
        queue.push_back(QueueEntry {
            ticket,
            enqueued: self.tick,
        });
        self.stats[tenant].queue_len = queue.len();
        self.stats[tenant].queue_high_water = self.stats[tenant].queue_high_water.max(queue.len());
        if pos == 0 {
            self.stats[tenant].admitted += 1;
            AdmissionOutcome::Admit { ticket }
        } else {
            self.stats[tenant].queued += 1;
            AdmissionOutcome::Queue { ticket, pos }
        }
    }

    /// Drains up to `slots` requests in weighted-fair order: each pick
    /// goes to the backlogged tenant with the smallest
    /// `gpu_seconds / weight` (ties to the lowest tenant id, so the
    /// order is deterministic). Returns `(tenant, ticket)` pairs.
    ///
    /// Measured debits only land at [`complete`](Self::complete), after
    /// the drained batch executes — so each pick provisionally charges
    /// its tenant one mean-sized debit (WFQ-style virtual time). Without
    /// the provisional charge a whole batch would go to the single
    /// lowest-debt tenant and the fairness granularity would be a
    /// queue-length burst instead of one request.
    pub fn drain(&mut self, slots: usize) -> Vec<(usize, u64)> {
        self.drain_detailed(slots)
            .into_iter()
            .map(|d| (d.tenant, d.ticket))
            .collect()
    }

    /// [`drain`](Self::drain) with queue-wait detail: each pick also
    /// reports how many full ticks the request spent queued, feeding the
    /// queue-wait spans and the SLO tracker without a second bookkeeping
    /// path.
    pub fn drain_detailed(&mut self, slots: usize) -> Vec<DrainedRequest> {
        let estimate = if self.completions > 0 {
            self.debt.iter().sum::<f64>() / self.completions as f64
        } else {
            1.0
        };
        let mut provisional = self.debt.clone();
        let mut picked = Vec::new();
        for _ in 0..slots {
            let next = self
                .queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .map(|(t, _)| t)
                .min_by(|&a, &b| {
                    let va = provisional[a] / self.registry.spec(a).weight;
                    let vb = provisional[b] / self.registry.spec(b).weight;
                    va.total_cmp(&vb).then(a.cmp(&b))
                });
            let Some(tenant) = next else { break };
            provisional[tenant] += estimate;
            let entry = self.queues[tenant].pop_front().expect("non-empty queue");
            self.stats[tenant].queue_len = self.queues[tenant].len();
            picked.push(DrainedRequest {
                tenant,
                ticket: entry.ticket,
                waited_ticks: self.tick.saturating_sub(entry.enqueued),
            });
        }
        picked
    }

    /// Credits `gpu_seconds` of GPU-proxy time against `tenant` — the
    /// fair-share debt and the quota window both advance.
    pub fn complete(&mut self, tenant: usize, gpu_seconds: f64) {
        let debit = if gpu_seconds.is_finite() && gpu_seconds > 0.0 {
            gpu_seconds
        } else {
            // Even a CPU-only or fault-corrupted request consumed a
            // drain slot; charge a floor so fairness cannot be gamed by
            // reporting zero.
            1e-9
        };
        self.debt[tenant] += debit;
        self.quota_used[tenant] += debit;
        self.stats[tenant].gpu_seconds += debit;
        self.completions += 1;
    }

    /// Folds one package-power sample into the brownout controller. On
    /// an escalation to [`BrownoutLevel::ShedLoad`], queued requests of
    /// shed-target tenants are flushed (counted as shed). Returns the
    /// transition and how many queued requests were flushed.
    pub fn observe_power(&mut self, watts: f64) -> Option<(BrownoutLevel, BrownoutLevel, u64)> {
        let (from, to) = self.brownout.observe(watts)?;
        let mut flushed = 0u64;
        if to == BrownoutLevel::ShedLoad {
            for (t, spec) in self.registry.specs.iter().enumerate() {
                if spec.priority <= self.cfg.shed_below_priority {
                    let n = self.queues[t].len() as u64;
                    self.queues[t].clear();
                    self.stats[t].queue_len = 0;
                    self.stats[t].shed += n;
                    flushed += n;
                }
            }
        }
        Some((from, to, flushed))
    }

    /// Smoothed package-power estimate, watts.
    pub fn power_ewma(&self) -> Option<f64> {
        self.brownout.ewma()
    }

    /// Advances the controller's tick; quota windows reset on boundaries.
    pub fn advance_tick(&mut self) {
        self.tick += 1;
        if self.tick.is_multiple_of(self.cfg.quota_window.max(1)) {
            self.quota_used.iter_mut().for_each(|q| *q = 0.0);
        }
    }

    /// The admission context admitted requests of `tenant` run under:
    /// the brownout rung's GPU gate plus the tenant's deadline budget.
    pub fn ctx_for(&self, tenant: usize) -> InvocationCtx {
        InvocationCtx {
            gpu: self.brownout.level().gpu_policy(),
            deadline: self.registry.spec(tenant).deadline,
            tenant: tenant as u16,
            ..InvocationCtx::default()
        }
    }

    /// Per-tenant counters.
    pub fn tenant_stats(&self, tenant: usize) -> TenantStats {
        self.stats[tenant]
    }

    /// Worst fair-share deficit across *eligible* tenants: those that
    /// offered work, are unmetered (no quota) and sit above the shed
    /// waterline — quota caps and stage-3 shedding are policy, not
    /// unfairness. Deficit is `max(0, entitled − received) / entitled`
    /// where entitlement is the weight share of the eligible set.
    pub fn fair_share_deficit(&self) -> f64 {
        let eligible: Vec<usize> = self
            .registry
            .iter()
            .filter(|(t, s)| {
                self.stats[*t].offered > 0
                    && s.quota.is_none()
                    && s.priority > self.cfg.shed_below_priority
            })
            .map(|(t, _)| t)
            .collect();
        let total_weight: f64 = eligible.iter().map(|&t| self.registry.spec(t).weight).sum();
        let total_debt: f64 = eligible.iter().map(|&t| self.debt[t]).sum();
        if eligible.len() < 2 || total_weight <= 0.0 || total_debt <= 0.0 {
            return 0.0;
        }
        eligible
            .iter()
            .map(|&t| {
                let entitled = self.registry.spec(t).weight / total_weight;
                let received = self.debt[t] / total_debt;
                ((entitled - received) / entitled).max(0.0)
            })
            .fold(0.0, f64::max)
    }

    /// True when every queue respects its bound (the structural
    /// invariant CI asserts under storm load).
    pub fn queues_bounded(&self) -> bool {
        self.registry
            .iter()
            .all(|(t, s)| self.stats[t].queue_high_water <= s.queue_cap)
    }
}

/// Lock-free meter for GPU-proxy busy time, shared between the thread
/// backend's proxy and the admission layer (f64 seconds carried as bits
/// in an atomic word).
#[derive(Debug, Default)]
pub struct GpuProxyMeter {
    bits: AtomicU64,
}

impl GpuProxyMeter {
    /// A meter at zero.
    pub fn new() -> GpuProxyMeter {
        GpuProxyMeter::default()
    }

    /// Adds `seconds` of proxy busy time (CAS loop; lock-free).
    pub fn add(&self, seconds: f64) {
        if !seconds.is_finite() || seconds <= 0.0 {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + seconds).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Total busy seconds accumulated.
    pub fn total(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }
}

/// splitmix64 — the same construction the chaos module uses to derive
/// independent per-step randomness from one seed.
fn mix(seed: u64, step: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One tenant's synthetic arrival process: Poisson at `rate` requests
/// per tick, multiplied by `burst_factor` inside periodic burst windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantTraffic {
    /// Baseline mean arrivals per tick.
    pub rate: f64,
    /// Burst window period, ticks (0 disables bursts).
    pub burst_every: u64,
    /// Burst window length, ticks.
    pub burst_len: u64,
    /// Rate multiplier inside a burst window.
    pub burst_factor: f64,
    /// Phase offset so tenants do not burst in lockstep.
    pub phase: u64,
}

impl TenantTraffic {
    /// A steady Poisson source.
    pub fn poisson(rate: f64) -> TenantTraffic {
        TenantTraffic {
            rate,
            burst_every: 0,
            burst_len: 0,
            burst_factor: 1.0,
            phase: 0,
        }
    }

    /// A bursty Poisson source: `factor`× the rate for `len` of every
    /// `every` ticks, offset by `phase`.
    pub fn bursty(rate: f64, every: u64, len: u64, factor: f64, phase: u64) -> TenantTraffic {
        TenantTraffic {
            rate,
            burst_every: every,
            burst_len: len,
            burst_factor: factor,
            phase,
        }
    }
}

/// Deterministic multi-tenant arrival generator: same seed, same storm.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    seed: u64,
    tenants: Vec<TenantTraffic>,
}

impl TrafficModel {
    /// A model over the given per-tenant processes.
    pub fn new(seed: u64, tenants: Vec<TenantTraffic>) -> TrafficModel {
        TrafficModel { seed, tenants }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when the model drives no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Arrivals for `tenant` at `tick` — a Poisson sample (Knuth's
    /// product method, capped at 64) at the effective rate for the tick.
    pub fn arrivals(&self, tenant: usize, tick: u64) -> u32 {
        let t = self.tenants[tenant];
        let bursting =
            t.burst_every > 0 && (tick.wrapping_add(t.phase)) % t.burst_every < t.burst_len;
        let lambda = t.rate * if bursting { t.burst_factor } else { 1.0 };
        if lambda <= 0.0 {
            return 0;
        }
        let stream = self.seed ^ (tenant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let floor = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0f64;
        while k < 64 {
            p *= unit(mix(
                stream,
                tick.wrapping_mul(64).wrapping_add(u64::from(k)),
            ));
            if p <= floor {
                break;
            }
            k += 1;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants() -> TenantRegistry {
        TenantRegistry::new(vec![
            TenantSpec::new("a", 3.0).with_queue_cap(2),
            TenantSpec::new("b", 1.0).with_queue_cap(2),
        ])
    }

    #[test]
    fn offers_admit_queue_then_shed_at_the_bound() {
        let mut ctl = AdmissionController::new(two_tenants(), AdmissionConfig::default());
        assert!(matches!(ctl.offer(0), AdmissionOutcome::Admit { .. }));
        assert!(matches!(
            ctl.offer(0),
            AdmissionOutcome::Queue { pos: 1, .. }
        ));
        // Queue cap 2: the third offer sheds with the configured backoff.
        match ctl.offer(0) {
            AdmissionOutcome::Shed { retry_after } => assert_eq!(retry_after, 2.0),
            other => panic!("expected shed, got {other:?}"),
        }
        assert!(ctl.queues_bounded());
        let s = ctl.tenant_stats(0);
        assert_eq!((s.offered, s.admitted, s.queued, s.shed), (3, 1, 1, 1));
        assert_eq!(s.queue_high_water, 2);
    }

    #[test]
    fn drain_follows_weighted_fair_order() {
        let mut ctl = AdmissionController::new(two_tenants(), AdmissionConfig::default());
        ctl.offer(0);
        ctl.offer(0);
        ctl.offer(1);
        ctl.offer(1);
        // Equal debt: lowest id first; then completions steer the order.
        let first = ctl.drain(1);
        assert_eq!(first[0].0, 0);
        ctl.complete(0, 3.0); // debt/weight: a = 1.0, b = 0.0
        let second = ctl.drain(1);
        assert_eq!(second[0].0, 1);
        ctl.complete(1, 3.0); // a = 1.0, b = 3.0 -> a next
        let third = ctl.drain(2);
        assert_eq!(third[0].0, 0);
        assert_eq!(third[1].0, 1);
    }

    #[test]
    fn saturated_fair_share_tracks_weights() {
        // Weight 3:1, both tenants saturated and drain slots scarce:
        // tenant 0 should receive ~75 % of the GPU seconds, within the
        // 5 % CI bound.
        let mut ctl = AdmissionController::new(two_tenants(), AdmissionConfig::default());
        for _ in 0..400 {
            ctl.offer(0);
            ctl.offer(1);
            for (tenant, _ticket) in ctl.drain(1) {
                ctl.complete(tenant, 1.0);
            }
            ctl.advance_tick();
        }
        assert!(
            ctl.fair_share_deficit() <= 0.05,
            "deficit {} exceeds 5 %",
            ctl.fair_share_deficit()
        );
    }

    #[test]
    fn quota_exhaustion_sheds_until_the_window_resets() {
        let registry = TenantRegistry::new(vec![
            TenantSpec::new("metered", 1.0).with_quota(2.0),
            TenantSpec::new("free", 1.0),
        ]);
        let cfg = AdmissionConfig {
            quota_window: 4,
            ..AdmissionConfig::default()
        };
        let mut ctl = AdmissionController::new(registry, cfg);
        ctl.offer(0);
        ctl.drain(1);
        ctl.complete(0, 2.5); // past the 2.0 quota
        match ctl.offer(0) {
            AdmissionOutcome::Shed { retry_after } => assert!(retry_after >= 1.0),
            other => panic!("expected quota shed, got {other:?}"),
        }
        assert_eq!(ctl.tenant_stats(0).quota_denials, 1);
        for _ in 0..4 {
            ctl.advance_tick();
        }
        assert!(matches!(ctl.offer(0), AdmissionOutcome::Admit { .. }));
    }

    #[test]
    fn brownout_ladder_escalates_and_recovers_with_hysteresis() {
        let mut b = BrownoutController::new(BrownoutConfig {
            power_budget: 50.0,
            enter_margin: 1.0,
            exit_margin: 0.8,
            ewma_weight: 1.0, // no smoothing: test the streak logic alone
            streak: 2,
        });
        assert_eq!(b.observe(60.0), None); // streak 1
        assert_eq!(
            b.observe(60.0),
            Some((BrownoutLevel::Normal, BrownoutLevel::DenyGpu))
        );
        assert_eq!(b.observe(60.0), None);
        assert_eq!(
            b.observe(60.0),
            Some((BrownoutLevel::DenyGpu, BrownoutLevel::ForceCpu))
        );
        // Inside the hysteresis band (40..=50): hold and reset streaks.
        assert_eq!(b.observe(45.0), None);
        assert_eq!(b.observe(45.0), None);
        assert_eq!(b.level(), BrownoutLevel::ForceCpu);
        // Cool below 0.8 * 50 = 40 for two samples: one rung down.
        assert_eq!(b.observe(30.0), None);
        assert_eq!(
            b.observe(30.0),
            Some((BrownoutLevel::ForceCpu, BrownoutLevel::DenyGpu))
        );
        assert_eq!(b.observe(30.0), None);
        assert_eq!(
            b.observe(30.0),
            Some((BrownoutLevel::DenyGpu, BrownoutLevel::Normal))
        );
    }

    #[test]
    fn shed_load_flushes_and_refuses_low_priority_tenants() {
        let registry = TenantRegistry::new(vec![
            TenantSpec::new("batch", 1.0)
                .with_priority(0)
                .with_queue_cap(4),
            TenantSpec::new("interactive", 1.0).with_priority(2),
        ]);
        let cfg = AdmissionConfig {
            brownout: BrownoutConfig {
                power_budget: 50.0,
                enter_margin: 1.0,
                exit_margin: 0.8,
                ewma_weight: 1.0,
                streak: 1,
            },
            ..AdmissionConfig::default()
        };
        let mut ctl = AdmissionController::new(registry, cfg);
        ctl.offer(0);
        ctl.offer(0);
        // Walk the ladder to ShedLoad (one rung per hot sample).
        assert!(ctl.observe_power(90.0).is_some());
        assert!(ctl.observe_power(90.0).is_some());
        let (from, to, flushed) = ctl.observe_power(90.0).expect("third rung");
        assert_eq!(
            (from, to),
            (BrownoutLevel::ForceCpu, BrownoutLevel::ShedLoad)
        );
        assert_eq!(flushed, 2, "queued batch requests are flushed");
        assert!(matches!(ctl.offer(0), AdmissionOutcome::Shed { .. }));
        assert!(matches!(ctl.offer(1), AdmissionOutcome::Admit { .. }));
        assert_eq!(ctl.ctx_for(1).gpu, GpuPolicy::Deny);
    }

    #[test]
    fn drain_detailed_reports_exact_queue_wait() {
        let mut ctl = AdmissionController::new(two_tenants(), AdmissionConfig::default());
        ctl.offer(0); // enqueued at tick 0
        ctl.advance_tick();
        ctl.advance_tick();
        ctl.offer(0); // enqueued at tick 2
        ctl.advance_tick();
        let drained = ctl.drain_detailed(2); // at tick 3
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].waited_ticks, 3);
        assert_eq!(drained[1].waited_ticks, 1);
        assert_eq!(drained[0].tenant, 0);
        // The plain drain wrapper sees the same picks, without the detail.
        ctl.offer(1);
        assert_eq!(ctl.drain(1), vec![(1, 2)]);
    }

    #[test]
    fn ctx_reflects_level_and_deadline() {
        let registry = TenantRegistry::new(vec![TenantSpec::new("t", 1.0).with_deadline(5.0)]);
        let ctl = AdmissionController::new(registry, AdmissionConfig::default());
        let ctx = ctl.ctx_for(0);
        assert_eq!(ctx.gpu, GpuPolicy::Allow);
        assert_eq!(ctx.deadline, Some(5.0));
        assert!(!ctx.is_default());
        assert!(InvocationCtx::default().is_default());
    }

    #[test]
    fn traffic_model_is_deterministic_and_bursts_raise_the_rate() {
        let model = TrafficModel::new(42, vec![TenantTraffic::bursty(0.5, 20, 5, 8.0, 0)]);
        let a: Vec<u32> = (0..200).map(|t| model.arrivals(0, t)).collect();
        let b: Vec<u32> = (0..200).map(|t| model.arrivals(0, t)).collect();
        assert_eq!(a, b, "same seed, same storm");
        let burst: u32 = (0..200)
            .filter(|t| t % 20 < 5)
            .map(|t| model.arrivals(0, t))
            .sum();
        let calm: u32 = (0..200)
            .filter(|t| t % 20 >= 5)
            .map(|t| model.arrivals(0, t))
            .sum();
        assert!(burst > calm, "burst windows must dominate arrivals");
    }

    #[test]
    fn gpu_proxy_meter_accumulates_across_threads() {
        let meter = GpuProxyMeter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        meter.add(0.001);
                    }
                });
            }
        });
        assert!((meter.total() - 4.0).abs() < 1e-9);
        meter.add(f64::NAN); // ignored
        meter.add(-1.0); // ignored
        assert!((meter.total() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn brownout_codes_roundtrip() {
        for code in 0..4 {
            let l = BrownoutLevel::from_code(code).unwrap();
            assert_eq!(l.code(), code);
        }
        assert_eq!(BrownoutLevel::from_code(4), None);
    }
}
