//! Storage seam: a virtual filesystem trait with a passthrough and a
//! deterministic fault-injecting implementation.
//!
//! Every persistence consumer (the journal/snapshot store, the replay
//! log writer, fleet node journals) performs its disk I/O through
//! [`Vfs`] instead of calling `std::fs` directly. Production code uses
//! [`StdFs`], a zero-cost passthrough. Tests and chaos stages swap in
//! [`ChaosFs`], which injects ENOSPC, EIO, short writes, fsync failures,
//! and latency from a pure counter-based splitmix64 stream — the same
//! construction the [`chaos`](crate::chaos) module uses — so a fault
//! schedule is a function of `(seed, operation index)` alone and
//! replays identically across runs.
//!
//! The seam is deliberately narrow: exactly the operations the
//! journaled store and log writers need (create/open/append/read/
//! rename/set-len/fsync-file/fsync-dir), nothing more. Each fallible
//! operation consumes exactly one index from the chaos stream, which is
//! what makes "inject fault F at operation k" harnesses enumerable.

use crate::clock::Clock;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An open writable file behind the [`Vfs`] seam.
///
/// Mirrors the small slice of `std::fs::File` the journal uses. A
/// `sync_all` failure must be treated as poisoning the handle (see
/// DESIGN.md §16): callers reopen and rescan rather than retrying the
/// fsync on the same descriptor.
pub trait VfsFile: Send + fmt::Debug {
    /// Appends the whole buffer at the current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file data and metadata to the device (fsync).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Seeks to the end of the file, returning the offset.
    fn seek_end(&mut self) -> io::Result<u64>;
}

/// The filesystem operations the persistence layer needs.
///
/// Implementations must be `Send + Sync`: one `Vfs` is shared by a
/// store and all its callers.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates a directory and all missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Reads an entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for writing without truncating it.
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically renames `from` to `to` (the snapshot commit point).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Fsyncs the directory itself so a rename/create is durable.
    ///
    /// Returned errors are raw: callers classify "filesystem doesn't
    /// support directory fsync" separately from real failures.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Convenience: create + write a whole file (no fsync).
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut file = self.create(path)?;
        file.write_all(data)
    }
}

/// Passthrough [`Vfs`] over `std::fs` — the production implementation.
///
/// Every method is a direct delegation; the seam adds one dynamic
/// dispatch per operation on paths that were already syscalls, which
/// the `bench_decide --check` gate holds to zero measurable cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

#[derive(Debug)]
struct StdFile(File);

impl VfsFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek_end(&mut self) -> io::Result<u64> {
        self.0.seek(SeekFrom::End(0))
    }
}

impl Vfs for StdFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(File::create(path)?)))
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(
            OpenOptions::new().write(true).open(path)?,
        )))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

/// One injectable storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The device is full: the operation fails with `ENOSPC`, no bytes
    /// written.
    Enospc,
    /// A generic I/O error (`EIO`), no bytes written or read.
    Eio,
    /// A torn write: the first half of the buffer lands on disk, then
    /// the operation fails with `EIO`. Exercises sealed-line recovery.
    ShortWrite,
    /// `fsync` fails with `EIO` — the fsyncgate class. Data already
    /// written may or may not be durable; the handle is poisoned.
    FsyncFail,
    /// The operation stalls for the plan's latency before succeeding.
    Latency,
}

/// Fault rates and schedules for a [`ChaosFs`].
///
/// Rates are per-mille per operation; explicit `(op, fault)` schedule
/// entries override the random stream at exactly that operation index.
#[derive(Debug, Clone, Default)]
pub struct ChaosFsPlan {
    /// Per-mille chance a write-side op (create/append/rename/set-len)
    /// fails with `ENOSPC`.
    pub enospc_per_mille: u16,
    /// Per-mille chance an append tears: half the buffer, then `EIO`.
    pub short_write_per_mille: u16,
    /// Per-mille chance a file or directory fsync fails with `EIO`.
    pub fsync_fail_per_mille: u16,
    /// Per-mille chance a read fails with `EIO`.
    pub read_eio_per_mille: u16,
    /// Per-mille chance an operation stalls for
    /// [`latency_seconds`](ChaosFsPlan::latency_seconds) first.
    pub latency_per_mille: u16,
    /// Stall duration for latency faults, via the plan's [`Clock`].
    pub latency_seconds: f64,
    /// When set, every directory fsync reports
    /// `ErrorKind::Unsupported` — models filesystems without dir fsync.
    pub dir_sync_unsupported: bool,
    /// Exact-index injections: fault fires at precisely these operation
    /// indices, regardless of the random rates.
    pub schedule: Vec<(u64, StorageFault)>,
}

impl ChaosFsPlan {
    /// A storm profile: write-side faults at `per_mille`, torn writes
    /// and fsync failures at half that, a sprinkle of latency, and —
    /// deliberately — **no** read faults, so recovery and CLI open
    /// paths stay honest-error-free while the write path burns.
    pub fn storm(per_mille: u16) -> ChaosFsPlan {
        ChaosFsPlan {
            enospc_per_mille: per_mille,
            short_write_per_mille: per_mille / 2,
            fsync_fail_per_mille: per_mille / 2,
            read_eio_per_mille: 0,
            latency_per_mille: per_mille / 2,
            latency_seconds: 1e-4,
            dir_sync_unsupported: false,
            schedule: Vec::new(),
        }
    }

    /// A plan that injects exactly one fault, at operation `op`.
    pub fn at(op: u64, fault: StorageFault) -> ChaosFsPlan {
        ChaosFsPlan {
            schedule: vec![(op, fault)],
            ..ChaosFsPlan::default()
        }
    }

    /// Appends one more scheduled fault (builder-style, for multi-fault
    /// test scripts).
    pub fn then(mut self, op: u64, fault: StorageFault) -> ChaosFsPlan {
        self.schedule.push((op, fault));
        self
    }
}

/// Deterministic fault-injecting [`Vfs`].
///
/// Wraps [`StdFs`] and, before each real operation, consults a pure
/// splitmix64 stream of `(seed, op_index)` to decide whether to inject
/// a [`StorageFault`]. The op counter is shared across the filesystem
/// and every file it opens, so a whole store session has one totally
/// ordered, reproducible fault schedule. Latency faults sleep on the
/// provided [`Clock`] (a [`TickClock`](crate::TickClock) makes them
/// free and deterministic in simulation).
#[derive(Debug, Clone)]
pub struct ChaosFs {
    core: Arc<ChaosFsCore>,
}

#[derive(Debug)]
struct ChaosFsCore {
    seed: u64,
    plan: ChaosFsPlan,
    clock: Arc<dyn Clock>,
    ops: AtomicU64,
    injected: AtomicU64,
}

/// Stream salts: distinct sub-streams per fault class so rates are
/// independent draws at the same operation index.
const SALT_ENOSPC: u64 = 0x1;
const SALT_SHORT: u64 = 0x2;
const SALT_FSYNC: u64 = 0x3;
const SALT_READ: u64 = 0x4;
const SALT_LATENCY: u64 = 0x5;

/// splitmix64-style avalanche of `(seed, salt, step)` — identical
/// construction to [`chaos::mix`](crate::chaos), kept pure so fault
/// schedules replay byte-identically.
fn mix(seed: u64, salt: u64, step: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(step)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn enospc() -> io::Error {
    // Raw ENOSPC so `ErrorKind::StorageFull` classification works.
    io::Error::from_raw_os_error(28)
}

fn eio() -> io::Error {
    io::Error::from_raw_os_error(5)
}

impl ChaosFsCore {
    /// Draws the next operation index and decides which fault, if any,
    /// fires there. `candidates` limits which classes apply to this
    /// operation kind (reads can't tear, fsyncs can't ENOSPC).
    fn decide(&self, candidates: &[StorageFault]) -> Option<StorageFault> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if let Some(&(_, fault)) = self.plan.schedule.iter().find(|&&(at, _)| at == op) {
            if candidates.contains(&fault) || fault == StorageFault::Latency {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Some(fault);
            }
            return None;
        }
        // Latency composes with nothing else and never fails the op;
        // check error classes first so an op injects at most one fault.
        for &fault in candidates {
            let (salt, rate) = match fault {
                StorageFault::Enospc => (SALT_ENOSPC, self.plan.enospc_per_mille),
                StorageFault::ShortWrite => (SALT_SHORT, self.plan.short_write_per_mille),
                StorageFault::FsyncFail => (SALT_FSYNC, self.plan.fsync_fail_per_mille),
                StorageFault::Eio => (SALT_READ, self.plan.read_eio_per_mille),
                StorageFault::Latency => continue,
            };
            if rate > 0 && mix(self.seed, salt, op) % 1000 < u64::from(rate) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Some(fault);
            }
        }
        if self.plan.latency_per_mille > 0
            && mix(self.seed, SALT_LATENCY, op) % 1000 < u64::from(self.plan.latency_per_mille)
        {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(StorageFault::Latency);
        }
        None
    }

    fn stall(&self) {
        if self.plan.latency_seconds > 0.0 {
            self.clock.sleep(self.plan.latency_seconds);
        }
    }
}

impl ChaosFs {
    /// Creates a chaos filesystem from a derived seed (e.g.
    /// `RunSeed::derive("chaos-fs")`), a plan, and a clock for latency
    /// stalls.
    pub fn new(seed: u64, plan: ChaosFsPlan, clock: Arc<dyn Clock>) -> ChaosFs {
        ChaosFs {
            core: Arc::new(ChaosFsCore {
                seed,
                plan,
                clock,
                ops: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// Operations attempted so far (the fault-stream position).
    pub fn op_count(&self) -> u64 {
        self.core.ops.load(Ordering::Relaxed)
    }

    /// Faults injected so far (latency included).
    pub fn faults_injected(&self) -> u64 {
        self.core.injected.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct ChaosFile {
    inner: StdFile,
    core: Arc<ChaosFsCore>,
}

impl VfsFile for ChaosFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        use StorageFault::*;
        match self.core.decide(&[Enospc, ShortWrite]) {
            Some(Enospc) => Err(enospc()),
            Some(ShortWrite) => {
                // Land a torn prefix, then fail: the sealed-line scan
                // must discard it on recovery.
                let half = buf.len() / 2;
                let _ = self.inner.write_all(&buf[..half]);
                Err(eio())
            }
            Some(Latency) => {
                self.core.stall();
                self.inner.write_all(buf)
            }
            _ => self.inner.write_all(buf),
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        use StorageFault::*;
        match self.core.decide(&[FsyncFail]) {
            Some(FsyncFail) => Err(eio()),
            Some(Latency) => {
                self.core.stall();
                self.inner.sync_all()
            }
            _ => self.inner.sync_all(),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        use StorageFault::*;
        match self.core.decide(&[Eio]) {
            Some(Eio) => Err(eio()),
            Some(Latency) => {
                self.core.stall();
                self.inner.set_len(len)
            }
            _ => self.inner.set_len(len),
        }
    }

    fn seek_end(&mut self) -> io::Result<u64> {
        // Seeks are pure fd arithmetic; not a fault point.
        self.inner.seek_end()
    }
}

impl Vfs for ChaosFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Directory creation happens once per store; not a fault point.
        std::fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        use StorageFault::*;
        match self.core.decide(&[Eio]) {
            Some(Eio) => Err(eio()),
            Some(Latency) => {
                self.core.stall();
                std::fs::read(path)
            }
            _ => std::fs::read(path),
        }
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        use StorageFault::*;
        match self.core.decide(&[Enospc]) {
            Some(Enospc) => Err(enospc()),
            Some(Latency) => {
                self.core.stall();
                self.open_raw(path, true)
            }
            _ => self.open_raw(path, true),
        }
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        use StorageFault::*;
        match self.core.decide(&[Eio]) {
            Some(Eio) => Err(eio()),
            Some(Latency) => {
                self.core.stall();
                self.open_raw(path, false)
            }
            _ => self.open_raw(path, false),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        use StorageFault::*;
        match self.core.decide(&[Enospc, Eio]) {
            Some(Enospc) => Err(enospc()),
            Some(Eio) => Err(eio()),
            Some(Latency) => {
                self.core.stall();
                std::fs::rename(from, to)
            }
            _ => std::fs::rename(from, to),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        use StorageFault::*;
        if self.core.plan.dir_sync_unsupported {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "injected: directory fsync unsupported",
            ));
        }
        match self.core.decide(&[FsyncFail]) {
            Some(FsyncFail) => Err(eio()),
            Some(Latency) => {
                self.core.stall();
                StdFs.sync_dir(dir)
            }
            _ => StdFs.sync_dir(dir),
        }
    }
}

impl ChaosFs {
    fn open_raw(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn VfsFile>> {
        let file = if truncate {
            File::create(path)?
        } else {
            OpenOptions::new().write(true).open(path)?
        };
        Ok(Box::new(ChaosFile {
            inner: StdFile(file),
            core: Arc::clone(&self.core),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TickClock;
    use std::sync::atomic::AtomicU32;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!("vfs-{tag}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("mkdir");
            TempDir(dir)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn chaos(plan: ChaosFsPlan) -> ChaosFs {
        ChaosFs::new(42, plan, Arc::new(TickClock::new()))
    }

    #[test]
    fn stdfs_round_trips() {
        let dir = TempDir::new("std");
        let path = dir.path().join("f");
        let mut f = StdFs.create(&path).expect("create");
        f.write_all(b"hello").expect("write");
        f.sync_all().expect("sync");
        assert_eq!(StdFs.read(&path).expect("read"), b"hello");
        let mut f = StdFs.open_write(&path).expect("open");
        assert_eq!(f.seek_end().expect("seek"), 5);
        f.set_len(2).expect("truncate");
        assert_eq!(StdFs.read(&path).expect("read"), b"he");
    }

    #[test]
    fn scheduled_fault_fires_at_exact_op() {
        let dir = TempDir::new("sched");
        let path = dir.path().join("f");
        // Op 0 = create, op 1 = first write (faulted), op 2 = second.
        let fs = chaos(ChaosFsPlan::at(1, StorageFault::Enospc));
        let mut f = fs.create(&path).expect("create is op 0");
        let err = f.write_all(b"doomed").expect_err("op 1 injects ENOSPC");
        assert_eq!(err.raw_os_error(), Some(28));
        f.write_all(b"fine").expect("op 2 clean");
        assert_eq!(fs.op_count(), 3);
        assert_eq!(fs.faults_injected(), 1);
    }

    #[test]
    fn short_write_lands_a_torn_prefix() {
        let dir = TempDir::new("torn");
        let path = dir.path().join("f");
        let fs = chaos(ChaosFsPlan::at(1, StorageFault::ShortWrite));
        let mut f = fs.create(&path).expect("create");
        f.write_all(b"abcdefgh").expect_err("torn");
        drop(f);
        assert_eq!(StdFs.read(&path).expect("read"), b"abcd");
    }

    #[test]
    fn fault_stream_is_deterministic() {
        let draw = |seed: u64| -> Vec<bool> {
            let fs = ChaosFs::new(
                seed,
                ChaosFsPlan::storm(300),
                Arc::new(TickClock::new()) as Arc<dyn Clock>,
            );
            (0..200)
                .map(|_| fs.core.decide(&[StorageFault::Enospc]).is_some())
                .collect()
        };
        assert_eq!(draw(7), draw(7), "same seed, same schedule");
        assert_ne!(draw(7), draw(8), "different seed, different schedule");
    }

    #[test]
    fn storm_keeps_reads_honest() {
        let plan = ChaosFsPlan::storm(400);
        assert_eq!(plan.read_eio_per_mille, 0);
        let dir = TempDir::new("reads");
        let path = dir.path().join("f");
        std::fs::write(&path, b"x").expect("seed file");
        let fs = chaos(plan);
        for _ in 0..100 {
            fs.read(&path).expect("reads never fault in storm profile");
        }
    }

    #[test]
    fn dir_sync_unsupported_mode() {
        let dir = TempDir::new("dirsync");
        let fs = chaos(ChaosFsPlan {
            dir_sync_unsupported: true,
            ..ChaosFsPlan::default()
        });
        let err = fs.sync_dir(dir.path()).expect_err("unsupported");
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn latency_fault_sleeps_on_the_clock() {
        let dir = TempDir::new("lat");
        let path = dir.path().join("f");
        let clock = Arc::new(TickClock::new());
        let fs = ChaosFs::new(
            9,
            ChaosFsPlan {
                latency_per_mille: 1000,
                latency_seconds: 0.5,
                ..ChaosFsPlan::default()
            },
            clock.clone() as Arc<dyn Clock>,
        );
        let before = clock.now();
        fs.write(&path, b"slow")
            .expect("write succeeds after stall");
        assert!(clock.now() - before >= 0.5, "stall burned virtual time");
    }
}
