//! Executing invocations on the simulated machine.
//!
//! [`SimBackend`] wraps one kernel invocation on a
//! [`easched_sim::Machine`]: profiling steps and split runs become
//! machine phases, observations are read back through the energy register
//! and counters (the black-box interface), and item indices are optionally
//! executed *functionally* so workload outputs remain verifiable.
//!
//! [`SchedulerInvoker`] adapts a [`Scheduler`] to the
//! [`easched_kernels::Invoker`] interface so a workload can be
//! driven end to end; [`replay_trace`] re-runs a recorded invocation trace
//! without functional execution (the evaluation fast path).

use crate::backend::Backend;
use crate::observation::{Observation, RunMetrics};
use crate::scheduler::{KernelId, Scheduler};
use easched_kernels::{InvocationTrace, Invoker};
use easched_sim::{EnergyCounter, KernelTraits, Machine, PhasePlan};

/// One invocation's execution surface over the simulated machine.
pub struct SimBackend<'a> {
    machine: &'a mut Machine,
    traits: &'a KernelTraits,
    process: Option<&'a (dyn Fn(usize) + Sync)>,
    /// Next unprocessed item at the low end (CPU side consumes from here).
    low: u64,
    /// One past the last unprocessed item (GPU chunks come off this end).
    high: u64,
    invocation_seed: u64,
}

impl std::fmt::Debug for SimBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBackend")
            .field("low", &self.low)
            .field("high", &self.high)
            .field("traits", &self.traits)
            .finish_non_exhaustive()
    }
}

impl<'a> SimBackend<'a> {
    /// Creates a backend for an invocation of `n` items of the kernel
    /// described by `traits`. If `process` is given, every executed item
    /// index is also run functionally.
    pub fn new(
        machine: &'a mut Machine,
        traits: &'a KernelTraits,
        n: u64,
        process: Option<&'a (dyn Fn(usize) + Sync)>,
        invocation_seed: u64,
    ) -> SimBackend<'a> {
        SimBackend {
            machine,
            traits,
            process,
            low: 0,
            high: n,
            invocation_seed,
        }
    }

    fn observe<F: FnOnce(&mut Machine) -> easched_sim::PhaseReport>(
        &mut self,
        f: F,
    ) -> (easched_sim::PhaseReport, Observation) {
        let e0 = self.machine.read_energy_raw();
        let c0 = self.machine.counters();
        let report = f(self.machine);
        let e1 = self.machine.read_energy_raw();
        let c1 = self.machine.counters();
        let obs = Observation {
            elapsed: report.elapsed,
            cpu_items: report.cpu_items_done.round() as u64,
            gpu_items: report.gpu_items_done.round() as u64,
            cpu_time: report.cpu_busy,
            gpu_time: report.gpu_busy,
            energy_joules: EnergyCounter::delta_joules(e0, e1),
            counters: c1.delta(&c0),
        };
        (report, obs)
    }

    /// Functionally executes `count` items off the low end.
    fn exec_low(&mut self, count: u64) {
        if let Some(f) = self.process {
            for i in self.low..self.low + count {
                f(i as usize);
            }
        }
        self.low += count;
    }

    /// Functionally executes `count` items off the high end.
    fn exec_high(&mut self, count: u64) {
        if let Some(f) = self.process {
            for i in self.high - count..self.high {
                f(i as usize);
            }
        }
        self.high -= count;
    }
}

impl Backend for SimBackend<'_> {
    fn remaining(&self) -> u64 {
        self.high - self.low
    }

    fn gpu_profile_size(&self) -> u64 {
        self.machine.platform().gpu_profile_size()
    }

    fn profile_step(&mut self, gpu_chunk: u64) -> Observation {
        let rem = self.remaining();
        let chunk = gpu_chunk.min(rem);
        let pool = rem - chunk;
        let plan = PhasePlan::profile(pool, chunk).with_seed(self.invocation_seed);
        let traits = self.traits;
        let (report, obs) = self.observe(|m| m.run_phase(traits, &plan));
        // The GPU finished its whole chunk; the CPU drained what it could.
        let cpu_done = (report.cpu_items_done.round() as u64).min(pool);
        self.exec_high(chunk);
        self.exec_low(cpu_done);
        Observation {
            cpu_items: cpu_done,
            gpu_items: chunk,
            ..obs
        }
    }

    fn run_split(&mut self, alpha: f64) -> Observation {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        let rem = self.remaining();
        if rem == 0 {
            return Observation::default();
        }
        let gpu = (rem as f64 * alpha).round() as u64;
        let cpu = rem - gpu;
        let plan = PhasePlan {
            cpu_items: cpu as f64,
            gpu_items: gpu as f64,
            cpu_util: 1.0,
            stop_when_gpu_done: false,
            seed: self.invocation_seed,
        };
        let traits = self.traits;
        let (_report, obs) = self.observe(|m| m.run_phase(traits, &plan));
        self.exec_high(gpu);
        self.exec_low(cpu);
        Observation {
            cpu_items: cpu,
            gpu_items: gpu,
            ..obs
        }
    }
}

/// Adapts a [`Scheduler`] into an [`Invoker`] so a workload can be driven
/// against the simulated machine with functional execution.
#[derive(Debug)]
pub struct SchedulerInvoker<'a, S: Scheduler> {
    machine: &'a mut Machine,
    traits: &'a KernelTraits,
    scheduler: &'a mut S,
    kernel: KernelId,
    invocation_index: u64,
    metrics: RunMetrics,
}

impl<'a, S: Scheduler> SchedulerInvoker<'a, S> {
    /// Creates the adapter for one kernel.
    pub fn new(
        machine: &'a mut Machine,
        traits: &'a KernelTraits,
        scheduler: &'a mut S,
        kernel: KernelId,
    ) -> Self {
        SchedulerInvoker {
            machine,
            traits,
            scheduler,
            kernel,
            invocation_index: 0,
            metrics: RunMetrics::default(),
        }
    }

    /// Totals accumulated so far.
    pub fn metrics(&self) -> RunMetrics {
        self.metrics
    }
}

impl<S: Scheduler> Invoker for SchedulerInvoker<'_, S> {
    fn invoke(&mut self, n: u64, process: &(dyn Fn(usize) + Sync)) {
        self.invocation_index += 1;
        let t0 = self.machine.now();
        let e0 = self.machine.read_energy_raw();
        {
            let mut backend = SimBackend::new(
                self.machine,
                self.traits,
                n,
                Some(process),
                self.invocation_index,
            );
            self.scheduler.schedule(self.kernel, &mut backend);
            assert_eq!(
                backend.remaining(),
                0,
                "scheduler {} left items unconsumed",
                self.scheduler.name()
            );
        }
        self.metrics.time += self.machine.now() - t0;
        self.metrics.energy_joules +=
            EnergyCounter::delta_joules(e0, self.machine.read_energy_raw());
        self.metrics.invocations += 1;
        self.metrics.items += n;
    }
}

/// Runs a full workload on the machine under `scheduler`, with functional
/// execution and verification.
///
/// Returns the run totals and the workload's verification outcome.
///
/// # Examples
///
/// ```
/// use easched_kernels::suite;
/// use easched_runtime::scheduler::FixedAlpha;
/// use easched_runtime::run_workload;
/// use easched_sim::{Machine, Platform};
///
/// let mut machine = Machine::new(Platform::haswell_desktop());
/// let w = suite::blackscholes_small();
/// let (metrics, v) = run_workload(&mut machine, w.as_ref(), &mut FixedAlpha::new(0.5));
/// assert!(v.is_passed());
/// assert!(metrics.time > 0.0 && metrics.energy_joules > 0.0);
/// ```
pub fn run_workload<S: Scheduler>(
    machine: &mut Machine,
    workload: &dyn easched_kernels::Workload,
    scheduler: &mut S,
) -> (RunMetrics, easched_kernels::Verification) {
    let traits = workload.traits_for(machine.platform());
    let mut invoker = SchedulerInvoker::new(machine, &traits, scheduler, kernel_id_of(workload));
    let verification = workload.drive(&mut invoker);
    (invoker.metrics(), verification)
}

/// Replays a recorded invocation trace under `scheduler` without functional
/// execution — the evaluation fast path (see
/// [`record_trace`](easched_kernels::record_trace)).
pub fn replay_trace<S: Scheduler>(
    machine: &mut Machine,
    traits: &KernelTraits,
    kernel: KernelId,
    trace: &InvocationTrace,
    scheduler: &mut S,
) -> RunMetrics {
    let mut metrics = RunMetrics::default();
    for (idx, &n) in trace.sizes.iter().enumerate() {
        let t0 = machine.now();
        let e0 = machine.read_energy_raw();
        {
            let mut backend = SimBackend::new(machine, traits, n, None, idx as u64 + 1);
            scheduler.schedule(kernel, &mut backend);
            assert_eq!(
                backend.remaining(),
                0,
                "scheduler {} left items unconsumed",
                scheduler.name()
            );
        }
        metrics.time += machine.now() - t0;
        metrics.energy_joules += EnergyCounter::delta_joules(e0, machine.read_energy_raw());
        metrics.invocations += 1;
        metrics.items += n;
    }
    metrics
}

/// Stable kernel id for a workload (hash of its abbreviation — the analogue
/// of the paper's function-pointer key). Public so callers can look up the
/// table entry a workload's kernel learned into.
pub fn kernel_id_of(workload: &dyn easched_kernels::Workload) -> KernelId {
    workload
        .spec()
        .abbrev
        .bytes()
        .fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FixedAlpha;
    use easched_kernels::record_trace;
    use easched_kernels::suite;
    use easched_sim::{KernelTraits, Platform};

    fn quiet_machine() -> Machine {
        let mut p = Platform::haswell_desktop();
        p.pcu.measurement_noise = 0.0;
        Machine::new(p)
    }

    fn test_traits() -> KernelTraits {
        KernelTraits::builder("t")
            .cpu_rate(1.0e6)
            .gpu_rate(2.0e6)
            .build()
    }

    #[test]
    fn backend_tracks_remaining() {
        let mut m = quiet_machine();
        let t = test_traits();
        let mut b = SimBackend::new(&mut m, &t, 100_000, None, 1);
        assert_eq!(b.remaining(), 100_000);
        let obs = b.profile_step(2240);
        assert_eq!(obs.gpu_items, 2240);
        assert_eq!(b.remaining(), 100_000 - 2240 - obs.cpu_items);
        b.run_split(0.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn profile_observation_rates_in_combined_mode() {
        let mut m = quiet_machine();
        let t = test_traits();
        let mut b = SimBackend::new(&mut m, &t, 1_000_000, None, 1);
        let obs = b.profile_step(22_400);
        // Combined-mode CPU rate is below the solo rate (shared frequency).
        assert!(obs.cpu_rate() > 0.0 && obs.cpu_rate() < 1.0e6);
        assert!(obs.gpu_rate() > 0.0);
        assert!(obs.energy_joules > 0.0);
    }

    #[test]
    fn functional_execution_covers_every_index_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let mut m = quiet_machine();
        let t = test_traits();
        let hits: Vec<AtomicU32> = (0..50_000).map(|_| AtomicU32::new(0)).collect();
        let f = |i: usize| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        };
        let mut b = SimBackend::new(&mut m, &t, 50_000, Some(&f), 1);
        b.profile_step(2240);
        b.profile_step(2240);
        b.run_split(0.35);
        assert_eq!(b.remaining(), 0);
        let _ = b;
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn run_workload_verifies_under_any_alpha() {
        for alpha in [0.0, 0.4, 1.0] {
            let mut m = quiet_machine();
            let w = suite::blackscholes_small();
            let (metrics, v) = run_workload(&mut m, w.as_ref(), &mut FixedAlpha::new(alpha));
            assert!(v.is_passed(), "alpha {alpha}");
            assert!(metrics.time > 0.0);
            assert_eq!(metrics.invocations, 4);
        }
    }

    #[test]
    fn replay_matches_run_totals() {
        // Replaying the trace produces the same virtual time/energy as the
        // functional run under the same scheduler (execution structure is
        // identical; functional work is timing-free).
        let w = suite::mandelbrot_small();
        let (trace, _) = record_trace(w.as_ref());

        let mut m1 = quiet_machine();
        let (run, _) = run_workload(&mut m1, w.as_ref(), &mut FixedAlpha::new(0.6));

        let mut m2 = quiet_machine();
        let traits = w.traits_for(m2.platform());
        let rep = replay_trace(&mut m2, &traits, 42, &trace, &mut FixedAlpha::new(0.6));

        assert_eq!(run.invocations, rep.invocations);
        assert_eq!(run.items, rep.items);
        assert!(
            (run.time - rep.time).abs() < 1e-9,
            "{} vs {}",
            run.time,
            rep.time
        );
        assert!((run.energy_joules - rep.energy_joules).abs() < 1e-3);
    }

    #[test]
    fn gpu_only_split_runs_everything_on_gpu() {
        let mut m = quiet_machine();
        let t = test_traits();
        let mut b = SimBackend::new(&mut m, &t, 10_000, None, 1);
        let obs = b.run_split(1.0);
        assert_eq!(obs.gpu_items, 10_000);
        assert_eq!(obs.cpu_items, 0);
        assert_eq!(obs.cpu_time, 0.0);
    }

    #[test]
    #[should_panic(expected = "left items unconsumed")]
    fn lazy_scheduler_detected() {
        struct Lazy;
        impl Scheduler for Lazy {
            fn name(&self) -> &str {
                "lazy"
            }
            fn schedule(&mut self, _k: KernelId, _b: &mut dyn Backend) {}
        }
        let mut m = quiet_machine();
        let w = suite::blackscholes_small();
        run_workload(&mut m, w.as_ref(), &mut Lazy);
    }

    #[test]
    fn kernel_ids_stable_and_distinct() {
        let a = kernel_id_of(suite::blackscholes_small().as_ref());
        let b = kernel_id_of(suite::blackscholes_small().as_ref());
        let c = kernel_id_of(suite::mandelbrot_small().as_ref());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
