//! Measurements a scheduler can observe — the black-box interface.
//!
//! Everything here is obtainable on real hardware from wall-clock timers,
//! the `MSR_PKG_ENERGY_STATUS` register, and PCM hardware counters; nothing
//! leaks simulator internals.

use easched_sim::CounterSnapshot;

/// What a scheduler learns from one execution step (a profiling step or a
/// split run).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Observation {
    /// Elapsed time of the step, seconds (virtual or wall, by backend).
    pub elapsed: f64,
    /// Items the CPU workers completed.
    pub cpu_items: u64,
    /// Items the GPU completed.
    pub gpu_items: u64,
    /// Time the CPU spent executing, seconds.
    pub cpu_time: f64,
    /// Time the GPU spent executing, seconds.
    pub gpu_time: f64,
    /// Package energy consumed during the step, joules (from the energy
    /// register, wraparound-corrected).
    pub energy_joules: f64,
    /// Hardware-counter delta over the step (CPU side).
    pub counters: CounterSnapshot,
}

impl Observation {
    /// CPU throughput observed in this step, items/second (0 if the CPU
    /// did not run).
    pub fn cpu_rate(&self) -> f64 {
        if self.cpu_time > 0.0 && self.cpu_items > 0 {
            self.cpu_items as f64 / self.cpu_time
        } else {
            0.0
        }
    }

    /// GPU throughput observed in this step, items/second (0 if the GPU
    /// did not run).
    pub fn gpu_rate(&self) -> f64 {
        if self.gpu_time > 0.0 && self.gpu_items > 0 {
            self.gpu_items as f64 / self.gpu_time
        } else {
            0.0
        }
    }

    /// Accumulates another observation (used to total a whole invocation).
    pub fn accumulate(&mut self, other: &Observation) {
        self.elapsed += other.elapsed;
        self.cpu_items += other.cpu_items;
        self.gpu_items += other.gpu_items;
        self.cpu_time += other.cpu_time;
        self.gpu_time += other.gpu_time;
        self.energy_joules += other.energy_joules;
        self.counters.instructions += other.counters.instructions;
        self.counters.loads += other.counters.loads;
        self.counters.l3_misses += other.counters.l3_misses;
    }
}

/// Totals over a complete workload run under one scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunMetrics {
    /// End-to-end execution time, seconds.
    pub time: f64,
    /// Total package energy, joules.
    pub energy_joules: f64,
    /// Number of kernel invocations executed.
    pub invocations: u64,
    /// Total items processed.
    pub items: u64,
}

impl RunMetrics {
    /// Energy-delay product E·T, in joule-seconds.
    ///
    /// ```
    /// use easched_runtime::RunMetrics;
    /// let m = RunMetrics { time: 2.0, energy_joules: 10.0, invocations: 1, items: 1 };
    /// assert_eq!(m.edp(), 20.0);
    /// ```
    pub fn edp(&self) -> f64 {
        self.energy_joules * self.time
    }

    /// Energy-delay-squared product E·T².
    pub fn ed2p(&self) -> f64 {
        self.energy_joules * self.time * self.time
    }

    /// Average package power over the run, watts (0 for zero-time runs).
    pub fn mean_power(&self) -> f64 {
        if self.time > 0.0 {
            self.energy_joules / self.time
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_guard_zero_time() {
        let o = Observation::default();
        assert_eq!(o.cpu_rate(), 0.0);
        assert_eq!(o.gpu_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let o = Observation {
            elapsed: 2.0,
            cpu_items: 100,
            gpu_items: 300,
            cpu_time: 2.0,
            gpu_time: 1.5,
            ..Default::default()
        };
        assert_eq!(o.cpu_rate(), 50.0);
        assert_eq!(o.gpu_rate(), 200.0);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = Observation {
            elapsed: 1.0,
            cpu_items: 10,
            gpu_items: 20,
            cpu_time: 1.0,
            gpu_time: 0.5,
            energy_joules: 5.0,
            ..Default::default()
        };
        a.accumulate(&a.clone());
        assert_eq!(a.elapsed, 2.0);
        assert_eq!(a.cpu_items, 20);
        assert_eq!(a.energy_joules, 10.0);
    }

    #[test]
    fn metrics_products() {
        let m = RunMetrics {
            time: 3.0,
            energy_joules: 4.0,
            invocations: 2,
            items: 100,
        };
        assert_eq!(m.edp(), 12.0);
        assert_eq!(m.ed2p(), 36.0);
        assert!((m.mean_power() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(RunMetrics::default().mean_power(), 0.0);
    }
}
