//! Deterministic fault injection for the observation pipeline.
//!
//! Real integrated CPU-GPU systems misbehave in ways the simulator's happy
//! path never shows: `MSR_PKG_ENERGY_STATUS` drops samples or wraps
//! mid-read, PCM counters glitch, and iGPU drivers hang and time out
//! mid-offload. [`ChaosBackend`] wraps any [`Backend`] and injects those
//! faults *into the returned observations only* — execution itself (item
//! bookkeeping, functional output, virtual time) passes through untouched,
//! so a workload under chaos still completes and verifies. That mirrors the
//! real failure mode this PR hardens against: the work happens, but what
//! the scheduler *sees* is garbage.
//!
//! Faults are scripted by a [`FaultPlan`] and sequenced by a
//! [`ChaosInjector`], whose step counter persists across invocations so a
//! plan can target e.g. "steps 40..60 of the whole run". Randomized plans
//! are seeded and use a pure counter-based hash: the same seed always
//! yields the same fault sequence, independent of global RNG state.
//!
//! With [`FaultPlan::None`] the wrapper is a pure pass-through; the clean
//! path is bit-for-bit identical to running the inner backend directly.

use crate::backend::Backend;
use crate::observation::{Observation, RunMetrics};
use crate::scheduler::{KernelId, Scheduler};
use crate::sim_backend::{kernel_id_of, SimBackend};
use easched_kernels::{InvocationTrace, Invoker};
use easched_sim::{EnergyCounter, KernelTraits, Machine};

/// How long a hung GPU offload "takes" before the driver times out,
/// seconds of virtual time attributed to the observation.
pub const GPU_HANG_TIMEOUT: f64 = 10.0;

/// How long a wedged round stalls before a watchdog-scale cancel,
/// seconds of virtual time attributed to the observation. Unlike
/// [`GPU_HANG_TIMEOUT`], the driver *does* eventually return here — with
/// internally plausible data — so only a scheduler-side deadline, not
/// observation vetting, can catch it.
pub const HANG_STALL: f64 = 3600.0;

/// Energy multiplier of a [`Fault::PowerSurge`]: large enough to drag a
/// kernel's realized EDP far off its prediction, small enough to stay
/// under the observation guard's power ceiling (model max × 20).
pub const POWER_SURGE_FACTOR: f64 = 2.5;

/// One injected fault, applied to a single observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The GPU driver hangs and the offload times out: the chunk reports
    /// zero completed GPU items after [`GPU_HANG_TIMEOUT`] seconds busy.
    GpuHang,
    /// The energy register drops the sample (or reads stuck): the
    /// observation window sees zero joules.
    EnergyDropout,
    /// A spurious 32-bit register wrap: the window's energy delta is off
    /// by the full register range (2³² × 2⁻¹⁶ J ≈ 65.5 kJ).
    EnergyWrap,
    /// Performance-counter corruption: L3 misses vastly exceed retired
    /// loads, which is physically impossible (every miss is a load).
    CounterCorrupt,
    /// Timing fields come back NaN (a torn or failed read).
    NanObservation,
    /// The GPU "completes" an absurd number of items in nanoseconds — a
    /// wildly implausible throughput reading.
    ImplausibleThroughput,
    /// The round wedges: it eventually returns with internally consistent
    /// timings and counters — every rate plausible, energy proportional —
    /// but only after [`HANG_STALL`] seconds. Vetting cannot reject it;
    /// catching it is the watchdog's job (DESIGN.md §11).
    Hang,
    /// Sustained power surge (thermal or firmware misbehavior): the window
    /// burns [`POWER_SURGE_FACTOR`]× the expected energy while timings
    /// stay truthful. Each observation passes vetting, so the learned
    /// ratio's realized EDP drifts off its prediction — the drift
    /// monitor's territory, not the fault guard's.
    PowerSurge,
}

impl Fault {
    /// The six *observation-corrupting* faults in a stable order (used by
    /// randomized plans). Frozen at six deliberately: seeded
    /// [`FaultPlan::Random`] sequences index into their `kinds` list, so
    /// growing this array would silently reshuffle every existing seeded
    /// chaos scenario. The §11 faults ([`Fault::Hang`],
    /// [`Fault::PowerSurge`]) are vetting-proof by design and are scripted
    /// explicitly where a scenario wants them.
    pub const ALL: [Fault; 6] = [
        Fault::GpuHang,
        Fault::EnergyDropout,
        Fault::EnergyWrap,
        Fault::CounterCorrupt,
        Fault::NanObservation,
        Fault::ImplausibleThroughput,
    ];

    /// Corrupts `obs` the way this fault manifests on real hardware.
    fn corrupt(self, mut obs: Observation) -> Observation {
        match self {
            Fault::GpuHang => {
                obs.gpu_items = 0;
                obs.gpu_time = GPU_HANG_TIMEOUT;
                obs.elapsed = obs.elapsed.max(GPU_HANG_TIMEOUT);
            }
            Fault::EnergyDropout => {
                obs.energy_joules = 0.0;
            }
            Fault::EnergyWrap => {
                obs.energy_joules += 4_294_967_296.0 * easched_sim::energy::ENERGY_UNIT_JOULES;
            }
            Fault::CounterCorrupt => {
                obs.counters.l3_misses = obs.counters.loads.max(1.0) * 1.0e6;
            }
            Fault::NanObservation => {
                obs.elapsed = f64::NAN;
                obs.cpu_time = f64::NAN;
            }
            Fault::ImplausibleThroughput => {
                obs.gpu_items = 1 << 50;
                obs.gpu_time = 1.0e-12;
            }
            Fault::Hang => {
                // Everything stays internally consistent — the items were
                // all "completed", rates are minuscule but legal, energy
                // over the stall reads as a near-idle package — except the
                // wall clock, which busts any sane deadline.
                obs.elapsed = HANG_STALL;
                obs.cpu_time = HANG_STALL;
                if obs.gpu_items > 0 {
                    obs.gpu_time = HANG_STALL;
                }
            }
            Fault::PowerSurge => {
                obs.energy_joules *= POWER_SURGE_FACTOR;
            }
        }
        obs
    }
}

/// A script of faults over the run's observation steps.
///
/// Steps number every `profile_step`/`run_split` call made through one
/// [`ChaosInjector`], across invocations, starting at 0.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlan {
    /// No faults: the wrapper is a pure pass-through.
    None,
    /// Inject the given fault at each listed step (steps need not be
    /// sorted; duplicate steps apply the first matching entry).
    Scripted(Vec<(u64, Fault)>),
    /// Inject a fault on each step independently with probability `rate`,
    /// choosing uniformly among `kinds`. Deterministic in `seed`.
    Random {
        /// Seed for the counter-based hash; same seed, same sequence.
        seed: u64,
        /// Per-step fault probability in `[0, 1]`.
        rate: f64,
        /// Fault kinds to draw from (empty means no faults).
        kinds: Vec<Fault>,
    },
    /// A sustained GPU outage: every step in `from..until` hangs
    /// ([`Fault::GpuHang`]), modeling a crashed driver that later resets.
    GpuOutage {
        /// First faulty step.
        from: u64,
        /// One past the last faulty step.
        until: u64,
    },
    /// A sustained platform shift: every step in `from..until` burns
    /// surge power ([`Fault::PowerSurge`]), modeling a thermal event or
    /// firmware regression that invalidates learned ratios without ever
    /// producing a vettable fault — the drift monitor's target scenario.
    Drift {
        /// First surging step.
        from: u64,
        /// One past the last surging step.
        until: u64,
    },
    /// A bursty co-tenant: periodic burst windows during which steps
    /// burn surge power ([`Fault::PowerSurge`]) with high probability
    /// and occasionally hang the GPU ([`Fault::GpuHang`]), modeling a
    /// noisy neighbor hammering the shared package. This is the plan the
    /// overload-storm harness drives the brownout ladder with:
    /// PowerSurge is vetting-proof, so only the admission layer's power
    /// hysteresis (not the fault pipeline) can respond.
    BurstyTenant {
        /// Seed for the counter-based hash; same seed, same bursts.
        seed: u64,
        /// Burst window period, steps.
        period: u64,
        /// Burst window length, steps (clamped to `period`).
        burst_len: u64,
        /// Per-step fault probability inside a burst window.
        rate: f64,
    },
}

impl FaultPlan {
    fn fault_at(&self, step: u64) -> Option<Fault> {
        match self {
            FaultPlan::None => None,
            FaultPlan::Scripted(script) => script
                .iter()
                .find(|(at, _)| *at == step)
                .map(|(_, fault)| *fault),
            FaultPlan::Random { seed, rate, kinds } => {
                if kinds.is_empty() {
                    return None;
                }
                let h = mix(*seed, step);
                // Top 53 bits → uniform in [0, 1).
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                if u < *rate {
                    let pick = mix(h, 0x9e37_79b9) as usize % kinds.len();
                    Some(kinds[pick])
                } else {
                    None
                }
            }
            FaultPlan::GpuOutage { from, until } => {
                (*from..*until).contains(&step).then_some(Fault::GpuHang)
            }
            FaultPlan::Drift { from, until } => {
                (*from..*until).contains(&step).then_some(Fault::PowerSurge)
            }
            FaultPlan::BurstyTenant {
                seed,
                period,
                burst_len,
                rate,
            } => {
                if *period == 0 || step % *period >= (*burst_len).min(*period) {
                    return None;
                }
                let h = mix(*seed, step);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                if u < *rate {
                    // Mostly power (the contended resource), occasionally
                    // a hang so the fault pipeline stays exercised too.
                    if mix(h, 0x5bd1_e995).is_multiple_of(8) {
                        Some(Fault::GpuHang)
                    } else {
                        Some(Fault::PowerSurge)
                    }
                } else {
                    None
                }
            }
        }
    }
}

/// splitmix64-style avalanche of `(seed, step)` — a pure counter-based
/// stream so fault schedules are reproducible and order-independent.
fn mix(seed: u64, step: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(step)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sequences a [`FaultPlan`] over a run: owns the step counter that
/// persists across invocations and counts how many faults actually fired.
#[derive(Debug, Clone)]
pub struct ChaosInjector {
    plan: FaultPlan,
    step: u64,
    injected: u64,
}

impl ChaosInjector {
    /// Creates an injector at step 0.
    pub fn new(plan: FaultPlan) -> ChaosInjector {
        ChaosInjector {
            plan,
            step: 0,
            injected: 0,
        }
    }

    /// Wraps `inner` for one invocation; the injector's counters carry
    /// over to the next wrap.
    pub fn wrap<'a>(&'a mut self, inner: &'a mut dyn Backend) -> ChaosBackend<'a> {
        ChaosBackend {
            injector: self,
            inner,
        }
    }

    /// Observation steps sequenced so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Advances the step counter and corrupts `obs` if the plan says so.
    fn apply(&mut self, obs: Observation) -> Observation {
        let fault = self.plan.fault_at(self.step);
        self.step += 1;
        match fault {
            Some(fault) => {
                self.injected += 1;
                fault.corrupt(obs)
            }
            None => obs,
        }
    }
}

/// A [`Backend`] decorator that corrupts observations per a fault plan.
///
/// Execution is delegated unchanged — items are really consumed and
/// functional output is really produced — only the *measurements* the
/// scheduler sees are tampered with.
///
/// # Examples
///
/// ```
/// use easched_runtime::backend::test_support::FakeBackend;
/// use easched_runtime::chaos::{ChaosInjector, Fault, FaultPlan};
/// use easched_runtime::Backend;
///
/// let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(0, Fault::EnergyDropout)]));
/// let mut inner = FakeBackend::new(100_000, 1.0e6, 2.0e6);
/// let mut chaos = injector.wrap(&mut inner);
/// let bad = chaos.profile_step(2240); // step 0: faulted
/// let good = chaos.profile_step(2240); // step 1: clean
/// assert_eq!(bad.energy_joules, 0.0);
/// assert!(good.energy_joules > 0.0);
/// ```
pub struct ChaosBackend<'a> {
    injector: &'a mut ChaosInjector,
    inner: &'a mut dyn Backend,
}

impl std::fmt::Debug for ChaosBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosBackend")
            .field("injector", &self.injector)
            .finish_non_exhaustive()
    }
}

impl Backend for ChaosBackend<'_> {
    fn remaining(&self) -> u64 {
        self.inner.remaining()
    }

    fn gpu_profile_size(&self) -> u64 {
        self.inner.gpu_profile_size()
    }

    fn profile_step(&mut self, gpu_chunk: u64) -> Observation {
        let obs = self.inner.profile_step(gpu_chunk);
        self.injector.apply(obs)
    }

    fn run_split(&mut self, alpha: f64) -> Observation {
        let obs = self.inner.run_split(alpha);
        self.injector.apply(obs)
    }
}

/// Runs a full workload under `scheduler` with observations filtered
/// through `injector` — the chaos-testing analogue of
/// [`run_workload`](crate::run_workload). Functional execution and
/// verification are unaffected by the injected faults.
pub fn run_workload_chaos<S: Scheduler>(
    machine: &mut Machine,
    workload: &dyn easched_kernels::Workload,
    scheduler: &mut S,
    injector: &mut ChaosInjector,
) -> (RunMetrics, easched_kernels::Verification) {
    let traits = workload.traits_for(machine.platform());
    let mut invoker = ChaosInvoker {
        machine,
        traits: &traits,
        scheduler,
        kernel: kernel_id_of(workload),
        injector,
        invocation_index: 0,
        metrics: RunMetrics::default(),
    };
    let verification = workload.drive(&mut invoker);
    (invoker.metrics, verification)
}

/// Replays a recorded invocation trace under `scheduler` with chaos
/// injection — the chaos-testing analogue of
/// [`replay_trace`](crate::replay_trace).
pub fn replay_trace_chaos<S: Scheduler>(
    machine: &mut Machine,
    traits: &KernelTraits,
    kernel: KernelId,
    trace: &InvocationTrace,
    scheduler: &mut S,
    injector: &mut ChaosInjector,
) -> RunMetrics {
    let mut metrics = RunMetrics::default();
    for (idx, &n) in trace.sizes.iter().enumerate() {
        let t0 = machine.now();
        let e0 = machine.read_energy_raw();
        {
            let mut backend = SimBackend::new(machine, traits, n, None, idx as u64 + 1);
            let mut chaos = injector.wrap(&mut backend);
            scheduler.schedule(kernel, &mut chaos);
            assert_eq!(
                backend.remaining(),
                0,
                "scheduler {} left items unconsumed",
                scheduler.name()
            );
        }
        metrics.time += machine.now() - t0;
        metrics.energy_joules += EnergyCounter::delta_joules(e0, machine.read_energy_raw());
        metrics.invocations += 1;
        metrics.items += n;
    }
    metrics
}

struct ChaosInvoker<'a, S: Scheduler> {
    machine: &'a mut Machine,
    traits: &'a KernelTraits,
    scheduler: &'a mut S,
    kernel: KernelId,
    injector: &'a mut ChaosInjector,
    invocation_index: u64,
    metrics: RunMetrics,
}

impl<S: Scheduler> Invoker for ChaosInvoker<'_, S> {
    fn invoke(&mut self, n: u64, process: &(dyn Fn(usize) + Sync)) {
        self.invocation_index += 1;
        let t0 = self.machine.now();
        let e0 = self.machine.read_energy_raw();
        {
            let mut backend = SimBackend::new(
                self.machine,
                self.traits,
                n,
                Some(process),
                self.invocation_index,
            );
            let mut chaos = self.injector.wrap(&mut backend);
            self.scheduler.schedule(self.kernel, &mut chaos);
            assert_eq!(
                backend.remaining(),
                0,
                "scheduler {} left items unconsumed",
                self.scheduler.name()
            );
        }
        self.metrics.time += self.machine.now() - t0;
        self.metrics.energy_joules +=
            EnergyCounter::delta_joules(e0, self.machine.read_energy_raw());
        self.metrics.invocations += 1;
        self.metrics.items += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::test_support::FakeBackend;
    use crate::scheduler::FixedAlpha;
    use crate::sim_backend::run_workload;
    use easched_kernels::suite;
    use easched_sim::Platform;

    fn fake() -> FakeBackend {
        FakeBackend::new(100_000, 1.0e6, 2.0e6)
    }

    #[test]
    fn no_plan_is_a_pure_pass_through() {
        let mut plain = fake();
        let clean = plain.profile_step(2240);

        let mut injector = ChaosInjector::new(FaultPlan::None);
        let mut inner = fake();
        let mut chaos = injector.wrap(&mut inner);
        let wrapped = chaos.profile_step(2240);

        assert_eq!(clean, wrapped);
        assert_eq!(injector.injected(), 0);
        assert_eq!(injector.steps(), 1);
    }

    #[test]
    fn execution_is_never_corrupted_only_observations() {
        let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(0, Fault::GpuHang)]));
        let mut inner = fake();
        {
            let mut chaos = injector.wrap(&mut inner);
            let obs = chaos.profile_step(2240);
            // The observation lies about the GPU...
            assert_eq!(obs.gpu_items, 0);
            assert_eq!(obs.gpu_time, GPU_HANG_TIMEOUT);
        }
        // ...but the items were really consumed by the inner backend.
        assert!(inner.remaining() < 100_000);
        assert_eq!(inner.log, vec!["profile(2240)"]);
    }

    #[test]
    fn every_fault_kind_produces_its_signature() {
        for fault in Fault::ALL {
            let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(0, fault)]));
            let mut inner = fake();
            let mut chaos = injector.wrap(&mut inner);
            let obs = chaos.profile_step(2240);
            match fault {
                Fault::GpuHang => assert!(obs.gpu_items == 0 && obs.gpu_time > 0.0),
                Fault::EnergyDropout => assert_eq!(obs.energy_joules, 0.0),
                Fault::EnergyWrap => assert!(obs.energy_joules > 60_000.0),
                Fault::CounterCorrupt => assert!(obs.counters.l3_misses > obs.counters.loads),
                Fault::NanObservation => assert!(obs.elapsed.is_nan()),
                Fault::ImplausibleThroughput => assert!(obs.gpu_rate() > 1.0e20),
                Fault::Hang | Fault::PowerSurge => {
                    unreachable!("§11 faults are not in Fault::ALL")
                }
            }
            assert_eq!(injector.injected(), 1);
        }
    }

    #[test]
    fn all_stays_frozen_at_the_six_vettable_faults() {
        // Seeded Random plans index into ALL; growing it would reshuffle
        // every existing seeded scenario (see the doc on Fault::ALL).
        assert_eq!(Fault::ALL.len(), 6);
        assert!(!Fault::ALL.contains(&Fault::Hang));
        assert!(!Fault::ALL.contains(&Fault::PowerSurge));
    }

    #[test]
    fn hang_is_internally_plausible_but_stalls() {
        let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(0, Fault::Hang)]));
        let mut inner = fake();
        let mut chaos = injector.wrap(&mut inner);
        let obs = chaos.profile_step(2240);
        assert_eq!(obs.elapsed, HANG_STALL);
        // Unlike GpuHang, the chunk "completed" — rates are tiny but legal
        // and the GPU is not silent, so observation vetting passes it.
        assert!(obs.gpu_items > 0);
        assert!(obs.gpu_rate() > 0.0 && obs.gpu_rate() < 10.0);
        assert!(obs.cpu_rate() < 10.0);
        assert!(obs.energy_joules > 0.0);
    }

    #[test]
    fn power_surge_scales_energy_only() {
        let clean = fake().profile_step(2240);
        let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(0, Fault::PowerSurge)]));
        let mut inner = fake();
        let mut chaos = injector.wrap(&mut inner);
        let obs = chaos.profile_step(2240);
        assert!((obs.energy_joules - clean.energy_joules * POWER_SURGE_FACTOR).abs() < 1e-12);
        assert_eq!(obs.elapsed, clean.elapsed);
        assert_eq!(obs.gpu_items, clean.gpu_items);
    }

    #[test]
    fn drift_window_surges_exactly_its_steps() {
        let plan = FaultPlan::Drift { from: 1, until: 3 };
        let faults: Vec<_> = (0..4).map(|s| plan.fault_at(s)).collect();
        assert_eq!(
            faults,
            vec![None, Some(Fault::PowerSurge), Some(Fault::PowerSurge), None]
        );
    }

    #[test]
    fn bursty_tenant_faults_only_inside_burst_windows() {
        let plan = FaultPlan::BurstyTenant {
            seed: 7,
            period: 10,
            burst_len: 3,
            rate: 1.0,
        };
        for step in 0..100u64 {
            let fault = plan.fault_at(step);
            if step % 10 < 3 {
                assert!(
                    matches!(fault, Some(Fault::PowerSurge) | Some(Fault::GpuHang)),
                    "step {step} inside a burst must fault"
                );
            } else {
                assert_eq!(fault, None, "step {step} outside a burst is clean");
            }
        }
        // Mostly power surges: the plan exists to stress the power budget.
        let surges = (0..1000)
            .filter(|&s| plan.fault_at(s) == Some(Fault::PowerSurge))
            .count();
        let hangs = (0..1000)
            .filter(|&s| plan.fault_at(s) == Some(Fault::GpuHang))
            .count();
        assert!(surges > hangs * 3, "surges {surges} vs hangs {hangs}");
        // Deterministic in the seed.
        let seq: Vec<_> = (0..50).map(|s| plan.fault_at(s)).collect();
        assert_eq!(seq, (0..50).map(|s| plan.fault_at(s)).collect::<Vec<_>>());
    }

    #[test]
    fn random_plans_are_deterministic_in_the_seed() {
        let plan = |seed| FaultPlan::Random {
            seed,
            rate: 0.5,
            kinds: Fault::ALL.to_vec(),
        };
        let sequence = |seed| (0..64).map(|s| plan(seed).fault_at(s)).collect::<Vec<_>>();
        assert_eq!(sequence(7), sequence(7));
        assert_ne!(sequence(7), sequence(8));
        let fired = sequence(7).iter().filter(|f| f.is_some()).count();
        assert!(fired > 8 && fired < 56, "rate wildly off: {fired}/64");
    }

    #[test]
    fn step_counter_persists_across_invocations() {
        let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(1, Fault::EnergyDropout)]));
        let obs0 = {
            let mut inner = fake();
            let mut chaos = injector.wrap(&mut inner);
            chaos.run_split(0.5)
        };
        let obs1 = {
            let mut inner = fake();
            let mut chaos = injector.wrap(&mut inner);
            chaos.run_split(0.5)
        };
        assert!(obs0.energy_joules > 0.0, "step 0 is clean");
        assert_eq!(obs1.energy_joules, 0.0, "step 1 (second invocation) faults");
        assert_eq!(injector.steps(), 2);
    }

    #[test]
    fn gpu_outage_covers_exactly_its_window() {
        let plan = FaultPlan::GpuOutage { from: 2, until: 4 };
        let faults: Vec<_> = (0..6).map(|s| plan.fault_at(s)).collect();
        assert_eq!(
            faults,
            vec![
                None,
                None,
                Some(Fault::GpuHang),
                Some(Fault::GpuHang),
                None,
                None
            ]
        );
    }

    #[test]
    fn chaos_run_still_verifies_functionally() {
        let mut p = Platform::haswell_desktop();
        p.pcu.measurement_noise = 0.0;
        let mut machine = Machine::new(p.clone());
        let w = suite::blackscholes_small();
        let mut injector = ChaosInjector::new(FaultPlan::Random {
            seed: 42,
            rate: 0.5,
            kinds: Fault::ALL.to_vec(),
        });
        let (metrics, v) = run_workload_chaos(
            &mut machine,
            w.as_ref(),
            &mut FixedAlpha::new(0.5),
            &mut injector,
        );
        assert!(v.is_passed(), "faults must never corrupt outputs: {v:?}");
        assert!(metrics.items > 0 && metrics.time > 0.0);
        assert!(
            injector.injected() > 0,
            "plan at rate 0.5 should have fired"
        );
    }

    #[test]
    fn chaos_with_no_plan_matches_plain_run_exactly() {
        let quiet = || {
            let mut p = Platform::haswell_desktop();
            p.pcu.measurement_noise = 0.0;
            Machine::new(p)
        };
        let w = suite::blackscholes_small();

        let mut m1 = quiet();
        let (plain, v1) = run_workload(&mut m1, w.as_ref(), &mut FixedAlpha::new(0.4));

        let mut m2 = quiet();
        let mut injector = ChaosInjector::new(FaultPlan::None);
        let (chaos, v2) = run_workload_chaos(
            &mut m2,
            w.as_ref(),
            &mut FixedAlpha::new(0.4),
            &mut injector,
        );

        assert_eq!(plain, chaos);
        assert_eq!(v1, v2);
    }
}
