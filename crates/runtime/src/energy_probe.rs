//! Package-energy probes: the porting seam between the simulator and real
//! hardware.
//!
//! The paper reads `MSR_PKG_ENERGY_STATUS` on Windows with administrator
//! privilege. On Linux the same RAPL counters are exposed without custom
//! drivers through the *powercap* sysfs tree
//! (`/sys/class/powercap/intel-rapl:0/energy_uj`, a wrapping µJ counter with
//! its range in `max_energy_range_uj`). [`EnergyProbe`] abstracts over the
//! two; the scheduler stack only ever needs wrap-corrected joule deltas.
//!
//! * [`MachineProbe`] reads the simulated machine's energy register;
//! * [`RaplProbe`] reads a powercap zone (any directory with the two files,
//!   so it is testable with fixtures and works on real Linux hosts where
//!   the zone is readable).

use easched_sim::Machine;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A source of monotonically accumulating package energy with wraparound.
pub trait EnergyProbe {
    /// Reads the counter, in joules since an arbitrary epoch, *before* wrap
    /// correction (callers use [`EnergyProbe::delta_joules`] between two
    /// reads).
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying source.
    fn read_joules(&mut self) -> io::Result<f64>;

    /// The counter's wrap range in joules (the value at which it rolls back
    /// to zero).
    fn wrap_range_joules(&self) -> f64;

    /// Wrap-corrected energy between two reads, assuming at most one wrap.
    fn delta_joules(&self, before: f64, after: f64) -> f64 {
        if after >= before {
            after - before
        } else {
            after + self.wrap_range_joules() - before
        }
    }
}

/// Probe over the simulated machine's 32-bit energy register.
#[derive(Debug)]
pub struct MachineProbe<'a> {
    machine: &'a Machine,
}

impl<'a> MachineProbe<'a> {
    /// Creates a probe reading `machine`'s register.
    pub fn new(machine: &'a Machine) -> Self {
        MachineProbe { machine }
    }
}

impl EnergyProbe for MachineProbe<'_> {
    fn read_joules(&mut self) -> io::Result<f64> {
        Ok(f64::from(self.machine.read_energy_raw()) * self.machine.energy_unit_joules())
    }

    fn wrap_range_joules(&self) -> f64 {
        f64::from(u32::MAX) * self.machine.energy_unit_joules()
    }
}

/// Probe over a Linux powercap RAPL zone directory.
#[derive(Debug, Clone)]
pub struct RaplProbe {
    energy_path: PathBuf,
    max_range_uj: u64,
}

/// Default location of the package-0 RAPL zone on Linux.
pub const DEFAULT_RAPL_ZONE: &str = "/sys/class/powercap/intel-rapl:0";

impl RaplProbe {
    /// Opens a powercap zone directory (must contain `energy_uj` and
    /// `max_energy_range_uj`).
    ///
    /// # Errors
    ///
    /// Fails if either file is missing or unparsable.
    pub fn open(zone: impl AsRef<Path>) -> io::Result<RaplProbe> {
        let zone = zone.as_ref();
        let max_range_uj = read_u64(&zone.join("max_energy_range_uj"))?;
        if max_range_uj == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "max_energy_range_uj is zero",
            ));
        }
        let energy_path = zone.join("energy_uj");
        // Validate readability up front.
        read_u64(&energy_path)?;
        Ok(RaplProbe {
            energy_path,
            max_range_uj,
        })
    }

    /// Tries the default Linux package zone; `None` when unavailable (no
    /// RAPL, not Linux, or insufficient permission).
    pub fn discover() -> Option<RaplProbe> {
        RaplProbe::open(DEFAULT_RAPL_ZONE).ok()
    }
}

impl EnergyProbe for RaplProbe {
    fn read_joules(&mut self) -> io::Result<f64> {
        Ok(read_u64(&self.energy_path)? as f64 * 1e-6)
    }

    fn wrap_range_joules(&self) -> f64 {
        self.max_range_uj as f64 * 1e-6
    }
}

fn read_u64(path: &Path) -> io::Result<u64> {
    let text = fs::read_to_string(path)?;
    text.trim()
        .parse::<u64>()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use easched_sim::Platform;

    fn fixture_zone(energy_uj: &str, max_range: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "easched_rapl_{}_{}",
            std::process::id(),
            easched_sim::noise::splitmix64(energy_uj.len() as u64 ^ max_range.len() as u64)
        ));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("energy_uj"), energy_uj).unwrap();
        fs::write(dir.join("max_energy_range_uj"), max_range).unwrap();
        dir
    }

    #[test]
    fn machine_probe_tracks_register() {
        let mut machine = Machine::new(Platform::haswell_desktop());
        let before = MachineProbe::new(&machine).read_joules().unwrap();
        machine.idle(1.0);
        let mut probe = MachineProbe::new(&machine);
        let after = probe.read_joules().unwrap();
        let delta = probe.delta_joules(before, after);
        // ~5 W idle for 1 s.
        assert!((delta - 5.0).abs() < 0.5, "delta {delta}");
    }

    #[test]
    fn rapl_probe_parses_zone() {
        let zone = fixture_zone("12345678\n", "262143328850\n");
        let mut probe = RaplProbe::open(&zone).unwrap();
        assert!((probe.read_joules().unwrap() - 12.345678).abs() < 1e-9);
        assert!((probe.wrap_range_joules() - 262_143.328_85).abs() < 1e-3);
        fs::remove_dir_all(zone).unwrap();
    }

    #[test]
    fn rapl_probe_delta_wraps() {
        let zone = fixture_zone("100\n", "1000000\n"); // 1 J wrap range
        let probe = RaplProbe::open(&zone).unwrap();
        // 0.9 J then wrap to 0.1 J → 0.2 J consumed.
        assert!((probe.delta_joules(0.9, 0.1) - 0.2).abs() < 1e-9);
        assert!((probe.delta_joules(0.1, 0.9) - 0.8).abs() < 1e-9);
        fs::remove_dir_all(zone).unwrap();
    }

    #[test]
    fn rapl_probe_rejects_bad_zone() {
        let missing = std::env::temp_dir().join("easched_no_such_zone");
        assert!(RaplProbe::open(&missing).is_err());
        let zone = fixture_zone("not-a-number\n", "1000\n");
        assert!(RaplProbe::open(&zone).is_err());
        fs::remove_dir_all(zone).unwrap();
        let zone = fixture_zone("5\n", "0\n");
        assert!(RaplProbe::open(&zone).is_err());
        fs::remove_dir_all(zone).unwrap();
    }

    #[test]
    fn discover_never_panics() {
        // Present or not, discovery must be a clean Option.
        let _ = RaplProbe::discover();
    }
}
