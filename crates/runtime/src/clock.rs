//! The time seam: every wall-clock read in this crate goes through a
//! [`Clock`] so a run can be re-executed deterministically.
//!
//! The runtime has exactly two consumers of real time — the thread
//! backend's pacing/phase timers and the work-stealing pool's per-worker
//! busy accounting — and both used to call `Instant::now()` directly.
//! That made any wall-clock run unrepeatable: the same workload under the
//! same scheduler produced different observations (and, with telemetry
//! attached, different `decide_nanos` in every `DecisionRecord`). Routing
//! them through this trait turns time into an injected dependency:
//!
//! * [`WallClock`] — the production implementation, monotonic seconds
//!   from `Instant` with real `thread::sleep` pacing;
//! * [`TickClock`] — a deterministic counter clock: every `now()` read
//!   advances time by a fixed tick, `sleep` advances it by the requested
//!   duration. Two runs making the same sequence of clock calls read the
//!   same timestamps, which is what the record/replay layer
//!   (`easched-replay`) needs for byte-identical re-execution.
//!
//! The simulator path (`SimBackend`) has its own virtual time inside
//! `easched-sim` and does not touch this seam.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic time source, in seconds since an arbitrary per-clock epoch.
///
/// Implementations must be thread-safe: the pool hands one clock to every
/// worker thread, and backends read it concurrently with the GPU proxy.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time in seconds. Monotone non-decreasing per clock.
    fn now(&self) -> f64;

    /// Blocks (or virtually advances) for `seconds`. Implementations may
    /// return early only if `seconds` is not positive.
    fn sleep(&self, seconds: f64);
}

/// The production clock: monotonic wall time from [`Instant`], with a
/// process-wide epoch so independent `WallClock` values agree with each
/// other, and real `thread::sleep` pacing.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClock;

fn wall_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        wall_epoch().elapsed().as_secs_f64()
    }

    fn sleep(&self, seconds: f64) {
        if seconds > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(seconds));
        }
    }
}

/// A deterministic clock for record/replay and tests: time is a counter,
/// not a measurement.
///
/// Every [`now()`](Clock::now) advances time by one fixed tick before
/// returning it, so repeated reads are strictly increasing and — crucially
/// — a re-run that makes the *same sequence of clock calls* reads the
/// *same timestamps*, regardless of host load. [`sleep`](Clock::sleep)
/// advances time by the requested amount without blocking.
///
/// The default tick is 100 ns: small enough that timer-derived telemetry
/// (e.g. `DecisionRecord::decide_nanos`) stays in a plausible range, large
/// enough that every read is distinguishable.
#[derive(Debug)]
pub struct TickClock {
    /// Elapsed femtoseconds (integer, so advancing is exact and atomic).
    femtos: AtomicU64,
    /// Femtoseconds added per `now()` read.
    tick_femtos: u64,
}

/// Femtoseconds per second — the `TickClock` fixed-point scale.
const FEMTOS_PER_SEC: f64 = 1.0e15;

impl TickClock {
    /// A deterministic clock advancing 100 ns per read.
    pub fn new() -> TickClock {
        TickClock::with_tick(100.0e-9)
    }

    /// A deterministic clock advancing `tick_seconds` per read.
    ///
    /// # Panics
    ///
    /// Panics if `tick_seconds` is not positive and finite.
    pub fn with_tick(tick_seconds: f64) -> TickClock {
        assert!(
            tick_seconds.is_finite() && tick_seconds > 0.0,
            "tick must be positive"
        );
        TickClock {
            femtos: AtomicU64::new(0),
            tick_femtos: (tick_seconds * FEMTOS_PER_SEC) as u64,
        }
    }

    /// Clock reads made so far (each read is one tick).
    pub fn reads(&self) -> u64 {
        self.femtos.load(Ordering::Relaxed) / self.tick_femtos.max(1)
    }
}

impl Default for TickClock {
    fn default() -> TickClock {
        TickClock::new()
    }
}

impl Clock for TickClock {
    fn now(&self) -> f64 {
        let t = self
            .femtos
            .fetch_add(self.tick_femtos, Ordering::Relaxed)
            .wrapping_add(self.tick_femtos);
        t as f64 / FEMTOS_PER_SEC
    }

    fn sleep(&self, seconds: f64) {
        if seconds > 0.0 {
            let femtos = (seconds * FEMTOS_PER_SEC) as u64;
            self.femtos.fetch_add(femtos, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_sleeps() {
        let c = WallClock;
        let a = c.now();
        c.sleep(0.002);
        let b = c.now();
        assert!(b >= a + 0.001, "slept {b} vs {a}");
        c.sleep(-1.0); // negative sleep is a no-op, not a panic
    }

    #[test]
    fn independent_wall_clocks_share_an_epoch() {
        let a = WallClock.now();
        let b = WallClock.now();
        assert!(b >= a && b - a < 1.0);
    }

    #[test]
    fn tick_clock_is_deterministic() {
        let run = || {
            let c = TickClock::new();
            let mut reads = Vec::new();
            for _ in 0..5 {
                reads.push(c.now().to_bits());
            }
            c.sleep(1.5);
            reads.push(c.now().to_bits());
            reads
        };
        assert_eq!(run(), run(), "same call sequence, same timestamps");
    }

    #[test]
    fn tick_clock_advances_per_read_and_sleep() {
        let c = TickClock::with_tick(1.0e-6);
        let a = c.now();
        let b = c.now();
        assert!((b - a - 1.0e-6).abs() < 1.0e-12);
        c.sleep(0.5);
        let d = c.now();
        assert!(d > b + 0.5 - 1e-9);
        assert_eq!(c.reads(), 500_003);
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn tick_clock_rejects_zero_tick() {
        TickClock::with_tick(0.0);
    }
}
