//! The per-invocation execution interface a scheduling policy drives.

use crate::observation::Observation;

/// One kernel invocation's execution surface.
///
/// A scheduler receives a `Backend` holding the invocation's N parallel
/// iterations and must consume all of them through some combination of:
///
/// * [`profile_step`](Backend::profile_step) — the paper's `OnlineProfile`:
///   offload a chunk to the GPU while CPU workers drain the shared pool,
///   stopping when the GPU chunk completes;
/// * [`run_split`](Backend::run_split) — execute all remaining iterations at
///   a given GPU offload ratio α (α = 0 is CPU-alone, α = 1 GPU-alone).
///
/// Every operation returns only black-box [`Observation`]s — times, energy
/// from the package energy register, item counts, and hardware counters.
/// Backends expose no device model internals; a policy that works against
/// this trait would run unchanged on real hardware.
pub trait Backend {
    /// Iterations not yet executed.
    fn remaining(&self) -> u64;

    /// The platform's `GPU_PROFILE_SIZE`: how many items one profiling
    /// offload should contain to fill the GPU (paper §3.2 derives it from
    /// the GPU's hardware parallelism — public geometry, not a power
    /// secret).
    fn gpu_profile_size(&self) -> u64;

    /// Runs one online-profiling step: offloads `min(gpu_chunk,
    /// remaining())` items to the GPU while CPU workers concurrently drain
    /// the remaining pool; returns when the GPU chunk completes (or the pool
    /// empties).
    ///
    /// Both device throughputs in the returned observation are measured *in
    /// combined mode*, which is what the time model T(α) needs (§3.2).
    fn profile_step(&mut self, gpu_chunk: u64) -> Observation;

    /// Executes **all** remaining iterations with GPU offload ratio `alpha`:
    /// ⌈α·N_rem⌉ items on the GPU, the rest on the CPU via work-stealing,
    /// then waits for both.
    ///
    /// # Panics
    ///
    /// Implementations panic if `alpha` is outside [0, 1].
    fn run_split(&mut self, alpha: f64) -> Observation;
}

/// Deterministic fake backend for scheduler unit tests (used by this crate
/// and `easched-core`); not part of the supported API.
#[doc(hidden)]
pub mod test_support {
    #![allow(missing_docs)]

    use super::*;

    /// A deterministic fake backend for scheduler unit tests: fixed device
    /// rates, no contention, energy = power × time with constant powers.
    #[derive(Debug, Clone)]
    pub struct FakeBackend {
        pub remaining: u64,
        pub cpu_rate: f64,
        pub gpu_rate: f64,
        pub cpu_power: f64,
        pub gpu_power: f64,
        pub both_power: f64,
        pub profile_size: u64,
        pub log: Vec<String>,
    }

    impl FakeBackend {
        pub fn new(n: u64, cpu_rate: f64, gpu_rate: f64) -> FakeBackend {
            FakeBackend {
                remaining: n,
                cpu_rate,
                gpu_rate,
                cpu_power: 45.0,
                gpu_power: 30.0,
                both_power: 55.0,
                profile_size: 2240,
                log: Vec::new(),
            }
        }
    }

    impl Backend for FakeBackend {
        fn remaining(&self) -> u64 {
            self.remaining
        }

        fn gpu_profile_size(&self) -> u64 {
            self.profile_size
        }

        fn profile_step(&mut self, gpu_chunk: u64) -> Observation {
            let chunk = gpu_chunk.min(self.remaining);
            let gpu_time = chunk as f64 / self.gpu_rate;
            let pool = self.remaining - chunk;
            let cpu_items = ((self.cpu_rate * gpu_time) as u64).min(pool);
            self.remaining -= chunk + cpu_items;
            self.log.push(format!("profile({chunk})"));
            Observation {
                elapsed: gpu_time,
                cpu_items,
                gpu_items: chunk,
                cpu_time: gpu_time,
                gpu_time,
                energy_joules: self.both_power * gpu_time,
                ..Default::default()
            }
        }

        fn run_split(&mut self, alpha: f64) -> Observation {
            assert!((0.0..=1.0).contains(&alpha), "alpha out of range");
            let n = self.remaining;
            let gpu = (n as f64 * alpha).round() as u64;
            let cpu = n - gpu;
            let cpu_time = cpu as f64 / self.cpu_rate;
            let gpu_time = gpu as f64 / self.gpu_rate;
            let both = cpu_time.min(gpu_time);
            let elapsed = cpu_time.max(gpu_time);
            let tail_power = if cpu_time > gpu_time {
                self.cpu_power
            } else {
                self.gpu_power
            };
            self.remaining = 0;
            self.log.push(format!("split({alpha:.2})"));
            Observation {
                elapsed,
                cpu_items: cpu,
                gpu_items: gpu,
                cpu_time,
                gpu_time,
                energy_joules: self.both_power * both + tail_power * (elapsed - both),
                ..Default::default()
            }
        }
    }

    #[test]
    fn fake_backend_consumes_items() {
        let mut b = FakeBackend::new(10_000, 1000.0, 2000.0);
        let o = b.profile_step(2000);
        assert_eq!(o.gpu_items, 2000);
        assert!(b.remaining() < 8000);
        b.run_split(0.5);
        assert_eq!(b.remaining(), 0);
    }
}
