//! A functional [`Invoker`](easched_kernels::Invoker) backed by the
//! work-stealing pool: every kernel invocation of a workload executes with
//! real parallelism, which is how the test suite shakes out data races in
//! kernel item functions.

use crate::pool::parallel_for;
use easched_kernels::Invoker;

/// Executes each invocation's items on `workers` OS threads with work
/// stealing.
///
/// # Examples
///
/// ```
/// use easched_kernels::suite;
/// use easched_runtime::ParallelInvoker;
///
/// let w = suite::blackscholes_small();
/// let mut invoker = ParallelInvoker::new(4);
/// assert!(w.drive(&mut invoker).is_passed());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelInvoker {
    workers: usize,
}

impl ParallelInvoker {
    /// Creates an invoker running on `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> ParallelInvoker {
        assert!(workers > 0, "need at least one worker");
        ParallelInvoker { workers }
    }
}

impl Invoker for ParallelInvoker {
    fn invoke(&mut self, n: u64, process: &(dyn Fn(usize) + Sync)) {
        parallel_for(n, self.workers, process);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn executes_all_items() {
        let sum = AtomicU64::new(0);
        ParallelInvoker::new(3).invoke(1000, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499_500);
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn rejects_zero_workers() {
        ParallelInvoker::new(0);
    }
}
