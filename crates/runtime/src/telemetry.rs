//! The runtime-side telemetry hook: a transparent [`Backend`] wrapper
//! that totals what each phase of an invocation actually observed.
//!
//! The profile loop in `easched-core` wraps the real backend in an
//! [`InstrumentedBackend`] *only when a telemetry sink is attached*, so
//! the disabled path drives the backend directly with zero overhead. The
//! wrapper forwards every call unchanged — same chunks, same splits, same
//! returned observations — and merely accumulates the profiling-phase and
//! split-phase totals separately, which is exactly what a
//! `DecisionRecord`'s realized-time/energy fields and the post-hoc
//! model-drift analysis need (predictions are made for the *split*, so
//! profiling cost must not pollute the realized side of the comparison).

use crate::backend::Backend;
use crate::observation::Observation;

/// A [`Backend`] wrapper totalling per-phase observations (see [module
/// docs](self)).
pub struct InstrumentedBackend<'a> {
    inner: &'a mut dyn Backend,
    profile: Observation,
    split: Observation,
    profile_steps: u32,
    splits: u32,
}

impl std::fmt::Debug for InstrumentedBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstrumentedBackend")
            .field("profile", &self.profile)
            .field("split", &self.split)
            .field("profile_steps", &self.profile_steps)
            .field("splits", &self.splits)
            .finish_non_exhaustive()
    }
}

impl<'a> InstrumentedBackend<'a> {
    /// Wraps a backend; totals start at zero.
    pub fn new(inner: &'a mut dyn Backend) -> InstrumentedBackend<'a> {
        InstrumentedBackend {
            inner,
            profile: Observation::default(),
            split: Observation::default(),
            profile_steps: 0,
            splits: 0,
        }
    }

    /// Accumulated observations of every profiling step.
    pub fn profile_totals(&self) -> &Observation {
        &self.profile
    }

    /// Accumulated observations of every split run (normally one).
    pub fn split_totals(&self) -> &Observation {
        &self.split
    }

    /// Profiling steps forwarded.
    pub fn profile_steps(&self) -> u32 {
        self.profile_steps
    }

    /// Split runs forwarded.
    pub fn splits(&self) -> u32 {
        self.splits
    }
}

impl Backend for InstrumentedBackend<'_> {
    fn remaining(&self) -> u64 {
        self.inner.remaining()
    }

    fn gpu_profile_size(&self) -> u64 {
        self.inner.gpu_profile_size()
    }

    fn profile_step(&mut self, gpu_chunk: u64) -> Observation {
        let obs = self.inner.profile_step(gpu_chunk);
        self.profile.accumulate(&obs);
        self.profile_steps += 1;
        obs
    }

    fn run_split(&mut self, alpha: f64) -> Observation {
        let obs = self.inner.run_split(alpha);
        self.split.accumulate(&obs);
        self.splits += 1;
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::test_support::FakeBackend;

    #[test]
    fn forwards_transparently_and_totals_per_phase() {
        let mut plain = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        let mut wrapped = plain.clone();
        let (o1, o2, remaining) = {
            let mut ib = InstrumentedBackend::new(&mut wrapped);
            let o1 = ib.profile_step(2240);
            let o2 = ib.profile_step(2240);
            let split = ib.run_split(0.5);
            assert_eq!(ib.profile_steps(), 2);
            assert_eq!(ib.splits(), 1);
            let p = ib.profile_totals();
            assert_eq!(p.gpu_items, o1.gpu_items + o2.gpu_items);
            assert!((p.elapsed - (o1.elapsed + o2.elapsed)).abs() < 1e-12);
            assert_eq!(ib.split_totals().elapsed, split.elapsed);
            assert_eq!(ib.split_totals().energy_joules, split.energy_joules);
            (o1, o2, ib.remaining())
        };
        assert_eq!(remaining, 0);
        // The wrapped backend saw the identical call sequence.
        assert_eq!(plain.profile_step(2240), o1);
        assert_eq!(plain.profile_step(2240), o2);
        plain.run_split(0.5);
        assert_eq!(plain.log, wrapped.log);
    }

    #[test]
    fn fresh_wrapper_reads_zero_totals() {
        let mut b = FakeBackend::new(10, 1.0, 1.0);
        let ib = InstrumentedBackend::new(&mut b);
        assert_eq!(ib.profile_totals(), &Observation::default());
        assert_eq!(ib.split_totals(), &Observation::default());
        assert_eq!(ib.profile_steps(), 0);
        assert_eq!(ib.splits(), 0);
        assert_eq!(ib.remaining(), 10);
        assert_eq!(ib.gpu_profile_size(), 2240);
    }
}
