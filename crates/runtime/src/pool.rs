//! Work-stealing CPU `parallel_for` (paper §4: "our runtime implements
//! work-stealing on the CPU").
//!
//! Each call spawns scoped worker threads with per-worker Chase-Lev deques
//! (crossbeam). Iteration chunks are distributed round-robin; idle workers
//! steal from victims. Per-worker item counts and busy times are collected
//! locally — the "CPU workers locally collect profiling information" part of
//! the paper's adaptive profiling — and returned in a [`PoolReport`].

use crate::clock::{Clock, WallClock};
use crossbeam::deque::{Steal, Stealer, Worker};
use std::sync::atomic::{AtomicBool, Ordering};

/// Per-worker and aggregate statistics from one `parallel_for`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolReport {
    /// Items executed by each worker.
    pub items_per_worker: Vec<u64>,
    /// Busy seconds per worker.
    pub busy_per_worker: Vec<f64>,
    /// Wall-clock seconds for the whole call.
    pub elapsed: f64,
    /// Number of successful steals across workers.
    pub steals: u64,
}

impl PoolReport {
    /// Total items executed.
    pub fn total_items(&self) -> u64 {
        self.items_per_worker.iter().sum()
    }

    /// Aggregate CPU throughput: total items / wall time (0 if instant).
    pub fn throughput(&self) -> f64 {
        if self.elapsed > 0.0 {
            self.total_items() as f64 / self.elapsed
        } else {
            0.0
        }
    }
}

/// A contiguous chunk of iteration indices.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    start: u64,
    end: u64,
}

/// Executes `f(i)` for every `i < n` on `workers` threads with work
/// stealing, optionally aborting early when `stop` becomes true (used by
/// the profiling path, where CPU workers quit once the GPU chunk
/// completes). Returns per-worker statistics; when stopped early, the
/// report's `total_items` tells how far the pool got, and every index below
/// that boundary *within completed chunks* has been executed.
///
/// Chunks are `chunk` indices each (the shared-counter granularity).
///
/// # Panics
///
/// Panics if `workers` or `chunk` is zero.
pub fn parallel_for_until(
    n: u64,
    workers: usize,
    chunk: u64,
    stop: Option<&AtomicBool>,
    f: &(dyn Fn(usize) + Sync),
) -> PoolReport {
    parallel_for_until_clocked(n, workers, chunk, stop, &WallClock, f)
}

/// [`parallel_for_until`] with an explicit time source: all timing in the
/// report (wall elapsed, per-worker busy seconds) is read from `clock`
/// instead of the host's `Instant`. With a deterministic clock the report
/// is reproducible call-for-call — the seam the record/replay layer
/// depends on. `parallel_for_until` is this with [`WallClock`].
///
/// # Panics
///
/// Panics if `workers` or `chunk` is zero.
pub fn parallel_for_until_clocked(
    n: u64,
    workers: usize,
    chunk: u64,
    stop: Option<&AtomicBool>,
    clock: &dyn Clock,
    f: &(dyn Fn(usize) + Sync),
) -> PoolReport {
    run_pool(n, workers, chunk, stop, None, clock, f)
}

/// [`parallel_for_until_clocked`] with a deadline budget: workers stop
/// picking up new chunks once `clock` has advanced more than `deadline`
/// seconds past the call start. In-flight chunks finish (the pool never
/// interrupts an item), so the overrun is bounded by one chunk per
/// worker — the same granularity the stop flag has. This is the
/// substrate for per-request deadline budgets in the admission layer:
/// a request past its budget degrades to partial work instead of holding
/// a drain slot indefinitely.
///
/// # Panics
///
/// Panics if `workers` or `chunk` is zero, or `deadline` is negative.
pub fn parallel_for_deadline_clocked(
    n: u64,
    workers: usize,
    chunk: u64,
    deadline: f64,
    clock: &dyn Clock,
    f: &(dyn Fn(usize) + Sync),
) -> PoolReport {
    assert!(deadline >= 0.0, "deadline must be non-negative");
    run_pool(n, workers, chunk, None, Some(deadline), clock, f)
}

fn run_pool(
    n: u64,
    workers: usize,
    chunk: u64,
    stop: Option<&AtomicBool>,
    deadline: Option<f64>,
    clock: &dyn Clock,
    f: &(dyn Fn(usize) + Sync),
) -> PoolReport {
    assert!(workers > 0, "need at least one worker");
    assert!(chunk > 0, "chunk size must be positive");
    let start = clock.now();

    // Build one deque per worker and seed chunks round-robin.
    let locals: Vec<Worker<Chunk>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<Chunk>> = locals.iter().map(Worker::stealer).collect();
    let mut next = 0u64;
    let mut wi = 0usize;
    while next < n {
        let end = (next + chunk).min(n);
        locals[wi].push(Chunk { start: next, end });
        next = end;
        wi = (wi + 1) % workers;
    }

    let mut items = vec![0u64; workers];
    let mut busy = vec![0.0f64; workers];
    let mut steals = vec![0u64; workers];

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (id, local) in locals.into_iter().enumerate() {
            let stealers = &stealers;
            let handle = s.spawn(move || {
                let t0 = clock.now();
                let mut my_items = 0u64;
                let mut my_steals = 0u64;
                'outer: loop {
                    if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                        break;
                    }
                    if deadline.is_some_and(|d| clock.now() - start > d) {
                        break;
                    }
                    // Local work first, then steal.
                    let job = local.pop().or_else(|| {
                        for (v, st) in stealers.iter().enumerate() {
                            if v == id {
                                continue;
                            }
                            loop {
                                match st.steal() {
                                    Steal::Success(c) => {
                                        my_steals += 1;
                                        return Some(c);
                                    }
                                    Steal::Retry => continue,
                                    Steal::Empty => break,
                                }
                            }
                        }
                        None
                    });
                    let Some(c) = job else { break 'outer };
                    for i in c.start..c.end {
                        f(i as usize);
                    }
                    my_items += c.end - c.start;
                }
                (my_items, clock.now() - t0, my_steals)
            });
            handles.push(handle);
        }
        for (id, h) in handles.into_iter().enumerate() {
            let (i, b, st) = h.join().expect("worker panicked");
            items[id] = i;
            busy[id] = b;
            steals[id] = st;
        }
    });

    PoolReport {
        items_per_worker: items,
        busy_per_worker: busy,
        elapsed: clock.now() - start,
        steals: steals.iter().sum(),
    }
}

/// Executes `f(i)` for every `i < n` on `workers` threads with work
/// stealing (runs to completion).
///
/// # Panics
///
/// Panics if `workers` is zero.
///
/// # Examples
///
/// ```
/// use easched_runtime::parallel_for;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let sum = AtomicU64::new(0);
/// let report = parallel_for(1000, 4, &|i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 499_500);
/// assert_eq!(report.total_items(), 1000);
/// ```
pub fn parallel_for(n: u64, workers: usize, f: &(dyn Fn(usize) + Sync)) -> PoolReport {
    parallel_for_clocked(n, workers, &WallClock, f)
}

/// [`parallel_for`] with an explicit time source (see
/// [`parallel_for_until_clocked`]).
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn parallel_for_clocked(
    n: u64,
    workers: usize,
    clock: &dyn Clock,
    f: &(dyn Fn(usize) + Sync),
) -> PoolReport {
    assert!(workers > 0, "need at least one worker");
    let chunk = (n / (workers as u64 * 8)).clamp(1, 4096);
    parallel_for_until_clocked(n, workers, chunk, None, clock, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Instant;

    #[test]
    fn executes_every_index_once() {
        let hits: Vec<AtomicU64> = (0..10_000).map(|_| AtomicU64::new(0)).collect();
        let r = parallel_for(10_000, 4, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(r.total_items(), 10_000);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_items_ok() {
        let r = parallel_for(0, 4, &|_| panic!("no items"));
        assert_eq!(r.total_items(), 0);
    }

    #[test]
    fn single_worker_ok() {
        let count = AtomicU64::new(0);
        let r = parallel_for(100, 1, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(r.total_items(), 100);
        assert_eq!(r.items_per_worker.len(), 1);
    }

    #[test]
    fn work_distributes_across_workers() {
        // Per-item cost is time-bound (not op-bound) so the call spans many
        // scheduler timeslices even in release mode on a single-core box —
        // otherwise the first worker thread can drain every deque before
        // the other threads have been scheduled at all.
        let r = parallel_for(20_000, 4, &|_| {
            let t = Instant::now();
            while t.elapsed() < std::time::Duration::from_micros(2) {
                std::hint::spin_loop();
            }
        });
        let active = r.items_per_worker.iter().filter(|&&c| c > 0).count();
        assert!(
            active >= 2,
            "expected multiple active workers: {:?}",
            r.items_per_worker
        );
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // Make the chunks in worker 0's deque extremely slow; others must
        // steal to finish.
        let r = parallel_for_until(1_000, 4, 10, None, &|i| {
            if i < 250 {
                // Worker 0's initial share is slow.
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        });
        assert_eq!(r.total_items(), 1_000);
        assert!(r.steals > 0, "expected steals, got {:?}", r);
    }

    #[test]
    fn stop_flag_aborts_early() {
        let stop = AtomicBool::new(false);
        let count = AtomicU64::new(0);
        let r = parallel_for_until(1_000_000, 2, 64, Some(&stop), &|_| {
            if count.fetch_add(1, Ordering::Relaxed) == 1_000 {
                stop.store(true, Ordering::Relaxed);
            }
            std::hint::spin_loop();
        });
        assert!(
            r.total_items() < 1_000_000,
            "should have stopped early: {}",
            r.total_items()
        );
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_rejected() {
        parallel_for(10, 0, &|_| {});
    }

    #[test]
    fn deadline_bounds_work_without_interrupting_chunks() {
        use crate::clock::TickClock;
        // TickClock advances one tick per read; each chunk pickup reads
        // the clock once, so a zero deadline admits at most the chunks
        // already claimed before the first check fires.
        let clock = TickClock::new();
        let r = parallel_for_deadline_clocked(100_000, 1, 64, 0.0, &clock, &|_| {});
        assert!(
            r.total_items() < 100_000,
            "zero deadline must cut the run short: {}",
            r.total_items()
        );
        // A generous deadline runs to completion.
        let clock = TickClock::new();
        let r = parallel_for_deadline_clocked(1_000, 2, 64, 1e12, &clock, &|_| {});
        assert_eq!(r.total_items(), 1_000);
    }

    #[test]
    fn tick_clock_makes_reports_deterministic() {
        use crate::clock::TickClock;
        // One worker → a fixed sequence of clock reads → bit-identical
        // timing in the report, run after run.
        let run = || {
            let clock = TickClock::new();
            parallel_for_until_clocked(1_000, 1, 64, None, &clock, &|_| {})
        };
        assert_eq!(run(), run());
    }
}
