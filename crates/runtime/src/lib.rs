//! Concord-style heterogeneous runtime for `easched`.
//!
//! The paper's runtime (§4) executes `parallel_for` loops with work-stealing
//! CPU workers plus one *GPU proxy thread* that offloads chunks to the GPU,
//! profiles both devices online, and partitions the remaining iterations.
//! This crate provides that machinery:
//!
//! * [`Backend`] — the per-invocation execution interface a scheduler drives:
//!   profile steps, split execution, and the black-box observables
//!   (wall/virtual time, the package energy register, hardware counters);
//! * [`SimBackend`] — executes invocations on the simulated machine
//!   (`easched-sim`), the paper-evaluation path;
//! * [`ThreadBackend`] — executes invocations with real OS threads: a
//!   work-stealing CPU pool and a pacing GPU-proxy thread emulating the
//!   integrated GPU's throughput (wall-clock demo path);
//! * [`pool`] — the work-stealing `parallel_for` substrate (crossbeam
//!   deques);
//! * [`energy_probe`] — the porting seam for package-energy measurement:
//!   the simulated register or a real Linux RAPL powercap zone;
//! * [`SchedulerInvoker`] / [`replay_trace`] — adapters connecting
//!   [`Workload`](easched_kernels::Workload)s and recorded invocation traces
//!   to a [`Scheduler`].
//!
//! Scheduling policies themselves (EAS, PERF, fixed-α) live in
//! `easched-core`; this crate only defines the interfaces they implement:
//! [`Scheduler`] for exclusive (`&mut self`) policies, and
//! [`ConcurrentScheduler`] + the [`Shared`] adapter for policies that many
//! workload streams drive concurrently through one `Arc`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod backend;
pub mod chaos;
pub mod clock;
pub mod energy_probe;
pub mod observation;
pub mod parallel_invoker;
pub mod pool;
pub mod scheduler;
pub mod sim_backend;
pub mod telemetry;
pub mod thread_backend;
pub mod vfs;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionOutcome, BrownoutConfig, BrownoutController,
    BrownoutLevel, GpuProxyMeter, TenantRegistry, TenantSpec, TenantStats, TenantTraffic,
    TrafficModel,
};
pub use backend::Backend;
pub use chaos::{
    replay_trace_chaos, run_workload_chaos, ChaosBackend, ChaosInjector, Fault, FaultPlan,
};
pub use clock::{Clock, TickClock, WallClock};
pub use energy_probe::{EnergyProbe, MachineProbe, RaplProbe};
pub use observation::{Observation, RunMetrics};
pub use parallel_invoker::ParallelInvoker;
pub use pool::{
    parallel_for, parallel_for_clocked, parallel_for_deadline_clocked, parallel_for_until_clocked,
    PoolReport,
};
pub use scheduler::{ConcurrentScheduler, GpuPolicy, InvocationCtx, KernelId, Scheduler, Shared};
pub use sim_backend::{kernel_id_of, replay_trace, run_workload, SchedulerInvoker, SimBackend};
pub use telemetry::InstrumentedBackend;
pub use thread_backend::{ThreadBackend, ThreadBackendConfig};
pub use vfs::{ChaosFs, ChaosFsPlan, StdFs, StorageFault, Vfs, VfsFile};
