//! Property-based tests for the work-stealing pool and the sim backend's
//! item accounting.

use easched_runtime::pool::parallel_for_until;
use easched_runtime::{parallel_for, Backend, SimBackend};
use easched_sim::{KernelTraits, Machine, Platform};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every index executes exactly once, regardless of worker count and
    /// chunking.
    #[test]
    fn pool_executes_each_index_once(
        n in 0u64..5_000,
        workers in 1usize..6,
        chunk in 1u64..512,
    ) {
        let hits: Vec<AtomicU32> = (0..n as usize).map(|_| AtomicU32::new(0)).collect();
        let report = parallel_for_until(n, workers, chunk, None, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert_eq!(report.total_items(), n);
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        prop_assert_eq!(report.items_per_worker.len(), workers);
    }

    /// parallel_for matches a serial fold.
    #[test]
    fn pool_matches_serial_sum(n in 0u64..20_000, workers in 1usize..8) {
        let sum = std::sync::atomic::AtomicU64::new(0);
        parallel_for(n, workers, &|i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        prop_assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
    }

    /// Any interleaving of profile steps and a final split consumes every
    /// item exactly once on the sim backend.
    #[test]
    fn sim_backend_item_accounting(
        n in 1u64..200_000,
        chunks in prop::collection::vec(1u64..5_000, 0..5),
        alpha_step in 0usize..=10,
    ) {
        let platform = Platform::haswell_desktop();
        let traits = KernelTraits::builder("prop")
            .cpu_rate(1.0e6)
            .gpu_rate(2.0e6)
            .build();
        let hits: Vec<AtomicU32> = (0..n as usize).map(|_| AtomicU32::new(0)).collect();
        let f = |i: usize| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        };
        let mut machine = Machine::new(platform);
        let mut b = SimBackend::new(&mut machine, &traits, n, Some(&f), 7);
        let mut consumed = 0u64;
        for chunk in chunks {
            if b.remaining() == 0 {
                break;
            }
            let before = b.remaining();
            let obs = b.profile_step(chunk);
            consumed += obs.cpu_items + obs.gpu_items;
            prop_assert_eq!(before - b.remaining(), obs.cpu_items + obs.gpu_items);
        }
        if b.remaining() > 0 {
            let obs = b.run_split(alpha_step as f64 / 10.0);
            consumed += obs.cpu_items + obs.gpu_items;
        }
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(b.remaining(), 0);
        let _ = b;
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// Observations report consistent rates: items/time within the solo
    /// rate envelope (plus irregularity headroom).
    #[test]
    fn observed_rates_within_envelope(n in 10_000u64..500_000, alpha_step in 1usize..=9) {
        let platform = Platform::haswell_desktop();
        let traits = KernelTraits::builder("prop")
            .cpu_rate(1.0e6)
            .gpu_rate(3.0e6)
            .build();
        let mut machine = Machine::new(platform);
        let mut b = SimBackend::new(&mut machine, &traits, n, None, 3);
        let obs = b.run_split(alpha_step as f64 / 10.0);
        prop_assert!(obs.cpu_rate() <= 1.0e6 * 1.05, "{}", obs.cpu_rate());
        prop_assert!(obs.gpu_rate() <= 3.0e6 * 1.05, "{}", obs.gpu_rate());
    }
}
