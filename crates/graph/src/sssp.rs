//! Frontier-based single-source shortest paths (parallel Bellman-Ford).
//!
//! Each relaxation round is one data-parallel kernel invocation over the
//! vertices whose tentative distance improved in the previous round. On
//! weighted road networks this converges in a few thousand rounds with
//! fluctuating frontier sizes — Table 1's SP workload (2577 invocations).

use crate::csr::Csr;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Parallel Bellman-Ford SSSP engine.
///
/// # Examples
///
/// ```
/// use easched_graph::{gen, reference, SsspEngine};
///
/// let g = gen::road_network(12, 12, 4);
/// let mut sp = SsspEngine::new(&g, 0);
/// while !sp.is_done() {
///     for i in 0..sp.frontier_len() {
///         sp.process_item(i);
///     }
///     sp.advance();
/// }
/// assert_eq!(sp.distances(), reference::dijkstra(&g, 0));
/// ```
#[derive(Debug)]
pub struct SsspEngine<'g> {
    graph: &'g Csr,
    dist: Vec<AtomicU64>,
    frontier: Vec<u32>,
    in_next: Vec<AtomicU8>,
    next: Vec<AtomicU64>,
    next_len: AtomicUsize,
    invocations: u32,
}

impl<'g> SsspEngine<'g> {
    /// Creates an engine rooted at `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range on a non-empty graph.
    pub fn new(graph: &'g Csr, src: u32) -> Self {
        let n = graph.vertex_count() as usize;
        let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        let mut frontier = Vec::new();
        if n > 0 {
            assert!((src as usize) < n, "source out of range");
            dist[src as usize].store(0, Ordering::Relaxed);
            frontier.push(src);
        }
        SsspEngine {
            graph,
            dist,
            frontier,
            in_next: (0..n).map(|_| AtomicU8::new(0)).collect(),
            next: (0..n).map(|_| AtomicU64::new(0)).collect(),
            next_len: AtomicUsize::new(0),
            invocations: 0,
        }
    }

    /// Number of items in the current invocation.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// True when no tentative distance improved in the last round.
    pub fn is_done(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Number of kernel invocations performed so far.
    pub fn invocations(&self) -> u32 {
        self.invocations
    }

    /// Processes frontier item `i`: relaxes all outgoing edges of the `i`-th
    /// frontier vertex. Thread-safe.
    ///
    /// # Panics
    ///
    /// Panics if `i >= frontier_len()`.
    pub fn process_item(&self, i: usize) {
        let v = self.frontier[i];
        let dv = self.dist[v as usize].load(Ordering::Relaxed);
        if dv == u64::MAX {
            return;
        }
        for (u, w) in self.graph.weighted_neighbors(v) {
            let nd = dv + u64::from(w);
            let prev = self.dist[u as usize].fetch_min(nd, Ordering::Relaxed);
            if nd < prev
                && self.in_next[u as usize]
                    .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                let slot = self.next_len.fetch_add(1, Ordering::Relaxed);
                self.next[slot].store(u64::from(u), Ordering::Relaxed);
            }
        }
    }

    /// Completes the invocation, installing the next frontier.
    pub fn advance(&mut self) {
        let len = self.next_len.swap(0, Ordering::Relaxed);
        self.frontier.clear();
        self.frontier.extend(
            self.next[..len]
                .iter()
                .map(|a| a.load(Ordering::Relaxed) as u32),
        );
        for &v in &self.frontier {
            self.in_next[v as usize].store(0, Ordering::Relaxed);
        }
        self.frontier.sort_unstable();
        self.invocations += 1;
    }

    /// Tentative distances (exact shortest paths once done); `u64::MAX`
    /// marks unreachable vertices.
    pub fn distances(&self) -> Vec<u64> {
        self.dist
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, reference};

    fn drive(engine: &mut SsspEngine<'_>) {
        while !engine.is_done() {
            for i in 0..engine.frontier_len() {
                engine.process_item(i);
            }
            engine.advance();
        }
    }

    #[test]
    fn matches_dijkstra_on_random_weighted_graphs() {
        for seed in 0..5 {
            let g = gen::erdos_renyi(120, 400, seed);
            let mut e = SsspEngine::new(&g, 0);
            drive(&mut e);
            assert_eq!(e.distances(), reference::dijkstra(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn matches_dijkstra_on_road_network() {
        let g = gen::road_network(25, 25, 6);
        let mut e = SsspEngine::new(&g, 17);
        drive(&mut e);
        assert_eq!(e.distances(), reference::dijkstra(&g, 17));
    }

    #[test]
    fn revisits_vertices_unlike_bfs() {
        // A graph where the cheap path has more hops: 0->1->2 (1+1) beats
        // 0->2 (10), so vertex 2 is relaxed twice.
        let g = Csr::from_weighted_edges(3, &[(0, 2), (0, 1), (1, 2)], &[10, 1, 1]).unwrap();
        let mut e = SsspEngine::new(&g, 0);
        let mut total_items = 0;
        while !e.is_done() {
            total_items += e.frontier_len();
            for i in 0..e.frontier_len() {
                e.process_item(i);
            }
            e.advance();
        }
        assert_eq!(e.distances(), vec![0, 1, 2]);
        assert!(total_items >= 4, "vertex 2 should appear twice");
    }

    #[test]
    fn concurrent_processing_matches_serial() {
        let g = gen::rmat(8, 6, 9);
        let serial = reference::dijkstra(&g, 0);
        let mut e = SsspEngine::new(&g, 0);
        while !e.is_done() {
            let n = e.frontier_len();
            std::thread::scope(|s| {
                for c in 0..4 {
                    let eref = &e;
                    s.spawn(move || {
                        let mut i = c;
                        while i < n {
                            eref.process_item(i);
                            i += 4;
                        }
                    });
                }
            });
            e.advance();
        }
        assert_eq!(e.distances(), serial);
    }

    #[test]
    fn more_invocations_than_bfs_levels() {
        // Weighted relaxation on a road grid revisits vertices, so rounds
        // exceed the BFS level count.
        let g = gen::road_network(20, 20, 12);
        let mut sp = SsspEngine::new(&g, 0);
        drive(&mut sp);
        let bfs_levels = reference::bfs_levels(&g, 0)
            .into_iter()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap();
        assert!(
            sp.invocations() > bfs_levels,
            "sssp rounds {} vs bfs depth {bfs_levels}",
            sp.invocations()
        );
    }

    #[test]
    fn empty_graph_done() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(SsspEngine::new(&g, 0).is_done());
    }
}
