//! Graph substrate for the `easched` benchmarks.
//!
//! Three of the paper's twelve workloads — Breadth-First Search, Connected
//! Components, and Shortest Path — are frontier-based graph algorithms run on
//! the W-USA road network (6.2 M vertices). Those workloads stress the
//! scheduler in a specific way: the *same kernel* is invoked thousands of
//! times (1748 / 2147 / 2577 invocations in Table 1) with a different number
//! of parallel iterations each time, as the frontier grows and shrinks.
//!
//! This crate provides:
//!
//! * [`Csr`] — compressed sparse row graphs with optional edge weights;
//! * [`gen`] — deterministic generators, including a road-network-like
//!   generator (high diameter, low degree) substituting for the W-USA input
//!   we cannot redistribute, plus RMAT and Erdős–Rényi for contrast;
//! * frontier **engines** ([`BfsEngine`], [`CcEngine`], [`SsspEngine`]) whose
//!   per-level item processing is thread-safe, so the heterogeneous runtime
//!   can partition each invocation between "CPU" and "GPU" workers;
//! * [`mod@reference`] — serial oracle implementations used by the test suite.
//!
//! # Examples
//!
//! ```
//! use easched_graph::{gen, BfsEngine};
//!
//! let g = gen::road_network(32, 32, 7);
//! let mut bfs = BfsEngine::new(&g, 0);
//! while !bfs.is_done() {
//!     for i in 0..bfs.frontier_len() {
//!         bfs.process_item(i);
//!     }
//!     bfs.advance();
//! }
//! let dist = bfs.distances();
//! assert_eq!(dist[0], 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod cc;
pub mod csr;
pub mod delta_stepping;
pub mod gen;
pub mod reference;
pub mod sssp;
pub mod stats;

pub use bfs::BfsEngine;
pub use cc::CcEngine;
pub use csr::{Csr, CsrError};
pub use sssp::SsspEngine;
pub use stats::{graph_stats, GraphStats};
