//! Compressed sparse row graph representation.

use std::error::Error;
use std::fmt;

/// Error building a [`Csr`] graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// An edge references a vertex `>= vertex_count`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// Number of vertices in the graph.
        count: u32,
    },
    /// Weighted constructor got a weight slice of the wrong length.
    WeightLengthMismatch {
        /// Number of edges.
        edges: usize,
        /// Number of weights supplied.
        weights: usize,
    },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::VertexOutOfRange { vertex, count } => {
                write!(
                    f,
                    "edge endpoint {vertex} out of range for {count} vertices"
                )
            }
            CsrError::WeightLengthMismatch { edges, weights } => {
                write!(f, "{edges} edges but {weights} weights")
            }
        }
    }
}

impl Error for CsrError {}

/// A directed graph in compressed sparse row form, with optional `u32` edge
/// weights.
///
/// Vertex ids are `u32`. For undirected algorithms add both edge directions
/// (the [generators](crate::gen) do this).
///
/// # Examples
///
/// ```
/// use easched_graph::Csr;
///
/// let g = Csr::from_edges(3, &[(0, 1), (1, 2), (0, 2)])?;
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// # Ok::<(), easched_graph::CsrError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Option<Vec<u32>>,
}

impl Csr {
    /// Builds an unweighted graph from an edge list. Edge order within a
    /// source vertex is preserved (stable by input order).
    ///
    /// # Errors
    ///
    /// [`CsrError::VertexOutOfRange`] if any endpoint is `>= vertex_count`.
    pub fn from_edges(vertex_count: u32, edges: &[(u32, u32)]) -> Result<Csr, CsrError> {
        Self::build(vertex_count, edges, None)
    }

    /// Builds a weighted graph; `weights[i]` belongs to `edges[i]`.
    ///
    /// # Errors
    ///
    /// [`CsrError::WeightLengthMismatch`] if lengths differ, or
    /// [`CsrError::VertexOutOfRange`] for bad endpoints.
    ///
    /// ```
    /// use easched_graph::Csr;
    /// let g = Csr::from_weighted_edges(2, &[(0, 1)], &[7])?;
    /// assert_eq!(g.weighted_neighbors(0).next(), Some((1, 7)));
    /// # Ok::<(), easched_graph::CsrError>(())
    /// ```
    pub fn from_weighted_edges(
        vertex_count: u32,
        edges: &[(u32, u32)],
        weights: &[u32],
    ) -> Result<Csr, CsrError> {
        if edges.len() != weights.len() {
            return Err(CsrError::WeightLengthMismatch {
                edges: edges.len(),
                weights: weights.len(),
            });
        }
        Self::build(vertex_count, edges, Some(weights))
    }

    fn build(
        vertex_count: u32,
        edges: &[(u32, u32)],
        weights: Option<&[u32]>,
    ) -> Result<Csr, CsrError> {
        let n = vertex_count as usize;
        for &(s, t) in edges {
            for v in [s, t] {
                if v >= vertex_count {
                    return Err(CsrError::VertexOutOfRange {
                        vertex: v,
                        count: vertex_count,
                    });
                }
            }
        }
        let mut degree = vec![0usize; n];
        for &(s, _) in edges {
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut targets = vec![0u32; edges.len()];
        let mut wout = weights.map(|_| vec![0u32; edges.len()]);
        let mut cursor = offsets[..n].to_vec();
        for (i, &(s, t)) in edges.iter().enumerate() {
            let pos = cursor[s as usize];
            targets[pos] = t;
            if let (Some(w), Some(ws)) = (wout.as_mut(), weights) {
                w[pos] = ws[i];
            }
            cursor[s as usize] += 1;
        }
        Ok(Csr {
            offsets,
            targets,
            weights: wout,
        })
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Whether the graph carries edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= vertex_count()`.
    pub fn degree(&self, v: u32) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbor slice of `v` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= vertex_count()`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterator of `(neighbor, weight)` pairs of `v`. Unweighted graphs
    /// report weight 1 for every edge.
    ///
    /// # Panics
    ///
    /// Panics if `v >= vertex_count()`.
    pub fn weighted_neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let vi = v as usize;
        let range = self.offsets[vi]..self.offsets[vi + 1];
        let weights = self.weights.as_deref();
        range.map(move |e| (self.targets[e], weights.map_or(1, |w| w[e])))
    }

    /// Maximum out-degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Mean out-degree (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        let n = self.vertex_count();
        if n == 0 {
            0.0
        } else {
            self.edge_count() as f64 / n as f64
        }
    }

    /// Approximate memory footprint in bytes (offsets + targets + weights),
    /// used to size working sets for the simulator's cache model.
    pub fn byte_size(&self) -> u64 {
        let w = self.weights.as_ref().map_or(0, |w| w.len() * 4);
        (self.offsets.len() * 8 + self.targets.len() * 4 + w) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = Csr::from_edges(5, &[(0, 4)]).unwrap();
        assert_eq!(g.degree(2), 0);
        assert!(g.neighbors(2).is_empty());
        assert_eq!(g.neighbors(0), &[4]);
    }

    #[test]
    fn adjacency_preserves_input_order() {
        let g = Csr::from_edges(4, &[(1, 3), (0, 2), (1, 0), (1, 2)]).unwrap();
        assert_eq!(g.neighbors(1), &[3, 0, 2]);
        assert_eq!(g.neighbors(0), &[2]);
    }

    #[test]
    fn weights_follow_their_edges() {
        let g = Csr::from_weighted_edges(3, &[(2, 0), (0, 1), (2, 1)], &[10, 20, 30]).unwrap();
        let w2: Vec<(u32, u32)> = g.weighted_neighbors(2).collect();
        assert_eq!(w2, vec![(0, 10), (1, 30)]);
        assert!(g.is_weighted());
    }

    #[test]
    fn unweighted_reports_weight_one() {
        let g = Csr::from_edges(2, &[(0, 1)]).unwrap();
        assert_eq!(g.weighted_neighbors(0).next(), Some((1, 1)));
        assert!(!g.is_weighted());
    }

    #[test]
    fn out_of_range_source_and_target_rejected() {
        assert_eq!(
            Csr::from_edges(2, &[(2, 0)]),
            Err(CsrError::VertexOutOfRange {
                vertex: 2,
                count: 2
            })
        );
        assert_eq!(
            Csr::from_edges(2, &[(0, 5)]),
            Err(CsrError::VertexOutOfRange {
                vertex: 5,
                count: 2
            })
        );
    }

    #[test]
    fn weight_length_mismatch_rejected() {
        let err = Csr::from_weighted_edges(2, &[(0, 1)], &[1, 2]).unwrap_err();
        assert_eq!(
            err,
            CsrError::WeightLengthMismatch {
                edges: 1,
                weights: 2
            }
        );
        assert!(err.to_string().contains("1 edges"));
    }

    #[test]
    fn degree_stats() {
        let g = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        assert_eq!(g.max_degree(), 2);
        assert!((g.mean_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_and_parallel_edges_kept() {
        let g = Csr::from_edges(2, &[(0, 0), (0, 1), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(0), &[0, 1, 1]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn byte_size_positive() {
        let g = Csr::from_weighted_edges(2, &[(0, 1)], &[1]).unwrap();
        assert!(g.byte_size() > 0);
    }
}
