//! Frontier-based connected components by parallel label propagation.
//!
//! Each round is one data-parallel kernel invocation over the vertices whose
//! label changed in the previous round (the *active set*). Labels converge
//! to the minimum vertex id in each component. On road networks convergence
//! takes thousands of rounds with highly variable active-set sizes — the
//! irregularity that trips up EAS's online profiling for CC in the paper
//! (§5, desktop EDP discussion).

use crate::csr::Csr;
use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};

/// Parallel label-propagation connected-components engine.
///
/// # Examples
///
/// ```
/// use easched_graph::{gen, CcEngine, reference};
///
/// let g = gen::road_network(16, 16, 1);
/// let mut cc = CcEngine::new(&g);
/// while !cc.is_done() {
///     for i in 0..cc.active_len() {
///         cc.process_item(i);
///     }
///     cc.advance();
/// }
/// assert_eq!(cc.labels(), reference::components(&g));
/// ```
#[derive(Debug)]
pub struct CcEngine<'g> {
    graph: &'g Csr,
    labels: Vec<AtomicU32>,
    active: Vec<u32>,
    /// Labels of the active vertices as of the start of the round, so
    /// propagation is synchronous (round count independent of worker
    /// interleaving and processing order).
    active_labels: Vec<u32>,
    /// 0/1 membership flags for the next active set (dedup).
    in_next: Vec<AtomicU8>,
    next: Vec<AtomicU32>,
    next_len: AtomicUsize,
    invocations: u32,
}

impl<'g> CcEngine<'g> {
    /// Creates an engine over `graph`; every vertex starts active with its
    /// own id as label.
    pub fn new(graph: &'g Csr) -> Self {
        let n = graph.vertex_count() as usize;
        CcEngine {
            graph,
            labels: (0..n as u32).map(AtomicU32::new).collect(),
            active: (0..n as u32).collect(),
            active_labels: (0..n as u32).collect(),
            in_next: (0..n).map(|_| AtomicU8::new(0)).collect(),
            next: (0..n).map(|_| AtomicU32::new(0)).collect(),
            next_len: AtomicUsize::new(0),
            invocations: 0,
        }
    }

    /// Number of items in the current invocation (active vertices).
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// True when labels have converged.
    pub fn is_done(&self) -> bool {
        self.active.is_empty()
    }

    /// Number of kernel invocations performed so far.
    pub fn invocations(&self) -> u32 {
        self.invocations
    }

    /// Processes active item `i`: pushes the vertex's label to all neighbors
    /// with larger labels, scheduling improved neighbors for the next round.
    /// Thread-safe.
    ///
    /// # Panics
    ///
    /// Panics if `i >= active_len()`.
    pub fn process_item(&self, i: usize) {
        let v = self.active[i];
        let my = self.active_labels[i];
        for &u in self.graph.neighbors(v) {
            let prev = self.labels[u as usize].fetch_min(my, Ordering::Relaxed);
            if my < prev {
                // u improved; make sure it is in the next active set once.
                if self.in_next[u as usize]
                    .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    let slot = self.next_len.fetch_add(1, Ordering::Relaxed);
                    self.next[slot].store(u, Ordering::Relaxed);
                }
            }
        }
    }

    /// Completes the invocation: installs the (sorted, deduplicated) next
    /// active set.
    pub fn advance(&mut self) {
        let len = self.next_len.swap(0, Ordering::Relaxed);
        self.active.clear();
        self.active
            .extend(self.next[..len].iter().map(|a| a.load(Ordering::Relaxed)));
        for &v in &self.active {
            self.in_next[v as usize].store(0, Ordering::Relaxed);
        }
        self.active.sort_unstable();
        self.active_labels.clear();
        self.active_labels.extend(
            self.active
                .iter()
                .map(|&v| self.labels[v as usize].load(Ordering::Relaxed)),
        );
        self.invocations += 1;
    }

    /// Current labels (converged once [`is_done`](Self::is_done)).
    pub fn labels(&self) -> Vec<u32> {
        self.labels
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, reference};

    fn drive(engine: &mut CcEngine<'_>) {
        while !engine.is_done() {
            for i in 0..engine.active_len() {
                engine.process_item(i);
            }
            engine.advance();
        }
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::erdos_renyi(150, 200, seed);
            let mut e = CcEngine::new(&g);
            drive(&mut e);
            assert_eq!(e.labels(), reference::components(&g), "seed {seed}");
        }
    }

    #[test]
    fn disjoint_components_keep_separate_labels() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        let mut e = CcEngine::new(&g);
        drive(&mut e);
        assert_eq!(e.labels(), vec![0, 0, 2, 2, 4]);
    }

    #[test]
    fn path_takes_many_rounds() {
        // Label 0 must walk the whole path: rounds scale with length.
        let g = gen::path(64);
        let mut e = CcEngine::new(&g);
        drive(&mut e);
        assert!(e.invocations() >= 32, "got {}", e.invocations());
        assert!(e.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn active_set_shrinks_over_time() {
        let g = gen::road_network(20, 20, 5);
        let mut e = CcEngine::new(&g);
        let first = e.active_len();
        let mut last = first;
        while !e.is_done() {
            last = e.active_len();
            for i in 0..e.active_len() {
                e.process_item(i);
            }
            e.advance();
        }
        assert!(last < first, "active set should shrink: {first} -> {last}");
    }

    #[test]
    fn concurrent_processing_matches_serial() {
        let g = gen::rmat(8, 8, 3);
        let serial = reference::components(&g);
        let mut e = CcEngine::new(&g);
        while !e.is_done() {
            let n = e.active_len();
            std::thread::scope(|s| {
                for c in 0..4 {
                    let eref = &e;
                    s.spawn(move || {
                        let mut i = c;
                        while i < n {
                            eref.process_item(i);
                            i += 4;
                        }
                    });
                }
            });
            e.advance();
        }
        assert_eq!(e.labels(), serial);
    }

    #[test]
    fn empty_graph_done_immediately() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(CcEngine::new(&g).is_done());
    }
}
