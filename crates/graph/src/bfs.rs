//! Frontier-based breadth-first search with thread-safe item processing.
//!
//! Each BFS *level* is one data-parallel kernel invocation whose items are
//! the current frontier's vertices — the structure that gives the paper's BFS
//! workload its 1748 invocations with wildly varying N. `process_item` may be
//! called concurrently from many workers; `advance` is called once per level
//! by the driver.

use crate::csr::Csr;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Level-synchronous parallel BFS engine borrowing a graph.
///
/// # Examples
///
/// ```
/// use easched_graph::{gen, BfsEngine, reference};
///
/// let g = gen::erdos_renyi(64, 200, 3);
/// let mut bfs = BfsEngine::new(&g, 0);
/// while !bfs.is_done() {
///     for i in 0..bfs.frontier_len() {
///         bfs.process_item(i); // safe to call from many threads
///     }
///     bfs.advance();
/// }
/// assert_eq!(bfs.distances(), reference::bfs_levels(&g, 0));
/// ```
#[derive(Debug)]
pub struct BfsEngine<'g> {
    graph: &'g Csr,
    dist: Vec<AtomicU32>,
    frontier: Vec<u32>,
    next: Vec<AtomicU32>,
    next_len: AtomicUsize,
    level: u32,
    invocations: u32,
}

impl<'g> BfsEngine<'g> {
    /// Creates an engine rooted at `src`. The first frontier is `[src]`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range on a non-empty graph.
    pub fn new(graph: &'g Csr, src: u32) -> Self {
        let n = graph.vertex_count() as usize;
        let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
        let next: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let mut frontier = Vec::new();
        if n > 0 {
            assert!((src as usize) < n, "source out of range");
            dist[src as usize].store(0, Ordering::Relaxed);
            frontier.push(src);
        }
        BfsEngine {
            graph,
            dist,
            frontier,
            next,
            next_len: AtomicUsize::new(0),
            level: 0,
            invocations: 0,
        }
    }

    /// Number of items (frontier vertices) in the current invocation.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// True when the search has exhausted all frontiers.
    pub fn is_done(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Current BFS level (0-based).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Number of kernel invocations performed so far (levels advanced).
    pub fn invocations(&self) -> u32 {
        self.invocations
    }

    /// Processes frontier item `i`: relaxes all edges of the `i`-th frontier
    /// vertex, claiming unvisited neighbors for the next level. Thread-safe.
    ///
    /// # Panics
    ///
    /// Panics if `i >= frontier_len()`.
    pub fn process_item(&self, i: usize) {
        let v = self.frontier[i];
        let next_dist = self.level + 1;
        for &u in self.graph.neighbors(v) {
            if self.dist[u as usize]
                .compare_exchange(u32::MAX, next_dist, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                let slot = self.next_len.fetch_add(1, Ordering::Relaxed);
                self.next[slot].store(u, Ordering::Relaxed);
            }
        }
    }

    /// Completes the current invocation: swaps in the next frontier (sorted
    /// for determinism regardless of worker interleaving) and bumps the
    /// level.
    pub fn advance(&mut self) {
        let len = self.next_len.swap(0, Ordering::Relaxed);
        self.frontier.clear();
        self.frontier
            .extend(self.next[..len].iter().map(|a| a.load(Ordering::Relaxed)));
        self.frontier.sort_unstable();
        self.level += 1;
        self.invocations += 1;
    }

    /// Final distances; `u32::MAX` marks unreachable vertices. Call after
    /// [`is_done`](Self::is_done) returns true (calling earlier yields the
    /// partial state).
    pub fn distances(&self) -> Vec<u32> {
        self.dist
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, reference};

    fn drive(engine: &mut BfsEngine<'_>) {
        while !engine.is_done() {
            for i in 0..engine.frontier_len() {
                engine.process_item(i);
            }
            engine.advance();
        }
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::erdos_renyi(200, 500, seed);
            let mut e = BfsEngine::new(&g, 0);
            drive(&mut e);
            assert_eq!(e.distances(), reference::bfs_levels(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn matches_reference_on_road_network() {
        let g = gen::road_network(30, 30, 2);
        let mut e = BfsEngine::new(&g, 5);
        drive(&mut e);
        assert_eq!(e.distances(), reference::bfs_levels(&g, 5));
    }

    #[test]
    fn invocation_count_equals_levels() {
        let g = gen::path(10);
        let mut e = BfsEngine::new(&g, 0);
        drive(&mut e);
        // Path of 10: frontiers are 9 singleton levels after the root, plus
        // the final empty-producing one.
        assert_eq!(e.invocations(), 10);
    }

    #[test]
    fn frontier_sizes_vary_on_road_network() {
        let g = gen::road_network(40, 40, 8);
        let mut e = BfsEngine::new(&g, 0);
        let mut sizes = Vec::new();
        while !e.is_done() {
            sizes.push(e.frontier_len());
            for i in 0..e.frontier_len() {
                e.process_item(i);
            }
            e.advance();
        }
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max > 10 * min.max(1), "frontiers should vary: {min}..{max}");
    }

    #[test]
    fn concurrent_processing_matches_serial() {
        let g = gen::rmat(9, 8, 6);
        let serial = reference::bfs_levels(&g, 0);
        let mut e = BfsEngine::new(&g, 0);
        while !e.is_done() {
            let n = e.frontier_len();
            std::thread::scope(|s| {
                let chunks = 4;
                for c in 0..chunks {
                    let eref = &e;
                    s.spawn(move || {
                        let mut i = c;
                        while i < n {
                            eref.process_item(i);
                            i += chunks;
                        }
                    });
                }
            });
            e.advance();
        }
        assert_eq!(e.distances(), serial);
    }

    #[test]
    fn empty_graph_immediately_done() {
        let g = Csr::from_edges(0, &[]).unwrap();
        let e = BfsEngine::new(&g, 0);
        assert!(e.is_done());
        assert!(e.distances().is_empty());
    }

    #[test]
    fn single_vertex() {
        let g = Csr::from_edges(1, &[]).unwrap();
        let mut e = BfsEngine::new(&g, 0);
        drive(&mut e);
        assert_eq!(e.distances(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_rejected() {
        let g = gen::path(3);
        BfsEngine::new(&g, 10);
    }
}
