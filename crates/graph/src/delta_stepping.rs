//! Delta-stepping single-source shortest paths (Meyer & Sanders).
//!
//! The bucket-based middle ground between Dijkstra (work-efficient, serial)
//! and Bellman-Ford (parallel, work-redundant). The frontier engines in
//! [`sssp`](crate::sssp) mirror the paper's data-parallel kernel; this module
//! provides the classic alternative used as a faster serial reference and
//! for the graph-analytics example.

use crate::csr::Csr;

/// Computes shortest-path distances from `src` with bucket width `delta`;
/// unreachable vertices get `u64::MAX`.
///
/// `delta` trades bucket count against re-relaxation: 1 degenerates to
/// Dijkstra-like behaviour, very large values to Bellman-Ford. A good
/// default is the mean edge weight.
///
/// # Panics
///
/// Panics if `delta` is zero, or if `src` is out of range on a non-empty
/// graph.
///
/// # Examples
///
/// ```
/// use easched_graph::{delta_stepping::delta_stepping, gen, reference};
///
/// let g = gen::road_network(20, 20, 3);
/// assert_eq!(delta_stepping(&g, 0, 50), reference::dijkstra(&g, 0));
/// ```
pub fn delta_stepping(g: &Csr, src: u32, delta: u64) -> Vec<u64> {
    assert!(delta > 0, "delta must be positive");
    let n = g.vertex_count() as usize;
    let mut dist = vec![u64::MAX; n];
    if n == 0 {
        return dist;
    }
    assert!((src as usize) < n, "source out of range");

    // Buckets keyed by dist / delta; lazily grown ring of vectors.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new()];
    dist[src as usize] = 0;
    buckets[0].push(src);
    let mut current = 0usize;

    let relax = |dist: &mut Vec<u64>, buckets: &mut Vec<Vec<u32>>, v: u32, nd: u64| {
        if nd < dist[v as usize] {
            dist[v as usize] = nd;
            let b = (nd / delta) as usize;
            if b >= buckets.len() {
                buckets.resize(b + 1, Vec::new());
            }
            buckets[b].push(v);
        }
    };

    while current < buckets.len() {
        // Phase 1: repeatedly settle light edges within the bucket.
        let mut settled: Vec<u32> = Vec::new();
        while let Some(v) = buckets[current].pop() {
            let dv = dist[v as usize];
            // Stale entry (vertex moved to an earlier bucket already).
            if (dv / delta) as usize != current {
                continue;
            }
            settled.push(v);
            for (u, w) in g.weighted_neighbors(v) {
                if u64::from(w) <= delta {
                    relax(&mut dist, &mut buckets, u, dv + u64::from(w));
                }
            }
        }
        // Phase 2: relax heavy edges of everything settled in this bucket.
        for &v in &settled {
            let dv = dist[v as usize];
            for (u, w) in g.weighted_neighbors(v) {
                if u64::from(w) > delta {
                    relax(&mut dist, &mut buckets, u, dv + u64::from(w));
                }
            }
        }
        current += 1;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, reference};

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::erdos_renyi(150, 500, seed);
            for delta in [1, 10, 50, 1000] {
                assert_eq!(
                    delta_stepping(&g, 0, delta),
                    reference::dijkstra(&g, 0),
                    "seed {seed}, delta {delta}"
                );
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_road_network() {
        let g = gen::road_network(30, 30, 7);
        assert_eq!(delta_stepping(&g, 17, 50), reference::dijkstra(&g, 17));
    }

    #[test]
    fn heavy_edges_only() {
        // All weights above delta: phase 2 does all the work.
        let g = Csr::from_weighted_edges(4, &[(0, 1), (1, 2), (2, 3)], &[100, 100, 100]).unwrap();
        assert_eq!(delta_stepping(&g, 0, 10), vec![0, 100, 200, 300]);
    }

    #[test]
    fn disconnected_vertices_unreachable() {
        let g = Csr::from_weighted_edges(3, &[(0, 1)], &[5]).unwrap();
        assert_eq!(delta_stepping(&g, 0, 5), vec![0, 5, u64::MAX]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(delta_stepping(&g, 0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_zero_delta() {
        let g = gen::path(3);
        delta_stepping(&g, 0, 0);
    }
}
