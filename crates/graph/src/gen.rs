//! Deterministic graph generators.
//!
//! The paper's graph workloads run on the W-USA road network (|V| = 6.2 M).
//! We cannot redistribute that dataset, so [`road_network`] generates a graph
//! with the same algorithmically relevant properties: planar-ish grid
//! structure, mean degree ≈ 2.5–3, very high diameter (thousands of BFS
//! levels at full scale), and integer travel-time weights. [`rmat`] and
//! [`erdos_renyi`] provide contrasting low-diameter topologies for the test
//! suite and ablations.
//!
//! # Seeding discipline
//!
//! Every generator takes its seed explicitly — there is no ambient RNG
//! state anywhere in this crate. All callers thread a *named* seed down to
//! here: the benchmark suite passes the constants in
//! `easched_kernels::suite::seeds` (its manifest is what the record/replay
//! layer writes into each `RunLog`), and tests pass literals at the call
//! site. The vendored `rand` stand-in's `StdRng` stream is therefore the
//! only PRNG these inputs depend on; if it is ever swapped for the real
//! crate, regenerated inputs change but recorded `RunLog`s replay
//! unchanged, because logs carry the observations themselves (see
//! DESIGN.md §12).

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a road-network-like weighted graph on a `width × height` grid.
///
/// Each grid point connects to its right and down neighbors (both
/// directions), a small fraction of edges are deleted (dead ends), and a
/// sparse set of "highway" shortcuts is added. Weights model travel times:
/// uniform in `1..=100` for local roads, shorter per-distance for highways.
///
/// The result is connected-ish (a giant component containing almost all
/// vertices) with diameter Θ(width + height).
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
///
/// # Examples
///
/// ```
/// use easched_graph::gen::road_network;
/// let g = road_network(16, 16, 42);
/// assert_eq!(g.vertex_count(), 256);
/// assert!(g.mean_degree() > 2.0 && g.mean_degree() < 5.0);
/// ```
pub fn road_network(width: u32, height: u32, seed: u64) -> Csr {
    assert!(width > 0 && height > 0, "grid dimensions must be positive");
    let n = width * height;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let mut weights = Vec::new();
    let add = |a: u32, b: u32, w: u32, edges: &mut Vec<(u32, u32)>, weights: &mut Vec<u32>| {
        edges.push((a, b));
        weights.push(w);
        edges.push((b, a));
        weights.push(w);
    };
    let idx = |x: u32, y: u32| y * width + x;
    for y in 0..height {
        for x in 0..width {
            let v = idx(x, y);
            if x + 1 < width && rng.gen_bool(0.93) {
                add(
                    v,
                    idx(x + 1, y),
                    rng.gen_range(1..=100),
                    &mut edges,
                    &mut weights,
                );
            }
            if y + 1 < height && rng.gen_bool(0.93) {
                add(
                    v,
                    idx(x, y + 1),
                    rng.gen_range(1..=100),
                    &mut edges,
                    &mut weights,
                );
            }
        }
    }
    // Highways: *local* shortcuts a few grid cells long (real highways
    // connect nearby towns; long-range random edges would collapse the
    // diameter into a small world, which road networks are not).
    let highways = (n / 300).max(1);
    for _ in 0..highways {
        let x = rng.gen_range(0..width);
        let y = rng.gen_range(0..height);
        let dx: i64 = rng.gen_range(-6..=6);
        let dy: i64 = rng.gen_range(-6..=6);
        let bx = (i64::from(x) + dx).clamp(0, i64::from(width) - 1) as u32;
        let by = (i64::from(y) + dy).clamp(0, i64::from(height) - 1) as u32;
        let (a, b) = (idx(x, y), idx(bx, by));
        if a != b {
            add(a, b, rng.gen_range(20..=60), &mut edges, &mut weights);
        }
    }
    Csr::from_weighted_edges(n, &edges, &weights).expect("generator produces valid edges")
}

/// Generates an RMAT power-law graph with `2^scale` vertices and
/// `edge_factor · 2^scale` undirected edges (standard Graph500 parameters
/// a=0.57, b=0.19, c=0.19).
///
/// # Panics
///
/// Panics if `scale` is 0 or greater than 30.
///
/// ```
/// use easched_graph::gen::rmat;
/// let g = rmat(8, 8, 1);
/// assert_eq!(g.vertex_count(), 256);
/// assert!(g.max_degree() > g.mean_degree() as usize * 4, "skewed degrees");
/// ```
pub fn rmat(scale: u32, edge_factor: u32, seed: u64) -> Csr {
    assert!(scale > 0 && scale <= 30, "scale must be in 1..=30");
    let n = 1u32 << scale;
    let m = (n as u64 * edge_factor as u64) as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut edges = Vec::with_capacity(m * 2);
    let mut weights = Vec::with_capacity(m * 2);
    for _ in 0..m {
        let (mut x, mut y) = (0u32, 0u32);
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (dx, dy) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            x |= dx << bit;
            y |= dy << bit;
        }
        let w = rng.gen_range(1..=100);
        edges.push((x, y));
        weights.push(w);
        edges.push((y, x));
        weights.push(w);
    }
    Csr::from_weighted_edges(n, &edges, &weights).expect("generator produces valid edges")
}

/// Generates an Erdős–Rényi G(n, m) graph with `m` undirected edges.
///
/// ```
/// use easched_graph::gen::erdos_renyi;
/// let g = erdos_renyi(100, 300, 5);
/// assert_eq!(g.vertex_count(), 100);
/// assert_eq!(g.edge_count(), 600); // both directions
/// ```
pub fn erdos_renyi(n: u32, m: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m * 2);
    let mut weights = Vec::with_capacity(m * 2);
    for _ in 0..m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let w = rng.gen_range(1..=100);
        edges.push((a, b));
        weights.push(w);
        edges.push((b, a));
        weights.push(w);
    }
    Csr::from_weighted_edges(n, &edges, &weights).expect("generator produces valid edges")
}

/// A simple path graph 0—1—…—(n−1) with unit weights; the worst case for
/// frontier parallelism (every frontier has one vertex).
///
/// ```
/// use easched_graph::gen::path;
/// let g = path(4);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
pub fn path(n: u32) -> Csr {
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((v - 1, v));
        edges.push((v, v - 1));
    }
    Csr::from_edges(n, &edges).expect("path edges valid")
}

/// A star graph: vertex 0 connected to all others; maximal one-level
/// frontier fan-out.
///
/// ```
/// use easched_graph::gen::star;
/// assert_eq!(star(5).degree(0), 4);
/// ```
pub fn star(n: u32) -> Csr {
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((0, v));
        edges.push((v, 0));
    }
    Csr::from_edges(n, &edges).expect("star edges valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn road_network_deterministic() {
        let a = road_network(20, 20, 9);
        let b = road_network(20, 20, 9);
        assert_eq!(a, b);
        let c = road_network(20, 20, 10);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn road_network_mostly_connected() {
        let g = road_network(40, 40, 3);
        let sizes = reference::component_sizes(&g);
        let giant = *sizes.iter().max().unwrap();
        assert!(
            giant as f64 > 0.95 * g.vertex_count() as f64,
            "giant component {giant} of {}",
            g.vertex_count()
        );
    }

    #[test]
    fn road_network_high_diameter() {
        // BFS depth from a corner should scale with grid dimension.
        let g = road_network(50, 50, 1);
        let dist = reference::bfs_levels(&g, 0);
        let max = dist.iter().filter(|&&d| d != u32::MAX).max().unwrap();
        assert!(*max >= 50, "road networks have high diameter, got {max}");
    }

    #[test]
    fn rmat_low_diameter_and_skewed() {
        let g = rmat(10, 16, 2);
        let dist = reference::bfs_levels(&g, 0);
        let max = dist.iter().filter(|&&d| d != u32::MAX).max().unwrap();
        assert!(*max < 12, "rmat graphs have low diameter, got {max}");
        assert!(g.max_degree() > 50);
    }

    #[test]
    fn erdos_renyi_edge_count_exact() {
        let g = erdos_renyi(50, 123, 7);
        assert_eq!(g.edge_count(), 246);
    }

    #[test]
    fn path_and_star_shapes() {
        let p = path(10);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(5), 2);
        let s = star(10);
        assert_eq!(s.degree(0), 9);
        assert_eq!(s.degree(3), 1);
    }

    #[test]
    fn generated_graphs_are_symmetric() {
        for g in [
            road_network(15, 15, 4),
            rmat(7, 8, 4),
            erdos_renyi(64, 100, 4),
        ] {
            for v in 0..g.vertex_count() {
                for (u, w) in g.weighted_neighbors(v) {
                    assert!(
                        g.weighted_neighbors(u).any(|(t, tw)| t == v && tw == w),
                        "missing reverse edge {v}->{u}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "grid dimensions must be positive")]
    fn road_network_rejects_zero() {
        road_network(0, 5, 1);
    }
}
