//! Structural graph statistics.
//!
//! Used by the harness and examples to show that the synthetic road
//! networks have the W-USA-like structure the substitution argument relies
//! on (DESIGN.md §2): low, flat degree distribution and high diameter, in
//! contrast to RMAT's skewed-degree small worlds.

use crate::csr::Csr;
use crate::reference;

/// Summary of a graph's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: u32,
    /// Directed edge count.
    pub edges: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Size of the largest connected component.
    pub giant_component: usize,
    /// Number of connected components.
    pub components: usize,
    /// Lower bound on the diameter from a double BFS sweep (exact on trees,
    /// a good estimate on road networks).
    pub pseudo_diameter: u32,
}

/// Computes [`GraphStats`].
///
/// The pseudo-diameter uses the classic double sweep: BFS from vertex 0 in
/// the giant component, then BFS again from the farthest vertex found.
///
/// # Examples
///
/// ```
/// use easched_graph::{gen, stats::graph_stats};
///
/// let s = graph_stats(&gen::path(10));
/// assert_eq!(s.pseudo_diameter, 9);
/// assert_eq!(s.components, 1);
/// ```
pub fn graph_stats(g: &Csr) -> GraphStats {
    let labels = reference::components(g);
    let mut sizes = std::collections::HashMap::new();
    for &l in &labels {
        *sizes.entry(l).or_insert(0usize) += 1;
    }
    let (giant_label, giant_component) = sizes
        .iter()
        .max_by_key(|(_, &s)| s)
        .map(|(&l, &s)| (l, s))
        .unwrap_or((0, 0));

    let pseudo_diameter = if giant_component > 1 {
        let d1 = reference::bfs_levels(g, giant_label);
        let far = farthest(&d1);
        let d2 = reference::bfs_levels(g, far);
        d2.iter()
            .filter(|&&d| d != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0)
    } else {
        0
    };

    GraphStats {
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        mean_degree: g.mean_degree(),
        max_degree: g.max_degree(),
        giant_component,
        components: sizes.len(),
        pseudo_diameter,
    }
}

fn farthest(dist: &[u32]) -> u32 {
    dist.iter()
        .enumerate()
        .filter(|(_, &d)| d != u32::MAX)
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| i as u32)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_stats_exact() {
        let s = graph_stats(&gen::path(16));
        assert_eq!(s.vertices, 16);
        assert_eq!(s.pseudo_diameter, 15);
        assert_eq!(s.giant_component, 16);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn star_diameter_two() {
        let s = graph_stats(&gen::star(20));
        assert_eq!(s.pseudo_diameter, 2);
        assert_eq!(s.max_degree, 19);
    }

    #[test]
    fn disconnected_components_counted() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.components, 3);
        assert_eq!(s.giant_component, 2);
    }

    #[test]
    fn road_network_vs_rmat_structure() {
        // The substitution argument: road networks are high-diameter and
        // flat-degree; RMAT is the opposite.
        let road = graph_stats(&gen::road_network(40, 40, 1));
        let rmat = graph_stats(&gen::rmat(10, 8, 1)); // ~1024 vertices too
        assert!(
            road.pseudo_diameter > 4 * rmat.pseudo_diameter,
            "road {} vs rmat {}",
            road.pseudo_diameter,
            rmat.pseudo_diameter
        );
        assert!(road.max_degree < 12);
        assert!(rmat.max_degree > 40);
    }

    #[test]
    fn empty_graph_stats() {
        let s = graph_stats(&Csr::from_edges(0, &[]).unwrap());
        assert_eq!(s.vertices, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.pseudo_diameter, 0);
    }
}
