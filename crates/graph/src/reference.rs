//! Serial reference implementations used as test oracles for the
//! data-parallel engines.

use crate::csr::Csr;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Serial BFS levels from `src`; unreachable vertices get `u32::MAX`.
///
/// # Panics
///
/// Panics if `src` is out of range on a non-empty graph.
///
/// # Examples
///
/// ```
/// use easched_graph::{gen, reference};
/// let g = gen::path(4);
/// assert_eq!(reference::bfs_levels(&g, 0), vec![0, 1, 2, 3]);
/// ```
pub fn bfs_levels(g: &Csr, src: u32) -> Vec<u32> {
    let n = g.vertex_count() as usize;
    let mut dist = vec![u32::MAX; n];
    if n == 0 {
        return dist;
    }
    assert!((src as usize) < n, "source out of range");
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Serial Dijkstra shortest-path distances from `src`; unreachable vertices
/// get `u64::MAX`. Unweighted graphs use weight 1 per edge.
///
/// # Panics
///
/// Panics if `src` is out of range on a non-empty graph.
///
/// ```
/// use easched_graph::{Csr, reference};
/// let g = Csr::from_weighted_edges(3, &[(0, 1), (1, 2), (0, 2)], &[1, 1, 5])?;
/// assert_eq!(reference::dijkstra(&g, 0), vec![0, 1, 2]);
/// # Ok::<(), easched_graph::CsrError>(())
/// ```
pub fn dijkstra(g: &Csr, src: u32) -> Vec<u64> {
    let n = g.vertex_count() as usize;
    let mut dist = vec![u64::MAX; n];
    if n == 0 {
        return dist;
    }
    assert!((src as usize) < n, "source out of range");
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (u, w) in g.weighted_neighbors(v) {
            let nd = d + u64::from(w);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Serial connected components by repeated BFS: returns per-vertex component
/// label, where each label is the smallest vertex id in the component.
///
/// ```
/// use easched_graph::{Csr, reference};
/// let g = Csr::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)])?;
/// assert_eq!(reference::components(&g), vec![0, 0, 2, 2]);
/// # Ok::<(), easched_graph::CsrError>(())
/// ```
pub fn components(g: &Csr) -> Vec<u32> {
    let n = g.vertex_count() as usize;
    let mut label = vec![u32::MAX; n];
    for start in 0..n as u32 {
        if label[start as usize] != u32::MAX {
            continue;
        }
        let mut stack = vec![start];
        label[start as usize] = start;
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = start;
                    stack.push(u);
                }
            }
        }
    }
    label
}

/// Sizes of all connected components, unordered.
///
/// ```
/// use easched_graph::{gen, reference};
/// let sizes = reference::component_sizes(&gen::star(5));
/// assert_eq!(sizes, vec![5]);
/// ```
pub fn component_sizes(g: &Csr) -> Vec<usize> {
    let labels = components(g);
    let mut counts = std::collections::HashMap::new();
    for l in labels {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    counts.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn bfs_on_star() {
        let g = gen::star(6);
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 1, 1, 1, 1]);
        let from_leaf = bfs_levels(&g, 3);
        assert_eq!(from_leaf[0], 1);
        assert_eq!(from_leaf[3], 0);
        assert_eq!(from_leaf[1], 2);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0)]).unwrap();
        let d = bfs_levels(&g, 0);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn bfs_empty_graph() {
        let g = Csr::from_edges(0, &[]).unwrap();
        assert!(bfs_levels(&g, 0).is_empty());
    }

    #[test]
    fn dijkstra_prefers_cheap_path() {
        // 0 -> 1 -> 2 total 2, direct 0 -> 2 costs 10.
        let g = Csr::from_weighted_edges(3, &[(0, 1), (1, 2), (0, 2)], &[1, 1, 10]).unwrap();
        assert_eq!(dijkstra(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights() {
        let g = gen::erdos_renyi(80, 200, 11);
        let unit = Csr::from_edges(
            g.vertex_count(),
            &(0..g.vertex_count())
                .flat_map(|v| g.neighbors(v).iter().map(move |&u| (v, u)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let b = bfs_levels(&unit, 0);
        let d = dijkstra(&unit, 0);
        for (bd, dd) in b.iter().zip(&d) {
            if *bd == u32::MAX {
                assert_eq!(*dd, u64::MAX);
            } else {
                assert_eq!(u64::from(*bd), *dd);
            }
        }
    }

    #[test]
    fn components_on_disjoint_paths() {
        let g = Csr::from_edges(6, &[(0, 1), (1, 0), (3, 4), (4, 3), (4, 5), (5, 4)]).unwrap();
        let labels = components(&g);
        assert_eq!(labels, vec![0, 0, 2, 3, 3, 3]);
        let mut sizes = component_sizes(&g);
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }
}
