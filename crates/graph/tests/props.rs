//! Property-based tests: the data-parallel engines agree with the serial
//! references on arbitrary graphs.

use easched_graph::{gen, reference, BfsEngine, CcEngine, Csr, SsspEngine};
use proptest::prelude::*;

/// Arbitrary small undirected weighted graph.
fn graphs() -> impl Strategy<Value = Csr> {
    (
        2u32..60,
        prop::collection::vec((0u32..60, 0u32..60, 1u32..100), 0..150),
    )
        .prop_map(|(n, raw)| {
            let mut edges = Vec::new();
            let mut weights = Vec::new();
            for (a, b, w) in raw {
                let (a, b) = (a % n, b % n);
                edges.push((a, b));
                weights.push(w);
                edges.push((b, a));
                weights.push(w);
            }
            Csr::from_weighted_edges(n, &edges, &weights).expect("valid edges")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_engine_matches_reference(g in graphs(), src_raw in 0u32..60) {
        let src = src_raw % g.vertex_count();
        let mut e = BfsEngine::new(&g, src);
        while !e.is_done() {
            for i in 0..e.frontier_len() {
                e.process_item(i);
            }
            e.advance();
        }
        prop_assert_eq!(e.distances(), reference::bfs_levels(&g, src));
    }

    #[test]
    fn sssp_engine_matches_dijkstra(g in graphs(), src_raw in 0u32..60) {
        let src = src_raw % g.vertex_count();
        let mut e = SsspEngine::new(&g, src);
        while !e.is_done() {
            for i in 0..e.frontier_len() {
                e.process_item(i);
            }
            e.advance();
        }
        prop_assert_eq!(e.distances(), reference::dijkstra(&g, src));
    }

    #[test]
    fn cc_engine_matches_reference(g in graphs()) {
        let mut e = CcEngine::new(&g);
        while !e.is_done() {
            for i in 0..e.active_len() {
                e.process_item(i);
            }
            e.advance();
        }
        prop_assert_eq!(e.labels(), reference::components(&g));
    }

    /// Component labels are the minimum id in each component, so every
    /// label is ≤ its vertex and labels are fixed points.
    #[test]
    fn component_labels_are_canonical(g in graphs()) {
        let labels = reference::components(&g);
        for (v, &l) in labels.iter().enumerate() {
            prop_assert!(l as usize <= v);
            prop_assert_eq!(labels[l as usize], l, "label of a label is itself");
        }
    }

    /// BFS distances satisfy the triangle property along edges.
    #[test]
    fn bfs_distances_are_tight_on_edges(g in graphs(), src_raw in 0u32..60) {
        let src = src_raw % g.vertex_count();
        let dist = reference::bfs_levels(&g, src);
        for v in 0..g.vertex_count() {
            for &u in g.neighbors(v) {
                let (dv, du) = (dist[v as usize], dist[u as usize]);
                if dv != u32::MAX {
                    prop_assert!(du != u32::MAX && du <= dv + 1, "edge {v}-{u}: {dv} vs {du}");
                }
            }
        }
    }

    /// Generated road networks are symmetric with positive weights.
    #[test]
    fn road_network_symmetric(w in 2u32..20, h in 2u32..20, seed in any::<u64>()) {
        let g = gen::road_network(w, h, seed);
        prop_assert_eq!(g.vertex_count(), w * h);
        for v in 0..g.vertex_count() {
            for (u, wt) in g.weighted_neighbors(v) {
                prop_assert!(wt >= 1);
                prop_assert!(g.weighted_neighbors(u).any(|(t, tw)| t == v && tw == wt));
            }
        }
    }
}
