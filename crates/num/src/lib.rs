//! Numeric substrate for the `easched` project.
//!
//! The CGO'16 energy-aware scheduler needs a small amount of numerical
//! machinery that we implement from scratch rather than pulling in a linear
//! algebra dependency:
//!
//! * [`Polynomial`] — dense univariate polynomials with evaluation,
//!   differentiation and integration (the paper's power-characterization
//!   functions are sixth-order polynomials);
//! * [`polyfit`](crate::polyfit::polyfit) — least-squares polynomial fitting
//!   via normal equations solved with partially-pivoted Gaussian elimination;
//! * [`optimize`] — grid search and golden-section minimization used to pick
//!   the GPU offload ratio α that minimizes an energy objective;
//! * [`stats`] — summary statistics used by the online profiler and the
//!   experiment harness.
//!
//! # Examples
//!
//! Fit a quadratic to noisy samples and evaluate it:
//!
//! ```
//! use easched_num::{polyfit, Polynomial};
//!
//! let xs: Vec<f64> = (0..20).map(|i| i as f64 / 19.0).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 3.0 - 2.0 * x + 0.5 * x * x).collect();
//! let fit: Polynomial = polyfit(&xs, &ys, 2).expect("well-conditioned fit").into_poly();
//! assert!((fit.eval(0.5) - (3.0 - 1.0 + 0.125)).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linalg;
pub mod optimize;
pub mod polyfit;
pub mod polynomial;
pub mod stats;

pub use linalg::{solve_linear, LinAlgError};
pub use optimize::{golden_section_min, grid_min, GridMin};
pub use polyfit::{polyfit, polyfit_weighted, FitError, PolyFit};
pub use polynomial::Polynomial;
pub use stats::Summary;
