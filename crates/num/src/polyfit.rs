//! Least-squares polynomial fitting.
//!
//! The paper measures average package power at a grid of GPU offload ratios
//! and fits a **sixth-order polynomial** to each of the eight workload
//! categories (Figures 5 and 6). [`polyfit`] implements that fit from scratch
//! via the normal equations `(VᵀV)c = Vᵀy` on a Vandermonde matrix, solved
//! with scaled partial-pivot Gaussian elimination.
//!
//! For numerical robustness at order six on [0, 1] we first shift/scale the
//! sample abscissae to [−1, 1]; the returned [`PolyFit`] stores the transform
//! and exposes the fitted curve in the *original* coordinates.

use crate::linalg::{solve_linear, LinAlgError};
use crate::polynomial::Polynomial;
use std::error::Error;
use std::fmt;

/// Error returned by [`polyfit`] and [`polyfit_weighted`].
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer samples than coefficients (`degree + 1`).
    TooFewSamples {
        /// Number of samples provided.
        samples: usize,
        /// Number of coefficients required.
        needed: usize,
    },
    /// `xs` and `ys` (and `ws` if given) have different lengths.
    LengthMismatch,
    /// A sample or weight was NaN/infinite, or a weight was negative.
    InvalidSample,
    /// The normal equations were singular (e.g. all xs identical).
    Degenerate(LinAlgError),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewSamples { samples, needed } => {
                write!(f, "need at least {needed} samples, got {samples}")
            }
            FitError::LengthMismatch => write!(f, "sample vectors have different lengths"),
            FitError::InvalidSample => {
                write!(f, "sample contains NaN, infinity, or negative weight")
            }
            FitError::Degenerate(e) => write!(f, "normal equations degenerate: {e}"),
        }
    }
}

impl Error for FitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FitError::Degenerate(e) => Some(e),
            _ => None,
        }
    }
}

/// Result of a polynomial fit: the curve plus fit-quality diagnostics.
///
/// # Examples
///
/// ```
/// use easched_num::polyfit;
///
/// let xs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
/// let fit = polyfit(&xs, &ys, 1)?;
/// assert!(fit.rmse() < 1e-9);
/// assert!((fit.eval(0.25) - 1.5).abs() < 1e-9);
/// # Ok::<(), easched_num::FitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PolyFit {
    poly: Polynomial,
    rmse: f64,
    max_abs_residual: f64,
    r_squared: f64,
    samples: usize,
}

impl PolyFit {
    /// The fitted polynomial in the original `x` coordinates.
    pub fn poly(&self) -> &Polynomial {
        &self.poly
    }

    /// Consumes the fit, returning the fitted polynomial.
    pub fn into_poly(self) -> Polynomial {
        self.poly
    }

    /// Evaluates the fitted curve at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.poly.eval(x)
    }

    /// Root-mean-square residual over the fitted samples.
    pub fn rmse(&self) -> f64 {
        self.rmse
    }

    /// Largest absolute residual over the fitted samples.
    pub fn max_abs_residual(&self) -> f64 {
        self.max_abs_residual
    }

    /// Coefficient of determination R² over the fitted samples (1 for a
    /// perfect fit; can be negative for fits worse than the mean).
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Number of samples the fit used.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

/// Fits a polynomial of the given `degree` to `(xs, ys)` by least squares.
///
/// # Errors
///
/// See [`FitError`]: too few samples, mismatched lengths, non-finite samples,
/// or degenerate abscissae.
///
/// # Examples
///
/// ```
/// use easched_num::polyfit;
///
/// // Recover a sixth-order power curve exactly from 21 samples.
/// let truth = [55.0, -8.0, 30.0, -45.0, 20.0, 3.0, -5.0];
/// let xs: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
/// let ys: Vec<f64> = xs
///     .iter()
///     .map(|&x| truth.iter().rev().fold(0.0, |a, c| a * x + c))
///     .collect();
/// let fit = polyfit(&xs, &ys, 6)?;
/// assert!(fit.rmse() < 1e-6);
/// # Ok::<(), easched_num::FitError>(())
/// ```
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<PolyFit, FitError> {
    let ws = vec![1.0; xs.len()];
    polyfit_weighted(xs, ys, &ws, degree)
}

/// Weighted least-squares polynomial fit; weight `ws[i]` multiplies the
/// squared residual of sample `i`.
///
/// Zero weights are allowed (the sample is ignored); negative or non-finite
/// weights are rejected.
///
/// # Errors
///
/// See [`FitError`].
///
/// # Examples
///
/// ```
/// use easched_num::polyfit_weighted;
///
/// let xs = [0.0, 0.5, 1.0, 10.0];
/// let ys = [1.0, 2.0, 3.0, -999.0];
/// // Outlier at x=10 has zero weight, so the line fits the first three.
/// let fit = polyfit_weighted(&xs, &ys, &[1.0, 1.0, 1.0, 0.0], 1)?;
/// assert!((fit.eval(0.5) - 2.0).abs() < 1e-9);
/// # Ok::<(), easched_num::FitError>(())
/// ```
pub fn polyfit_weighted(
    xs: &[f64],
    ys: &[f64],
    ws: &[f64],
    degree: usize,
) -> Result<PolyFit, FitError> {
    if xs.len() != ys.len() || xs.len() != ws.len() {
        return Err(FitError::LengthMismatch);
    }
    let n_coeffs = degree + 1;
    let effective: usize = ws.iter().filter(|&&w| w > 0.0).count();
    if effective < n_coeffs {
        return Err(FitError::TooFewSamples {
            samples: effective,
            needed: n_coeffs,
        });
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) || ws.iter().any(|w| !w.is_finite() || *w < 0.0)
    {
        return Err(FitError::InvalidSample);
    }

    // Map x to t ∈ [−1, 1] for conditioning.
    let (xmin, xmax) = xs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        });
    let span = xmax - xmin;
    let (shift, scale) = if span > 0.0 {
        ((xmin + xmax) / 2.0, span / 2.0)
    } else {
        (xmin, 1.0)
    };
    let ts: Vec<f64> = xs.iter().map(|&x| (x - shift) / scale).collect();

    // Normal equations on the Vandermonde system, accumulated directly:
    // A[j][k] = Σ w t^(j+k), b[j] = Σ w y t^j.
    let mut a = vec![vec![0.0; n_coeffs]; n_coeffs];
    let mut b = vec![0.0; n_coeffs];
    for ((&t, &y), &w) in ts.iter().zip(ys).zip(ws) {
        if w == 0.0 {
            continue;
        }
        let mut powers = Vec::with_capacity(2 * n_coeffs - 1);
        let mut p = 1.0;
        for _ in 0..2 * n_coeffs - 1 {
            powers.push(p);
            p *= t;
        }
        for j in 0..n_coeffs {
            for (k, row) in a[j].iter_mut().enumerate() {
                *row += w * powers[j + k];
            }
            b[j] += w * y * powers[j];
        }
    }

    let coeffs_t = solve_linear(a, b).map_err(FitError::Degenerate)?;

    // Convert from t coordinates back to x: p(x) = Σ c_k ((x − shift)/scale)^k.
    let poly_t = Polynomial::new(coeffs_t);
    let basis = Polynomial::new(vec![-shift / scale, 1.0 / scale]); // (x − shift)/scale
    let mut poly_x = Polynomial::zero();
    let mut basis_pow = Polynomial::constant(1.0);
    for &c in poly_t.coeffs() {
        poly_x = &poly_x + &basis_pow.scale(c);
        basis_pow = &basis_pow * &basis;
    }

    // Residual diagnostics on weighted samples.
    let mut sum_sq = 0.0;
    let mut wsum = 0.0;
    let mut wy_sum = 0.0;
    let mut max_abs: f64 = 0.0;
    for ((&x, &y), &w) in xs.iter().zip(ys).zip(ws) {
        if w == 0.0 {
            continue;
        }
        let r = poly_x.eval(x) - y;
        sum_sq += w * r * r;
        wsum += w;
        wy_sum += w * y;
        max_abs = max_abs.max(r.abs());
    }
    let rmse = if wsum > 0.0 {
        (sum_sq / wsum).sqrt()
    } else {
        0.0
    };
    // R² against the weighted mean of y.
    let y_mean = if wsum > 0.0 { wy_sum / wsum } else { 0.0 };
    let mut total_sq = 0.0;
    for ((_, &y), &w) in xs.iter().zip(ys).zip(ws) {
        if w > 0.0 {
            total_sq += w * (y - y_mean) * (y - y_mean);
        }
    }
    let r_squared = if total_sq > 0.0 {
        1.0 - sum_sq / total_sq
    } else if sum_sq == 0.0 {
        1.0
    } else {
        0.0
    };

    Ok(PolyFit {
        poly: poly_x,
        rmse,
        max_abs_residual: max_abs,
        r_squared,
        samples: effective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let fit = polyfit(&xs, &ys, 1).unwrap();
        assert!(fit.rmse() < 1e-12);
        assert!((fit.eval(10.0) - 21.0).abs() < 1e-9);
    }

    #[test]
    fn exact_sixth_order_recovery() {
        // Coefficients of similar magnitude to the paper's desktop curves.
        let truth = Polynomial::new(vec![45.2, -37.9, 293.3, -849.5, 1129.7, -708.5, 170.0]);
        let xs: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let fit = polyfit(&xs, &ys, 6).unwrap();
        for &x in &xs {
            assert!(
                (fit.eval(x) - truth.eval(x)).abs() < 1e-6,
                "x={x}: {} vs {}",
                fit.eval(x),
                truth.eval(x)
            );
        }
    }

    #[test]
    fn overdetermined_noisy_fit_reduces_residual_with_degree() {
        let xs: Vec<f64> = (0..=40).map(|i| i as f64 / 40.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 50.0 + 10.0 * (x * 3.0).sin()).collect();
        let r2 = polyfit(&xs, &ys, 2).unwrap().rmse();
        let r6 = polyfit(&xs, &ys, 6).unwrap().rmse();
        assert!(
            r6 < r2,
            "rmse should not increase with degree: {r6} vs {r2}"
        );
    }

    #[test]
    fn too_few_samples() {
        let err = polyfit(&[0.0, 1.0], &[0.0, 1.0], 2).unwrap_err();
        assert_eq!(
            err,
            FitError::TooFewSamples {
                samples: 2,
                needed: 3
            }
        );
    }

    #[test]
    fn length_mismatch() {
        assert_eq!(
            polyfit(&[0.0], &[0.0, 1.0], 0).unwrap_err(),
            FitError::LengthMismatch
        );
    }

    #[test]
    fn rejects_nan() {
        assert_eq!(
            polyfit(&[0.0, f64::NAN, 2.0], &[0.0, 1.0, 2.0], 1).unwrap_err(),
            FitError::InvalidSample
        );
        assert_eq!(
            polyfit(&[0.0, 1.0, 2.0], &[0.0, f64::INFINITY, 2.0], 1).unwrap_err(),
            FitError::InvalidSample
        );
    }

    #[test]
    fn rejects_negative_weight() {
        assert_eq!(
            polyfit_weighted(&[0.0, 1.0, 2.0], &[0.0, 1.0, 2.0], &[1.0, -1.0, 1.0], 1).unwrap_err(),
            FitError::InvalidSample
        );
    }

    #[test]
    fn identical_xs_degenerate() {
        let err = polyfit(&[1.0, 1.0, 1.0], &[0.0, 1.0, 2.0], 1).unwrap_err();
        assert!(matches!(err, FitError::Degenerate(_)));
    }

    #[test]
    fn constant_fit_is_weighted_mean() {
        let fit =
            polyfit_weighted(&[0.0, 1.0, 2.0], &[10.0, 20.0, 30.0], &[1.0, 1.0, 2.0], 0).unwrap();
        let mean = (10.0 + 20.0 + 60.0) / 4.0;
        assert!((fit.eval(5.0) - mean).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_excludes_sample() {
        let fit = polyfit_weighted(
            &[0.0, 1.0, 2.0, 3.0],
            &[0.0, 1.0, 2.0, 1000.0],
            &[1.0, 1.0, 1.0, 0.0],
            1,
        )
        .unwrap();
        assert!((fit.eval(3.0) - 3.0).abs() < 1e-9);
        assert_eq!(fit.samples(), 3);
    }

    #[test]
    fn diagnostics_track_residuals() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 1.1, 2.0]; // middle point off a straight line
        let fit = polyfit(&xs, &ys, 1).unwrap();
        assert!(fit.rmse() > 0.0);
        assert!(fit.max_abs_residual() >= fit.rmse());
        assert!(fit.r_squared() > 0.9 && fit.r_squared() < 1.0);
    }

    #[test]
    fn r_squared_extremes() {
        // Perfect fit.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        assert_eq!(polyfit(&xs, &ys, 1).unwrap().r_squared(), 1.0);
        // Constant data fitted by a constant: defined as perfect.
        let flat = [5.0, 5.0, 5.0];
        assert_eq!(polyfit(&xs[..3], &flat, 0).unwrap().r_squared(), 1.0);
        // A constant fit of a strong slope explains nothing: R² ≈ 0.
        let r2 = polyfit(&xs, &ys, 0).unwrap().r_squared();
        assert!(r2.abs() < 1e-9, "{r2}");
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        let err = polyfit(&[1.0, 1.0, 1.0], &[0.0, 1.0, 2.0], 1).unwrap_err();
        assert!(err.to_string().contains("degenerate"));
        assert!(err.source().is_some());
        assert!(FitError::LengthMismatch.source().is_none());
    }
}
