//! Small dense linear-algebra routines.
//!
//! Only what the polynomial fitter needs: solving a square linear system with
//! partially-pivoted Gaussian elimination. Matrices are represented as
//! row-major `Vec<Vec<f64>>` since systems here are tiny (≤ 9×9 for an
//! eighth-order fit).

use std::error::Error;
use std::fmt;

/// Error returned when a linear system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinAlgError {
    /// The matrix is singular (or numerically so) and has no unique solution.
    Singular,
    /// The matrix is not square or its shape disagrees with the RHS vector.
    ShapeMismatch {
        /// Number of matrix rows supplied.
        rows: usize,
        /// Number of matrix columns in the first row (0 if no rows).
        cols: usize,
        /// Length of the right-hand-side vector.
        rhs: usize,
    },
}

impl fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinAlgError::Singular => write!(f, "matrix is singular to working precision"),
            LinAlgError::ShapeMismatch { rows, cols, rhs } => write!(
                f,
                "shape mismatch: {rows}x{cols} matrix with rhs of length {rhs}"
            ),
        }
    }
}

impl Error for LinAlgError {}

/// Pivot magnitudes below this (relative to the largest row entry) are
/// treated as singular.
const PIVOT_EPS: f64 = 1e-12;

/// Solves the square system `A·x = b` by Gaussian elimination with partial
/// pivoting, returning `x`.
///
/// `a` is row-major and consumed as the working storage.
///
/// # Errors
///
/// Returns [`LinAlgError::ShapeMismatch`] if `a` is not square or `b` has the
/// wrong length, and [`LinAlgError::Singular`] if no numerically reliable
/// pivot can be found.
///
/// # Examples
///
/// ```
/// use easched_num::solve_linear;
///
/// let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
/// let x = solve_linear(a, vec![5.0, 10.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), easched_num::LinAlgError>(())
/// ```
pub fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, LinAlgError> {
    let n = a.len();
    let cols = a.first().map_or(0, Vec::len);
    if n == 0 || a.iter().any(|row| row.len() != n) || b.len() != n {
        return Err(LinAlgError::ShapeMismatch {
            rows: n,
            cols,
            rhs: b.len(),
        });
    }

    // Scale factors for implicit (scaled) partial pivoting: make pivoting
    // robust when rows have wildly different magnitudes, which happens for
    // Vandermonde normal equations of high order.
    let scale: Vec<f64> = a
        .iter()
        .map(|row| row.iter().fold(0.0f64, |m, v| m.max(v.abs())))
        .collect();
    if scale.contains(&0.0) {
        return Err(LinAlgError::Singular);
    }

    for col in 0..n {
        // Find the row with the largest scaled pivot.
        let (pivot_row, pivot_mag) = (col..n)
            .map(|r| (r, a[r][col].abs() / scale[r]))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty row range");
        if pivot_mag < PIVOT_EPS {
            return Err(LinAlgError::Singular);
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            // Split so we can borrow the pivot row and target row disjointly.
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row_slice = &upper[col];
            let target = &mut lower[0];
            for k in col..n {
                target[k] -= factor * pivot_row_slice[k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in row + 1..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_3x3() {
        // A·[1, -2, 3] with A below.
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let b = vec![
            2.0 * 1.0 + 1.0 * -2.0 + -3.0,
            -3.0 * 1.0 + -1.0 * -2.0 + 2.0 * 3.0,
            -2.0 * 1.0 + 1.0 * -2.0 + 2.0 * 3.0,
        ];
        let x = solve_linear(a, b).unwrap();
        for (got, want) in x.iter().zip([1.0, -2.0, 3.0]) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear(a, vec![2.0, 5.0]).unwrap();
        assert_eq!(x, vec![5.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(solve_linear(a, vec![1.0, 2.0]), Err(LinAlgError::Singular));
    }

    #[test]
    fn zero_matrix_is_singular() {
        let a = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        assert_eq!(solve_linear(a, vec![0.0, 0.0]), Err(LinAlgError::Singular));
    }

    #[test]
    fn shape_mismatch_reported() {
        let err = solve_linear(vec![vec![1.0, 2.0]], vec![1.0]).unwrap_err();
        assert!(matches!(err, LinAlgError::ShapeMismatch { .. }));
        let err = solve_linear(vec![vec![1.0]], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, LinAlgError::ShapeMismatch { rhs: 2, .. }));
        let err = solve_linear(Vec::new(), Vec::new()).unwrap_err();
        assert!(matches!(err, LinAlgError::ShapeMismatch { rows: 0, .. }));
    }

    #[test]
    fn badly_scaled_rows_handled() {
        // Same system as solves_identity but with row 0 scaled by 1e12:
        // scaled pivoting must not pick the huge row for the wrong column.
        let a = vec![vec![1e12, 1e12], vec![1.0, 2.0]];
        let b = vec![3e12, 4.0];
        let x = solve_linear(a, b).unwrap();
        // Solution of x+y=3, x+2y=4 → x=2, y=1.
        assert!((x[0] - 2.0).abs() < 1e-6, "{x:?}");
        assert!((x[1] - 1.0).abs() < 1e-6, "{x:?}");
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!LinAlgError::Singular.to_string().is_empty());
        let e = LinAlgError::ShapeMismatch {
            rows: 1,
            cols: 2,
            rhs: 3,
        };
        assert!(e.to_string().contains("1x2"));
    }
}
