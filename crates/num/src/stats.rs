//! Summary statistics.
//!
//! Used by the online profiler (throughput estimates across repeated
//! profiling rounds), the experiment harness (aggregating efficiency across
//! benchmarks — the paper reports *averages* relative to Oracle), and the
//! fit-quality ablation benches.

/// Streaming summary statistics over `f64` samples (Welford's algorithm for
/// numerically stable variance).
///
/// # Examples
///
/// ```
/// use easched_num::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    ///
    /// ```
    /// use easched_num::Summary;
    /// assert_eq!(Summary::new().count(), 0);
    /// ```
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds a sample.
    ///
    /// Non-finite samples are ignored (profiling counters occasionally
    /// produce them on zero-duration windows; discarding matches the paper's
    /// "repeat profiling" robustness strategy).
    ///
    /// ```
    /// use easched_num::Summary;
    /// let mut s = Summary::new();
    /// s.add(1.0);
    /// s.add(f64::NAN); // ignored
    /// assert_eq!(s.count(), 1);
    /// ```
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) samples added.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples; 0 when empty.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample; +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (divide by n); 0 when fewer than 2 samples.
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divide by n−1); 0 when fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Coefficient of variation (std dev / mean); 0 when mean is 0.
    ///
    /// The profiler uses this to detect irregular workloads whose throughput
    /// estimates are unstable across profiling rounds.
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.population_std_dev() / m.abs()
        }
    }

    /// Merges another summary into this one (parallel Welford merge).
    ///
    /// ```
    /// use easched_num::Summary;
    /// let a: Summary = [1.0, 2.0].iter().copied().collect();
    /// let b: Summary = [3.0, 4.0].iter().copied().collect();
    /// let mut m = a;
    /// m.merge(&b);
    /// let whole: Summary = [1.0, 2.0, 3.0, 4.0].iter().copied().collect();
    /// assert!((m.population_variance() - whole.population_variance()).abs() < 1e-12);
    /// ```
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Geometric mean of strictly positive values; returns `None` if the slice is
/// empty or any value is not strictly positive and finite.
///
/// The evaluation figures report per-benchmark efficiency ratios; the
/// geometric mean is the standard aggregate for ratios.
///
/// # Examples
///
/// ```
/// use easched_num::stats::geometric_mean;
///
/// assert_eq!(geometric_mean(&[1.0, 4.0]), Some(2.0));
/// assert_eq!(geometric_mean(&[]), None);
/// assert_eq!(geometric_mean(&[1.0, 0.0]), None);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut log_sum = 0.0;
    for &v in values {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        log_sum += v.ln();
    }
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; `None` when empty.
///
/// ```
/// use easched_num::stats::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(mean(&[]), None);
/// ```
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.add(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let s: Summary = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.population_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let s: Summary = [1.0, 2.0, 3.0].iter().copied().collect();
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
        assert!((s.population_variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_non_finite() {
        let s: Summary = [1.0, f64::INFINITY, 2.0, f64::NAN, 3.0]
            .iter()
            .copied()
            .collect();
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn merge_empty_cases() {
        let a: Summary = [1.0, 2.0].iter().copied().collect();
        let mut m = Summary::new();
        m.merge(&a);
        assert_eq!(m, a);
        let mut m = a;
        m.merge(&Summary::new());
        assert_eq!(m, a);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 1.3).collect();
        let (left, right) = xs.split_at(20);
        let mut a: Summary = left.iter().copied().collect();
        let b: Summary = right.iter().copied().collect();
        a.merge(&b);
        let whole: Summary = xs.iter().copied().collect();
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn cv_zero_mean() {
        let s: Summary = [-1.0, 1.0].iter().copied().collect();
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[2.0, 2.0, 2.0]), Some(2.0));
        let g = geometric_mean(&[1.0, 2.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[-1.0, 2.0]), None);
        assert_eq!(geometric_mean(&[f64::NAN]), None);
    }

    #[test]
    fn extend_trait() {
        let mut s = Summary::new();
        s.extend(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
    }
}
