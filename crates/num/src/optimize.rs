//! One-dimensional minimization.
//!
//! The EAS algorithm (paper Fig. 7, step 20) finds the GPU offload ratio α
//! minimizing the energy objective by evaluating the objective on a grid over
//! [0, 1]; [`grid_min`] implements that. [`golden_section_min`] is provided
//! for the grid-resolution ablation study (DESIGN.md §5.2).

/// Result of a grid minimization: the minimizing abscissa and value.
///
/// # Examples
///
/// ```
/// use easched_num::grid_min;
///
/// let m = grid_min(0.0, 1.0, 10, |x| (x - 0.3).powi(2));
/// assert!((m.x - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridMin {
    /// Abscissa of the minimum sample.
    pub x: f64,
    /// Objective value at [`GridMin::x`].
    pub value: f64,
    /// Index of the minimizing sample in `0..=steps`.
    pub index: usize,
}

impl GridMin {
    /// Converts into an `(x, value)` pair.
    ///
    /// ```
    /// use easched_num::grid_min;
    /// let (x, v) = grid_min(0.0, 2.0, 2, |x| x).into_pair();
    /// assert_eq!((x, v), (0.0, 0.0));
    /// ```
    pub fn into_pair(self) -> (f64, f64) {
        (self.x, self.value)
    }
}

/// Minimizes `f` over `steps + 1` equally spaced samples of `[lo, hi]`,
/// returning the smallest sample. Ties go to the smaller `x` (for EAS this
/// biases toward less GPU offload, a deterministic and conservative choice).
///
/// Non-finite objective values are skipped; if *every* sample is non-finite
/// the first sample is returned with value `f64::INFINITY`.
///
/// # Panics
///
/// Panics if `steps == 0`, `lo > hi`, or either bound is non-finite.
///
/// # Examples
///
/// ```
/// use easched_num::grid_min;
///
/// // EAS evaluates EDP(α) for α ∈ {0.0, 0.1, ..., 1.0}.
/// let m = grid_min(0.0, 1.0, 10, |a| (a - 0.9) * (a - 0.9));
/// assert_eq!(m.index, 9);
/// assert!((m.x - 0.9).abs() < 1e-12);
/// ```
pub fn grid_min<F: FnMut(f64) -> f64>(lo: f64, hi: f64, steps: usize, mut f: F) -> GridMin {
    assert!(steps > 0, "grid_min requires at least one step");
    assert!(
        lo.is_finite() && hi.is_finite() && lo <= hi,
        "grid_min requires finite lo <= hi"
    );
    let mut best = GridMin {
        x: lo,
        value: f64::INFINITY,
        index: 0,
    };
    for i in 0..=steps {
        // Exact endpoints at i == 0 and i == steps.
        let x = lo + (hi - lo) * (i as f64 / steps as f64);
        let v = f(x);
        if v.is_finite() && v < best.value {
            best = GridMin {
                x,
                value: v,
                index: i,
            };
        }
    }
    best
}

/// Ratio of the golden section (φ − 1 ≈ 0.618).
const INV_PHI: f64 = 0.618_033_988_749_894_9;

/// Golden-section search for the minimum of a unimodal `f` over `[lo, hi]`.
///
/// Runs until the bracket is narrower than `tol` (or 200 iterations).
/// Returns `(x, f(x))` at the bracket midpoint. For non-unimodal functions
/// the result is a local minimum.
///
/// # Panics
///
/// Panics if `tol <= 0`, bounds are non-finite, or `lo > hi`.
///
/// # Examples
///
/// ```
/// use easched_num::golden_section_min;
///
/// let (x, v) = golden_section_min(0.0, 1.0, 1e-9, |a| (a - 0.42f64).powi(2));
/// assert!((x - 0.42).abs() < 1e-6);
/// assert!(v < 1e-9);
/// ```
pub fn golden_section_min<F: FnMut(f64) -> f64>(
    lo: f64,
    hi: f64,
    tol: f64,
    mut f: F,
) -> (f64, f64) {
    assert!(tol > 0.0, "golden_section_min requires positive tol");
    assert!(
        lo.is_finite() && hi.is_finite() && lo <= hi,
        "golden_section_min requires finite lo <= hi"
    );
    let (mut a, mut b) = (lo, hi);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    let mut iters = 0;
    while (b - a) > tol && iters < 200 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
        iters += 1;
    }
    let x = (a + b) / 2.0;
    let v = f(x);
    (x, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_min_includes_both_endpoints() {
        let m = grid_min(0.0, 1.0, 10, |x| -x);
        assert_eq!(m.x, 1.0);
        assert_eq!(m.index, 10);
        let m = grid_min(0.0, 1.0, 10, |x| x);
        assert_eq!(m.x, 0.0);
        assert_eq!(m.index, 0);
    }

    #[test]
    fn grid_min_tie_prefers_smaller_x() {
        // Symmetric around 0.5 with grid hitting 0.4 and 0.6 equally.
        let m = grid_min(0.0, 1.0, 10, |x| (x - 0.5).abs());
        assert!((m.x - 0.5).abs() < 1e-12);
        let m = grid_min(0.0, 1.0, 4, |x| (x - 0.5) * (x - 0.5));
        // samples 0, .25, .5, .75, 1 → min at exactly 0.5
        assert!((m.x - 0.5).abs() < 1e-12);
        // Constant function: first sample wins.
        let m = grid_min(0.0, 1.0, 10, |_| 7.0);
        assert_eq!(m.index, 0);
    }

    #[test]
    fn grid_min_skips_non_finite() {
        let m = grid_min(0.0, 1.0, 10, |x| if x < 0.45 { f64::NAN } else { x });
        assert!((m.x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn grid_min_all_non_finite() {
        let m = grid_min(0.0, 1.0, 4, |_| f64::NAN);
        assert_eq!(m.x, 0.0);
        assert_eq!(m.value, f64::INFINITY);
    }

    #[test]
    fn grid_min_exact_tenths() {
        // The EAS use case: 0.1 increments should produce exact-ish tenths.
        let mut seen = Vec::new();
        grid_min(0.0, 1.0, 10, |x| {
            seen.push(x);
            0.0
        });
        assert_eq!(seen.len(), 11);
        assert_eq!(seen[0], 0.0);
        assert_eq!(*seen.last().unwrap(), 1.0);
        for (i, x) in seen.iter().enumerate() {
            assert!((x - i as f64 / 10.0).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn grid_min_zero_steps_panics() {
        grid_min(0.0, 1.0, 0, |x| x);
    }

    #[test]
    #[should_panic(expected = "finite lo <= hi")]
    fn grid_min_reversed_bounds_panics() {
        grid_min(1.0, 0.0, 10, |x| x);
    }

    #[test]
    fn golden_section_quadratic() {
        let (x, _) = golden_section_min(0.0, 1.0, 1e-10, |a| (a - 0.25f64).powi(2) + 3.0);
        assert!((x - 0.25).abs() < 1e-6);
    }

    #[test]
    fn golden_section_boundary_minimum() {
        let (x, _) = golden_section_min(0.0, 1.0, 1e-10, |a| a);
        assert!(x < 1e-6);
        let (x, _) = golden_section_min(0.0, 1.0, 1e-10, |a| -a);
        assert!(x > 1.0 - 1e-6);
    }

    #[test]
    fn golden_section_tighter_than_grid() {
        let f = |a: f64| (a - 0.637f64).powi(2);
        let g = grid_min(0.0, 1.0, 10, f);
        let (x, v) = golden_section_min(0.0, 1.0, 1e-9, f);
        assert!(v < g.value);
        assert!((x - 0.637).abs() < 1e-5);
    }

    #[test]
    fn golden_section_degenerate_interval() {
        let (x, v) = golden_section_min(0.5, 0.5, 1e-9, |a| a * a);
        assert_eq!(x, 0.5);
        assert_eq!(v, 0.25);
    }
}
