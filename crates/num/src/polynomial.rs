//! Dense univariate polynomials.
//!
//! The paper's power-characterization functions P(α) are sixth-order
//! polynomials in the GPU offload ratio α ∈ [0, 1]. [`Polynomial`] is the
//! representation those curves are stored and evaluated in.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense univariate polynomial with `f64` coefficients.
///
/// Coefficients are stored in ascending-degree order: `coeffs[k]` multiplies
/// `x^k`. The zero polynomial is represented by an empty coefficient vector;
/// all constructors strip trailing (highest-degree) zero coefficients so that
/// [`Polynomial::degree`] is meaningful.
///
/// # Examples
///
/// ```
/// use easched_num::Polynomial;
///
/// // 1 + 2x + 3x²
/// let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.eval(2.0), 1.0 + 4.0 + 12.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending-degree coefficients.
    ///
    /// Trailing zero coefficients are stripped, so
    /// `Polynomial::new(vec![1.0, 0.0])` equals `Polynomial::constant(1.0)`.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// assert_eq!(Polynomial::new(vec![1.0, 0.0]), Polynomial::constant(1.0));
    /// ```
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Polynomial { coeffs };
        p.normalize();
        p
    }

    /// The zero polynomial.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// assert_eq!(Polynomial::zero().eval(3.0), 0.0);
    /// ```
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// assert_eq!(Polynomial::constant(4.5).eval(-2.0), 4.5);
    /// ```
    pub fn constant(c: f64) -> Self {
        Polynomial::new(vec![c])
    }

    /// The identity polynomial `x`.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// assert_eq!(Polynomial::x().eval(7.0), 7.0);
    /// ```
    pub fn x() -> Self {
        Polynomial::new(vec![0.0, 1.0])
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// assert_eq!(Polynomial::new(vec![1.0, 0.0, 2.0]).degree(), Some(2));
    /// assert_eq!(Polynomial::zero().degree(), None);
    /// ```
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Ascending-degree coefficient slice. Empty for the zero polynomial.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// assert_eq!(Polynomial::new(vec![1.0, 2.0]).coeffs(), &[1.0, 2.0]);
    /// ```
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Returns `true` if this is the zero polynomial.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// assert!(Polynomial::new(vec![0.0, 0.0]).is_zero());
    /// ```
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates the polynomial at `x` using Horner's method.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// let p = Polynomial::new(vec![-1.0, 0.0, 1.0]); // x² − 1
    /// assert_eq!(p.eval(3.0), 8.0);
    /// ```
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// The derivative polynomial.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// let p = Polynomial::new(vec![0.0, 0.0, 3.0]); // 3x²
    /// assert_eq!(p.derivative(), Polynomial::new(vec![0.0, 6.0]));
    /// ```
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &c)| c * k as f64)
            .collect();
        Polynomial::new(coeffs)
    }

    /// The antiderivative with zero constant term.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// let p = Polynomial::new(vec![2.0]); // 2
    /// assert_eq!(p.antiderivative(), Polynomial::new(vec![0.0, 2.0]));
    /// ```
    pub fn antiderivative(&self) -> Polynomial {
        if self.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + 1);
        coeffs.push(0.0);
        coeffs.extend(
            self.coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c / (k as f64 + 1.0)),
        );
        Polynomial::new(coeffs)
    }

    /// Definite integral over `[a, b]`.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// let p = Polynomial::new(vec![0.0, 2.0]); // 2x
    /// assert!((p.integrate(0.0, 3.0) - 9.0).abs() < 1e-12);
    /// ```
    pub fn integrate(&self, a: f64, b: f64) -> f64 {
        let anti = self.antiderivative();
        anti.eval(b) - anti.eval(a)
    }

    /// Scales every coefficient by `s`.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// let p = Polynomial::new(vec![1.0, 1.0]).scale(3.0);
    /// assert_eq!(p.eval(1.0), 6.0);
    /// ```
    pub fn scale(&self, s: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Minimum of the polynomial over `[lo, hi]` sampled at `steps + 1`
    /// equally spaced points, returning `(argmin, min)`.
    ///
    /// This matches how the paper minimizes the energy objective: evaluating
    /// over a grid of offload ratios.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or `lo > hi` or either bound is non-finite.
    ///
    /// ```
    /// use easched_num::Polynomial;
    /// let p = Polynomial::new(vec![1.0, -2.0, 1.0]); // (x−1)²
    /// let (x, y) = p.grid_min(0.0, 2.0, 20);
    /// assert!((x - 1.0).abs() < 1e-12 && y.abs() < 1e-12);
    /// ```
    pub fn grid_min(&self, lo: f64, hi: f64, steps: usize) -> (f64, f64) {
        crate::optimize::grid_min(lo, hi, steps, |x| self.eval(x)).into_pair()
    }

    fn normalize(&mut self) {
        while let Some(&last) = self.coeffs.last() {
            if last == 0.0 {
                self.coeffs.pop();
            } else {
                break;
            }
        }
    }
}

impl fmt::Display for Polynomial {
    /// Formats in descending-degree order like the paper's figure captions,
    /// e.g. `3.00e0x^2 - 2.00e0x + 1.00e0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 && self.coeffs.len() > 1 {
                continue;
            }
            let mag = c.abs();
            if first {
                if c < 0.0 {
                    write!(f, "-")?;
                }
                first = false;
            } else if c < 0.0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            match k {
                0 => write!(f, "{mag:.4}")?,
                1 => write!(f, "{mag:.4}x")?,
                _ => write!(f, "{mag:.4}x^{k}")?,
            }
        }
        Ok(())
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;

    fn add(self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let coeffs = (0..n)
            .map(|k| {
                self.coeffs.get(k).copied().unwrap_or(0.0)
                    + rhs.coeffs.get(k).copied().unwrap_or(0.0)
            })
            .collect();
        Polynomial::new(coeffs)
    }
}

impl Add for Polynomial {
    type Output = Polynomial;

    fn add(self, rhs: Polynomial) -> Polynomial {
        &self + &rhs
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;

    fn sub(self, rhs: &Polynomial) -> Polynomial {
        self + &(-rhs.clone())
    }
}

impl Sub for Polynomial {
    type Output = Polynomial;

    fn sub(self, rhs: Polynomial) -> Polynomial {
        &self - &rhs
    }
}

impl Neg for Polynomial {
    type Output = Polynomial;

    fn neg(self) -> Polynomial {
        self.scale(-1.0)
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;

    fn mul(self, rhs: &Polynomial) -> Polynomial {
        if self.is_zero() || rhs.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }
}

impl Mul for Polynomial {
    type Output = Polynomial;

    fn mul(self, rhs: Polynomial) -> Polynomial {
        &self * &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(cs: &[f64]) -> Polynomial {
        Polynomial::new(cs.to_vec())
    }

    #[test]
    fn zero_polynomial_has_no_degree() {
        assert_eq!(Polynomial::zero().degree(), None);
        assert!(Polynomial::zero().is_zero());
        assert_eq!(Polynomial::zero().eval(12.0), 0.0);
    }

    #[test]
    fn trailing_zeros_stripped() {
        let p = poly(&[1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn all_zero_coeffs_is_zero() {
        assert!(poly(&[0.0, 0.0, 0.0]).is_zero());
    }

    #[test]
    fn horner_matches_naive_eval() {
        let p = poly(&[1.0, -3.0, 0.5, 2.0]);
        for &x in &[-2.0f64, -0.5, 0.0, 0.3, 1.0, 4.0] {
            let naive: f64 = p
                .coeffs()
                .iter()
                .enumerate()
                .map(|(k, &c)| c * x.powi(k as i32))
                .sum();
            assert!((p.eval(x) - naive).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn derivative_of_constant_is_zero() {
        assert!(Polynomial::constant(5.0).derivative().is_zero());
    }

    #[test]
    fn derivative_reduces_degree() {
        let p = poly(&[1.0, 2.0, 3.0, 4.0]);
        let d = p.derivative();
        assert_eq!(d, poly(&[2.0, 6.0, 12.0]));
    }

    #[test]
    fn antiderivative_then_derivative_roundtrips() {
        let p = poly(&[3.0, -1.0, 2.5]);
        assert_eq!(p.antiderivative().derivative(), p);
    }

    #[test]
    fn definite_integral_of_x_squared() {
        let p = poly(&[0.0, 0.0, 1.0]);
        assert!((p.integrate(0.0, 1.0) - 1.0 / 3.0).abs() < 1e-12);
        // Reversed bounds negate.
        assert!((p.integrate(1.0, 0.0) + 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn addition_and_subtraction() {
        let a = poly(&[1.0, 2.0]);
        let b = poly(&[0.0, -2.0, 3.0]);
        assert_eq!(&a + &b, poly(&[1.0, 0.0, 3.0]));
        assert_eq!(&a - &b, poly(&[1.0, 4.0, -3.0]));
        // Cancellation strips degree.
        assert_eq!((&b - &b).degree(), None);
    }

    #[test]
    fn multiplication() {
        let a = poly(&[1.0, 1.0]); // 1 + x
        let b = poly(&[-1.0, 1.0]); // -1 + x
        assert_eq!(&a * &b, poly(&[-1.0, 0.0, 1.0])); // x² − 1
        assert!((&a * &Polynomial::zero()).is_zero());
    }

    #[test]
    fn scale_by_zero_is_zero() {
        assert!(poly(&[1.0, 2.0]).scale(0.0).is_zero());
    }

    #[test]
    fn grid_min_finds_parabola_vertex() {
        let p = poly(&[4.0, -4.0, 1.0]); // (x−2)²
        let (x, y) = p.grid_min(0.0, 4.0, 40);
        assert!((x - 2.0).abs() < 1e-9);
        assert!(y.abs() < 1e-9);
    }

    #[test]
    fn display_descending_order() {
        let p = poly(&[1.0, -2.0, 3.0]);
        let s = format!("{p}");
        assert!(s.starts_with("3.0000x^2"), "{s}");
        assert!(s.contains("- 2.0000x"), "{s}");
        assert!(s.ends_with("+ 1.0000"), "{s}");
        assert_eq!(format!("{}", Polynomial::zero()), "0");
    }

    #[test]
    fn display_never_empty() {
        // C-DEBUG-NONEMPTY analogue for Display.
        for p in [
            Polynomial::zero(),
            Polynomial::constant(0.0),
            poly(&[0.0, 1.0]),
        ] {
            assert!(!format!("{p}").is_empty());
        }
    }
}
