//! Property-based tests for the numeric substrate.

use easched_num::{polyfit, polyfit_weighted, solve_linear, Polynomial, Summary};
use proptest::prelude::*;

fn small_coeffs() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, 0..6)
}

proptest! {
    /// (p + q)(x) = p(x) + q(x).
    #[test]
    fn addition_is_pointwise(a in small_coeffs(), b in small_coeffs(), x in -3.0..3.0f64) {
        let p = Polynomial::new(a);
        let q = Polynomial::new(b);
        let sum = &p + &q;
        prop_assert!((sum.eval(x) - (p.eval(x) + q.eval(x))).abs() < 1e-6);
    }

    /// (p · q)(x) = p(x) · q(x).
    #[test]
    fn multiplication_is_pointwise(a in small_coeffs(), b in small_coeffs(), x in -2.0..2.0f64) {
        let p = Polynomial::new(a);
        let q = Polynomial::new(b);
        let prod = &p * &q;
        let expect = p.eval(x) * q.eval(x);
        prop_assert!((prod.eval(x) - expect).abs() < 1e-4 * (1.0 + expect.abs()));
    }

    /// d/dx ∫p = p.
    #[test]
    fn antiderivative_roundtrips(a in small_coeffs()) {
        let p = Polynomial::new(a);
        let back = p.antiderivative().derivative();
        prop_assert_eq!(back.degree(), p.degree());
        for i in 0..=10 {
            let x = -1.0 + 0.2 * i as f64;
            prop_assert!((back.eval(x) - p.eval(x)).abs() < 1e-8);
        }
    }

    /// Fitting samples drawn exactly from a polynomial of degree ≤ k
    /// reproduces the sampled values.
    #[test]
    fn polyfit_recovers_exact_polynomials(
        coeffs in prop::collection::vec(-5.0..5.0f64, 1..6),
    ) {
        let truth = Polynomial::new(coeffs.clone());
        let degree = coeffs.len() - 1;
        let xs: Vec<f64> = (0..=(2 * degree + 4)).map(|i| i as f64 / (2 * degree + 4) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let fit = polyfit(&xs, &ys, degree).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            prop_assert!((fit.eval(x) - y).abs() < 1e-5 * (1.0 + y.abs()),
                "x={x}: {} vs {y}", fit.eval(x));
        }
    }

    /// Zero-weight samples never affect the fit.
    #[test]
    fn zero_weights_are_ignored(
        outlier in -1e3..1e3f64,
        slope in -5.0..5.0f64,
    ) {
        let xs = [0.0, 1.0, 2.0, 3.0, 10.0];
        let ys = [0.0, slope, 2.0 * slope, 3.0 * slope, outlier];
        let ws = [1.0, 1.0, 1.0, 1.0, 0.0];
        let fit = polyfit_weighted(&xs, &ys, &ws, 1).unwrap();
        prop_assert!((fit.eval(4.0) - 4.0 * slope).abs() < 1e-6 * (1.0 + slope.abs()));
    }

    /// solve(A, A·x) ≈ x for diagonally dominant A.
    #[test]
    fn linear_solver_inverts(
        x in prop::collection::vec(-10.0..10.0f64, 1..6),
        noise in prop::collection::vec(-0.3..0.3f64, 36),
    ) {
        let n = x.len();
        let mut a = vec![vec![0.0; n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = if i == j { 5.0 } else { noise[i * 6 + j] };
            }
        }
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[i][j] * x[j]).sum())
            .collect();
        let got = solve_linear(a, b).unwrap();
        for (g, w) in got.iter().zip(&x) {
            prop_assert!((g - w).abs() < 1e-8, "{g} vs {w}");
        }
    }

    /// Welford summary statistics match two-pass formulas and bounds.
    #[test]
    fn summary_matches_two_pass(xs in prop::collection::vec(-100.0..100.0f64, 1..50)) {
        let s: Summary = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-9);
        prop_assert!(s.min() <= s.mean() + 1e-12 && s.mean() <= s.max() + 1e-12);
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.population_variance() - var).abs() < 1e-6);
    }

    /// Parallel merge equals sequential accumulation.
    #[test]
    fn summary_merge_associative(
        a in prop::collection::vec(-50.0..50.0f64, 0..20),
        b in prop::collection::vec(-50.0..50.0f64, 0..20),
    ) {
        let mut left: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        left.merge(&right);
        let whole: Summary = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.sum() - whole.sum()).abs() < 1e-7);
        prop_assert!((left.population_variance() - whole.population_variance()).abs() < 1e-6);
    }

    /// grid_min returns the smallest sampled value.
    #[test]
    fn grid_min_is_minimal(a in -5.0..5.0f64, b in -5.0..5.0f64, c in -5.0..5.0f64) {
        let f = |x: f64| a * x * x + b * x + c;
        let m = easched_num::grid_min(0.0, 1.0, 20, f);
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            prop_assert!(m.value <= f(x) + 1e-12);
        }
    }

    /// Golden-section on a quadratic finds the clamped vertex.
    #[test]
    fn golden_section_finds_quadratic_vertex(v in -0.5..1.5f64) {
        let (x, _) = easched_num::golden_section_min(0.0, 1.0, 1e-9, |t| (t - v) * (t - v));
        let expect = v.clamp(0.0, 1.0);
        prop_assert!((x - expect).abs() < 1e-4, "{x} vs {expect}");
    }
}
