//! The replication wire format: sealed envelopes in sealed frames.
//!
//! A [`Frame`] is the atomic transport unit of the anti-entropy protocol
//! (DESIGN.md §15). It is line-oriented text in the v3 journal's idiom:
//! every line carries a trailing `crc <hex>` FNV-1a seal, floats ride as
//! `{:016x}` bit patterns (byte-exact, NaN included), and a header/footer
//! pair brackets the body so a frame torn anywhere — mid-line, mid-body,
//! or mid-footer — is rejected *whole*. Entries never apply partially.
//!
//! Two frame kinds exist:
//!
//! * `req` — a puller's watermark vector: one `want <origin> <gen> <seq>`
//!   line per origin it knows about. The receiver answers with every
//!   envelope the puller lacks.
//! * `ent` — a batch of [`Envelope`]s, each a single sealed line, in
//!   strictly increasing `(generation, seq)` order per origin.

use easched_core::fnv1a64;

/// A node's identity within the fleet (dense, 0-based).
pub type NodeId = u16;

/// A replication version: the envelope's position in its origin's stream.
///
/// Versions order lexicographically as `(generation, seq, origin)`. The
/// generation is the origin's node epoch (bumped across crash/restart,
/// fenced by the journal's snapshot generation), `seq` counts envelopes
/// within an epoch from 1, and the origin id breaks the (never expected,
/// but total-order-required) cross-origin tie deterministically. Applying
/// by max version is what makes replication last-writer-wins and
/// order-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version {
    /// The origin's node epoch.
    pub generation: u64,
    /// 1-based position within the epoch.
    pub seq: u64,
    /// The originating node.
    pub origin: NodeId,
}

/// What an envelope says about a kernel on its origin's platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Absolute table state for one kernel — not a delta, so applying the
    /// max-version `Put` alone reconstructs the entry.
    Put {
        /// Kernel id.
        kernel: u64,
        /// Learned offload ratio.
        alpha: f64,
        /// Accumulated sample weight.
        weight: f64,
        /// Invocations observed by the origin.
        seen: u64,
        /// Whether the origin had the entry tainted at publish time.
        tainted: bool,
    },
    /// The origin quarantined this kernel's entry (fault pipeline). A
    /// taint is a separate monotone fact, not an overwrite: it beats any
    /// older `Put` and is beaten by any newer one, so replicas converge
    /// regardless of arrival order.
    Taint {
        /// Kernel id.
        kernel: u64,
    },
}

impl Op {
    /// The kernel this op concerns.
    pub fn kernel(&self) -> u64 {
        match *self {
            Op::Put { kernel, .. } | Op::Taint { kernel } => kernel,
        }
    }
}

/// One replicated journal fact: who learned what, where, and when.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The node that learned the fact.
    pub origin: NodeId,
    /// The origin's platform name — the namespace the fact is truth in.
    /// On any *other* platform it is at most a warm-start prior.
    pub platform: String,
    /// Origin's node epoch at publish time.
    pub generation: u64,
    /// 1-based position within the epoch.
    pub seq: u64,
    /// The fact itself.
    pub op: Op,
}

impl Envelope {
    /// This envelope's replication version.
    pub fn version(&self) -> Version {
        Version {
            generation: self.generation,
            seq: self.seq,
            origin: self.origin,
        }
    }

    fn to_line(&self) -> String {
        match self.op {
            Op::Put {
                kernel,
                alpha,
                weight,
                seen,
                tainted,
            } => format!(
                "put {} {} {} {} {kernel:016x} {:016x} {:016x} {seen} {}",
                self.origin,
                sanitize(&self.platform),
                self.generation,
                self.seq,
                alpha.to_bits(),
                weight.to_bits(),
                u8::from(tainted),
            ),
            Op::Taint { kernel } => format!(
                "taint {} {} {} {} {kernel:016x}",
                self.origin,
                sanitize(&self.platform),
                self.generation,
                self.seq,
            ),
        }
    }

    fn from_line(body: &str) -> Option<Envelope> {
        let mut parts = body.split_whitespace();
        let word = parts.next()?;
        let origin = parts.next()?.parse().ok()?;
        let platform = parts.next()?.to_string();
        let generation = parts.next()?.parse().ok()?;
        let seq = parts.next()?.parse().ok()?;
        let kernel = u64::from_str_radix(parts.next()?, 16).ok()?;
        let op = match word {
            "put" => Op::Put {
                kernel,
                alpha: f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?),
                weight: f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?),
                seen: parts.next()?.parse().ok()?,
                tainted: match parts.next()? {
                    "0" => false,
                    "1" => true,
                    _ => return None,
                },
            },
            "taint" => Op::Taint { kernel },
            _ => return None,
        };
        end_of(parts)?;
        Some(Envelope {
            origin,
            platform,
            generation,
            seq,
            op,
        })
    }
}

/// What a frame carries.
#[derive(Debug, Clone, PartialEq)]
pub enum FramePayload {
    /// A puller's watermark vector: `(origin, generation, seq)` high-water
    /// marks, one per origin the puller has applied anything from.
    Request(Vec<(NodeId, u64, u64)>),
    /// A batch of envelopes answering a request.
    Entries(Vec<Envelope>),
}

/// The atomic transport unit: sender, receiver, and a sealed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The payload.
    pub payload: FramePayload,
}

/// Why a byte blob failed to decode as a [`Frame`]. Every variant means
/// the *whole* frame is discarded — there is no partial apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The `frame ...` header line is missing, unsealed, or malformed.
    BadHeader,
    /// A body line is missing, unsealed, or malformed (torn frame,
    /// bit flip, or truncation).
    TornBody,
    /// The `frame-end <n>` footer is missing, unsealed, or disagrees with
    /// the body count (classic torn-tail signature).
    TornFooter,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadHeader => write!(f, "frame header missing or corrupt"),
            FrameError::TornBody => write!(f, "frame body torn or corrupt"),
            FrameError::TornFooter => write!(f, "frame footer torn or corrupt"),
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// A request frame carrying the puller's watermark vector.
    pub fn request(from: NodeId, to: NodeId, wants: Vec<(NodeId, u64, u64)>) -> Frame {
        Frame {
            from,
            to,
            payload: FramePayload::Request(wants),
        }
    }

    /// An entries frame answering a request.
    pub fn entries(from: NodeId, to: NodeId, envelopes: Vec<Envelope>) -> Frame {
        Frame {
            from,
            to,
            payload: FramePayload::Entries(envelopes),
        }
    }

    /// Serializes the frame, every line sealed.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let (kind, n) = match &self.payload {
            FramePayload::Request(wants) => ("req", wants.len()),
            FramePayload::Entries(envs) => ("ent", envs.len()),
        };
        seal_line(
            &mut out,
            &format!("frame {} {} {kind} {n}", self.from, self.to),
        );
        match &self.payload {
            FramePayload::Request(wants) => {
                for (origin, generation, seq) in wants {
                    seal_line(&mut out, &format!("want {origin} {generation} {seq}"));
                }
            }
            FramePayload::Entries(envs) => {
                for env in envs {
                    seal_line(&mut out, &env.to_line());
                }
            }
        }
        seal_line(&mut out, &format!("frame-end {n}"));
        out
    }

    /// Decodes a frame, rejecting it whole on any torn or corrupt line.
    pub fn decode(text: &str) -> Result<Frame, FrameError> {
        let mut lines = text.lines();
        let header = lines.next().and_then(unseal).ok_or(FrameError::BadHeader)?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("frame") {
            return Err(FrameError::BadHeader);
        }
        let from: NodeId = parse_field(parts.next()).ok_or(FrameError::BadHeader)?;
        let to: NodeId = parse_field(parts.next()).ok_or(FrameError::BadHeader)?;
        let kind = parts.next().ok_or(FrameError::BadHeader)?.to_string();
        let n: usize = parse_field(parts.next()).ok_or(FrameError::BadHeader)?;
        if parts.next().is_some() {
            return Err(FrameError::BadHeader);
        }

        let payload = match kind.as_str() {
            "req" => {
                let mut wants = Vec::with_capacity(n);
                for _ in 0..n {
                    let body = lines.next().and_then(unseal).ok_or(FrameError::TornBody)?;
                    let mut p = body.split_whitespace();
                    if p.next() != Some("want") {
                        return Err(FrameError::TornBody);
                    }
                    let origin = parse_field(p.next()).ok_or(FrameError::TornBody)?;
                    let generation = parse_field(p.next()).ok_or(FrameError::TornBody)?;
                    let seq = parse_field(p.next()).ok_or(FrameError::TornBody)?;
                    if p.next().is_some() {
                        return Err(FrameError::TornBody);
                    }
                    wants.push((origin, generation, seq));
                }
                FramePayload::Request(wants)
            }
            "ent" => {
                let mut envs = Vec::with_capacity(n);
                for _ in 0..n {
                    let body = lines.next().and_then(unseal).ok_or(FrameError::TornBody)?;
                    envs.push(Envelope::from_line(body).ok_or(FrameError::TornBody)?);
                }
                FramePayload::Entries(envs)
            }
            _ => return Err(FrameError::BadHeader),
        };

        let footer = lines
            .next()
            .and_then(unseal)
            .ok_or(FrameError::TornFooter)?;
        let count = footer
            .strip_prefix("frame-end ")
            .and_then(|c| c.trim().parse::<usize>().ok())
            .ok_or(FrameError::TornFooter)?;
        if count != n || lines.next().is_some() {
            return Err(FrameError::TornFooter);
        }
        Ok(Frame { from, to, payload })
    }
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>) -> Option<T> {
    field?.parse().ok()
}

fn seal_line(out: &mut String, body: &str) {
    debug_assert!(!body.contains('\n'), "frame lines are single lines");
    out.push_str(body);
    out.push_str(&format!(" crc {:016x}\n", fnv1a64(body.as_bytes())));
}

/// Strips and verifies the trailing seal; `None` if absent or wrong.
fn unseal(line: &str) -> Option<&str> {
    let at = line.rfind(" crc ")?;
    let (body, seal) = line.split_at(at);
    let seal = u64::from_str_radix(seal.trim_start_matches(" crc ").trim(), 16).ok()?;
    (fnv1a64(body.as_bytes()) == seal).then_some(body)
}

/// Platform names are code-chosen; squash any stray whitespace so they
/// cannot break the line grammar.
fn sanitize(s: &str) -> String {
    s.replace(char::is_whitespace, "_")
}

/// `Some(())` only when the iterator is exhausted (trailing junk on a
/// line is treated as corruption).
fn end_of(mut parts: std::str::SplitWhitespace<'_>) -> Option<()> {
    parts.next().is_none().then_some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Frame {
        Frame::entries(
            0,
            1,
            vec![
                Envelope {
                    origin: 0,
                    platform: "haswell-desktop".into(),
                    generation: 1,
                    seq: 1,
                    op: Op::Put {
                        kernel: 7,
                        alpha: 0.65,
                        weight: 12.0,
                        seen: 3,
                        tainted: false,
                    },
                },
                Envelope {
                    origin: 0,
                    platform: "haswell-desktop".into(),
                    generation: 1,
                    seq: 2,
                    op: Op::Taint { kernel: 7 },
                },
            ],
        )
    }

    #[test]
    fn entries_round_trip() {
        let frame = sample_entries();
        assert_eq!(Frame::decode(&frame.encode()), Ok(frame));
    }

    #[test]
    fn request_round_trips() {
        let frame = Frame::request(2, 0, vec![(0, 1, 5), (1, 2, 0), (2, 1, 9)]);
        assert_eq!(Frame::decode(&frame.encode()), Ok(frame));
    }

    #[test]
    fn nan_alpha_rides_bit_exact() {
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let frame = Frame::entries(
            1,
            0,
            vec![Envelope {
                origin: 1,
                platform: "baytrail-tablet".into(),
                generation: 3,
                seq: 1,
                op: Op::Put {
                    kernel: 9,
                    alpha: nan,
                    weight: f64::NEG_INFINITY,
                    seen: 0,
                    tainted: true,
                },
            }],
        );
        let back = Frame::decode(&frame.encode()).unwrap();
        let FramePayload::Entries(envs) = &back.payload else {
            panic!("entries frame");
        };
        let Op::Put { alpha, weight, .. } = envs[0].op else {
            panic!("put op");
        };
        assert_eq!(alpha.to_bits(), nan.to_bits());
        assert_eq!(weight, f64::NEG_INFINITY);
    }

    #[test]
    fn every_truncation_is_rejected_whole() {
        let text = sample_entries().encode();
        // Cutting exactly the trailing '\n' leaves every sealed line —
        // footer included — byte-intact, so that one prefix legitimately
        // decodes; every shorter prefix must be rejected whole.
        for cut in 0..text.len() - 1 {
            let torn = &text[..cut];
            assert!(
                Frame::decode(torn).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let text = sample_entries().encode();
        let bytes = text.as_bytes();
        // Flip one ASCII-visible bit in a few positions across the frame
        // (the proptest suite sweeps this exhaustively).
        for pos in [0, 7, bytes.len() / 2, bytes.len() - 2] {
            let mut corrupt = bytes.to_vec();
            corrupt[pos] ^= 0x01;
            let corrupt = String::from_utf8(corrupt).unwrap();
            if corrupt == text {
                continue;
            }
            assert!(Frame::decode(&corrupt).is_err(), "flip at {pos} decoded");
        }
    }

    #[test]
    fn footer_count_mismatch_is_torn() {
        let text = sample_entries().encode();
        // Drop the middle body line but keep header and footer intact.
        let lines: Vec<&str> = text.lines().collect();
        let shorter: String = [lines[0], lines[2], lines[3]]
            .iter()
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(Frame::decode(&shorter), Err(FrameError::TornBody));
    }

    #[test]
    fn versions_order_lexicographically() {
        let v = |generation, seq, origin| Version {
            generation,
            seq,
            origin,
        };
        assert!(v(1, 9, 2) < v(2, 1, 0), "generation dominates");
        assert!(v(1, 1, 0) < v(1, 2, 0), "then seq");
        assert!(v(1, 1, 0) < v(1, 1, 1), "then origin");
    }
}
