//! The fleet-wide reprofile scheduler: batched response to replicated
//! taints.
//!
//! When a taint replicates in, the receiving node should eventually
//! re-measure the kernel on *its* silicon — but a taint storm (one bad
//! power rail tainting a dozen kernels at once) must not stall the whole
//! node in back-to-back profiling. The scheduler queues tainted kernels
//! and releases at most `budget` per anti-entropy round, oldest first
//! (DESIGN.md §15). Releasing means tainting the *local* table entry, so
//! the scheduler's own profile loop re-profiles on the kernel's next
//! invocation — replication never skips or forges a measurement.

use std::collections::BTreeSet;

/// Batched re-profiling queue. Deterministic: kernels release in id
/// order within a round, bounded by the per-round budget.
#[derive(Debug, Clone)]
pub struct ReprofileScheduler {
    pending: BTreeSet<u64>,
    budget: usize,
    released: u64,
}

impl ReprofileScheduler {
    /// A queue releasing at most `budget` kernels per round (0 disables
    /// release entirely — kernels just accumulate).
    pub fn new(budget: usize) -> ReprofileScheduler {
        ReprofileScheduler {
            pending: BTreeSet::new(),
            budget,
            released: 0,
        }
    }

    /// Queues a kernel for re-profiling. Idempotent; returns `true` only
    /// on first enqueue (so callers can count scheduled reprofiles
    /// without double-counting duplicate taints).
    pub fn enqueue(&mut self, kernel: u64) -> bool {
        self.pending.insert(kernel)
    }

    /// Kernels still waiting.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Total kernels released across all rounds.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Takes this round's batch: up to `budget` kernels, smallest id
    /// first.
    pub fn take_batch(&mut self) -> Vec<u64> {
        let batch: Vec<u64> = self.pending.iter().copied().take(self.budget).collect();
        for k in &batch {
            self.pending.remove(k);
        }
        self.released += batch.len() as u64;
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_in_id_order_within_budget() {
        let mut s = ReprofileScheduler::new(2);
        assert!(s.enqueue(9));
        assert!(s.enqueue(3));
        assert!(s.enqueue(7));
        assert!(!s.enqueue(3), "duplicate taint is one reprofile");
        assert_eq!(s.take_batch(), vec![3, 7]);
        assert_eq!(s.pending(), 1);
        assert_eq!(s.take_batch(), vec![9]);
        assert_eq!(s.take_batch(), Vec::<u64>::new());
        assert_eq!(s.released(), 3);
    }

    #[test]
    fn zero_budget_accumulates_forever() {
        let mut s = ReprofileScheduler::new(0);
        s.enqueue(1);
        s.enqueue(2);
        assert_eq!(s.take_batch(), Vec::<u64>::new());
        assert_eq!(s.pending(), 2);
    }
}
