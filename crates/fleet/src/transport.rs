//! In-process transports: a perfect one and a seeded chaos one.
//!
//! The anti-entropy protocol (DESIGN.md §15) is transport-agnostic: nodes
//! hand encoded frames to a [`Transport`] and poll their inbox. The
//! [`PerfectTransport`] delivers everything next tick, in order — the
//! baseline the convergence tests calibrate against. The
//! [`ChaosTransport`] is the adversary: seeded from
//! `RunSeed::derive("fleet")`, it drops, duplicates, reorders, delays and
//! tears frames, and enforces scheduled link partitions — all
//! deterministically, so every chaos run is byte-for-byte replayable.

use crate::frame::NodeId;

/// A message fabric between fleet nodes.
///
/// Implementations are single-threaded and tick-driven: `send` enqueues,
/// [`tick`](Transport::tick) advances virtual time, and
/// [`poll`](Transport::poll) drains whatever has arrived for a node.
pub trait Transport {
    /// Enqueues an encoded frame from `src` to `dst`.
    fn send(&mut self, src: NodeId, dst: NodeId, frame: String);
    /// Drains every frame that has arrived for `dst`, in delivery order.
    fn poll(&mut self, dst: NodeId) -> Vec<String>;
    /// Advances virtual time one tick (delays count down, partitions
    /// open and heal).
    fn tick(&mut self);
    /// Drops everything in flight to or from a crashed node — a kill -9
    /// takes its socket buffers with it.
    fn reset(&mut self, node: NodeId);
}

/// Delivers every frame on the next tick, in send order. No loss, no
/// reordering — the control condition.
#[derive(Debug, Default)]
pub struct PerfectTransport {
    in_flight: Vec<(NodeId, String)>,
    arrived: Vec<(NodeId, String)>,
}

impl PerfectTransport {
    /// An empty fabric.
    pub fn new() -> PerfectTransport {
        PerfectTransport::default()
    }
}

impl Transport for PerfectTransport {
    fn send(&mut self, _src: NodeId, dst: NodeId, frame: String) {
        self.in_flight.push((dst, frame));
    }

    fn poll(&mut self, dst: NodeId) -> Vec<String> {
        let mut out = Vec::new();
        self.arrived.retain(|(d, f)| {
            if *d == dst {
                out.push(f.clone());
                false
            } else {
                true
            }
        });
        out
    }

    fn tick(&mut self) {
        self.arrived.append(&mut self.in_flight);
    }

    fn reset(&mut self, node: NodeId) {
        self.in_flight.retain(|(d, _)| *d != node);
        self.arrived.retain(|(d, _)| *d != node);
    }
}

/// A scheduled bidirectional link cut between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut link.
    pub a: NodeId,
    /// The other side.
    pub b: NodeId,
    /// First tick (inclusive) the link is down.
    pub from_tick: u64,
    /// First tick the link is healed again (exclusive end).
    pub to_tick: u64,
}

impl Partition {
    /// Whether this cut severs `src → dst` at `tick`.
    fn cuts(&self, src: NodeId, dst: NodeId, tick: u64) -> bool {
        let on_link = (src == self.a && dst == self.b) || (src == self.b && dst == self.a);
        on_link && tick >= self.from_tick && tick < self.to_tick
    }
}

/// Fault rates and schedules for a [`ChaosTransport`]. All probabilities
/// are per-frame, in per-mille (0..=1000), drawn independently.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Per-mille chance a frame is silently dropped.
    pub drop_per_mille: u16,
    /// Per-mille chance a frame arrives twice.
    pub duplicate_per_mille: u16,
    /// Per-mille chance a frame swaps delivery order with the frame
    /// ahead of it in the same inbox.
    pub reorder_per_mille: u16,
    /// Per-mille chance a frame loses a suffix in flight (torn frame —
    /// the codec must reject it whole).
    pub torn_per_mille: u16,
    /// Additional delivery delay, uniform in `0..=max_delay_ticks`.
    pub max_delay_ticks: u64,
    /// Scheduled link cuts.
    pub partitions: Vec<Partition>,
}

impl Default for ChaosConfig {
    /// The CI chaos profile: every fault class active at a rate that
    /// still converges within the drain budget.
    fn default() -> ChaosConfig {
        ChaosConfig {
            drop_per_mille: 150,
            duplicate_per_mille: 100,
            reorder_per_mille: 150,
            torn_per_mille: 80,
            max_delay_ticks: 2,
            partitions: Vec::new(),
        }
    }
}

impl ChaosConfig {
    /// No faults at all — a [`PerfectTransport`] with the chaos plumbing
    /// (useful for isolating partition behavior).
    pub fn quiet() -> ChaosConfig {
        ChaosConfig {
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            reorder_per_mille: 0,
            torn_per_mille: 0,
            max_delay_ticks: 0,
            partitions: Vec::new(),
        }
    }
}

/// Per-node fault attribution from the fabric's point of view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames destined to this node the fabric dropped.
    pub dropped: u64,
    /// Frames destined to this node the fabric duplicated.
    pub duplicated: u64,
    /// Frames destined to this node the fabric tore mid-flight.
    pub torn: u64,
    /// Frames refused because a partition severed the link.
    pub partitioned: u64,
}

/// The adversarial fabric: deterministic seeded fault injection.
#[derive(Debug)]
pub struct ChaosTransport {
    config: ChaosConfig,
    rng: u64,
    now: u64,
    /// `(deliver_at_tick, dst, frame)`, kept in send order; delivery
    /// filters by tick so delays reorder across, never within, a tick
    /// unless the reorder fault fires.
    in_flight: Vec<(u64, NodeId, String)>,
    stats: Vec<LinkStats>,
}

impl ChaosTransport {
    /// A fabric for `nodes` nodes, faulting per `config`, deterministic
    /// in `seed` (derive it as `RunSeed::derive("fleet")`).
    pub fn new(nodes: usize, seed: u64, config: ChaosConfig) -> ChaosTransport {
        ChaosTransport {
            config,
            // splitmix64 must not start at 0 (it would stay 0 for one
            // step); the increment below fixes that on first use.
            rng: seed,
            now: 0,
            in_flight: Vec::new(),
            stats: vec![LinkStats::default(); nodes],
        }
    }

    /// Fault attribution for one node's inbox.
    pub fn link_stats(&self, node: NodeId) -> LinkStats {
        self.stats
            .get(usize::from(node))
            .copied()
            .unwrap_or_default()
    }

    /// The current virtual tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// splitmix64 — the repo's standard derivation PRNG (see
    /// `easched_core::seed`).
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn chance(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.next_u64() % 1000 < u64::from(per_mille)
    }

    fn stat(&mut self, node: NodeId) -> &mut LinkStats {
        let idx = usize::from(node);
        if idx >= self.stats.len() {
            self.stats.resize(idx + 1, LinkStats::default());
        }
        &mut self.stats[idx]
    }
}

impl Transport for ChaosTransport {
    fn send(&mut self, src: NodeId, dst: NodeId, frame: String) {
        if self
            .config
            .partitions
            .iter()
            .any(|p| p.cuts(src, dst, self.now))
        {
            self.stat(dst).partitioned += 1;
            return;
        }
        if self.chance(self.config.drop_per_mille) {
            self.stat(dst).dropped += 1;
            return;
        }
        let mut frame = frame;
        if self.chance(self.config.torn_per_mille) {
            // Tear off a suffix: at least one byte gone, possibly almost
            // everything. The codec must reject the remnant whole.
            let keep = if frame.is_empty() {
                0
            } else {
                (self.next_u64() as usize) % frame.len()
            };
            frame.truncate(keep);
            self.stat(dst).torn += 1;
        }
        let delay = if self.config.max_delay_ticks > 0 {
            self.next_u64() % (self.config.max_delay_ticks + 1)
        } else {
            0
        };
        let deliver_at = self.now + 1 + delay;
        let duplicate = self.chance(self.config.duplicate_per_mille);
        let reorder = self.chance(self.config.reorder_per_mille);
        if duplicate {
            self.stat(dst).duplicated += 1;
            self.in_flight.push((deliver_at, dst, frame.clone()));
        }
        self.in_flight.push((deliver_at, dst, frame));
        if reorder {
            // Swap with the previous frame queued for the same inbox, if
            // any — a local transposition, the classic UDP reorder.
            let len = self.in_flight.len();
            if let Some(prev) = (0..len - 1).rev().find(|&i| self.in_flight[i].1 == dst) {
                self.in_flight.swap(prev, len - 1);
            }
        }
    }

    fn poll(&mut self, dst: NodeId) -> Vec<String> {
        let now = self.now;
        let mut out = Vec::new();
        self.in_flight.retain(|(at, d, f)| {
            if *d == dst && *at <= now {
                out.push(f.clone());
                false
            } else {
                true
            }
        });
        out
    }

    fn tick(&mut self) {
        self.now += 1;
    }

    fn reset(&mut self, node: NodeId) {
        self.in_flight.retain(|(_, d, _)| *d != node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_transport_delivers_next_tick_in_order() {
        let mut t = PerfectTransport::new();
        t.send(0, 1, "a".into());
        t.send(0, 1, "b".into());
        assert!(t.poll(1).is_empty(), "nothing before the tick");
        t.tick();
        assert_eq!(t.poll(1), vec!["a".to_string(), "b".to_string()]);
        assert!(t.poll(1).is_empty(), "poll drains");
    }

    #[test]
    fn chaos_is_deterministic_in_the_seed() {
        let run = |seed| {
            let mut t = ChaosTransport::new(2, seed, ChaosConfig::default());
            let mut seen = Vec::new();
            for i in 0..200u32 {
                t.send(0, 1, format!("frame-{i}"));
                t.tick();
                seen.extend(t.poll(1));
            }
            for _ in 0..4 {
                t.tick();
                seen.extend(t.poll(1));
            }
            (seen, t.link_stats(1))
        };
        assert_eq!(run(7), run(7), "same seed, same stream");
        assert_ne!(run(7).0, run(8).0, "different seed, different stream");
    }

    #[test]
    fn chaos_actually_faults() {
        let mut t = ChaosTransport::new(2, 23, ChaosConfig::default());
        for i in 0..500u32 {
            t.send(0, 1, format!("frame-{i}"));
            t.tick();
            let _ = t.poll(1);
        }
        let s = t.link_stats(1);
        assert!(s.dropped > 0, "{s:?}");
        assert!(s.duplicated > 0, "{s:?}");
        assert!(s.torn > 0, "{s:?}");
    }

    #[test]
    fn partition_cuts_both_directions_then_heals() {
        let cfg = ChaosConfig {
            partitions: vec![Partition {
                a: 0,
                b: 1,
                from_tick: 0,
                to_tick: 3,
            }],
            ..ChaosConfig::quiet()
        };
        let mut t = ChaosTransport::new(2, 1, cfg);
        t.send(0, 1, "cut".into());
        t.send(1, 0, "cut-back".into());
        for _ in 0..3 {
            t.tick();
        }
        assert!(t.poll(1).is_empty());
        assert!(t.poll(0).is_empty());
        assert_eq!(t.link_stats(1).partitioned, 1);
        // Healed now (tick 3 >= to_tick).
        t.send(0, 1, "healed".into());
        t.tick();
        assert_eq!(t.poll(1), vec!["healed".to_string()]);
    }

    #[test]
    fn reset_drops_in_flight_frames() {
        let mut t = ChaosTransport::new(2, 5, ChaosConfig::quiet());
        t.send(0, 1, "doomed".into());
        t.reset(1);
        t.tick();
        assert!(t.poll(1).is_empty());
    }
}
