//! One fleet node: a persistent [`SharedEas`] scheduler, a simulated
//! machine, and the anti-entropy protocol state around them.
//!
//! A node's journal (`TableStore`) remains the single source of truth for
//! its own platform; replication *streams* that truth outward and pulls
//! everyone else's in. Per origin, the node keeps a `(generation, seq)`
//! watermark (contiguous-prefix admission — exactly-once apply under
//! duplication and reordering), a retransmission log (so knowledge
//! spreads transitively through third nodes across partitions), and the
//! convergent [`ReplicaTable`]. Cross-platform knowledge lands as
//! warm-start priors only; replicated taints quarantine fleet-wide
//! through the batched [`ReprofileScheduler`] (DESIGN.md §15).

use crate::frame::{Envelope, Frame, NodeId, Op};
use crate::replica::{Applied, ReplicaTable};
use crate::reprofile::ReprofileScheduler;
use crate::stats::FleetStats;
use easched_core::{
    characterize, CharacterizationConfig, EasConfig, SharedEas, StoreError, StoreHealth,
};
use easched_runtime::sim_backend::SimBackend;
use easched_runtime::vfs::{StdFs, Vfs};
use easched_runtime::ConcurrentScheduler;
use easched_sim::{KernelTraits, Machine, Platform};
use easched_telemetry::{Span, SpanKind, SpanSink};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Cap on envelopes per entries frame — the batching knob. Leftovers go
/// out on the next pull round.
pub const MAX_ENTRIES_PER_FRAME: usize = 128;

/// Attempts the start-time fencing checkpoint gets under injected I/O
/// faults before the node settles for an in-memory epoch bump.
const START_CHECKPOINT_RETRIES: usize = 8;

/// Last state published for a kernel, used to detect changes worth an
/// envelope (bit-exact float comparison, so re-publishing is silent only
/// when truly nothing moved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PublishedState {
    alpha_bits: u64,
    weight_bits: u64,
    seen: u64,
    tainted: bool,
}

/// One node of the fleet.
pub struct FleetNode {
    /// This node's fleet identity.
    pub id: NodeId,
    /// The node's platform (its truth namespace).
    pub platform: Platform,
    /// Replication counters (protocol side; fabric-side counters are
    /// folded in by the run loop).
    pub stats: FleetStats,
    machine: Machine,
    shared: Arc<SharedEas>,
    store_dir: PathBuf,
    /// Node epoch: strictly increases across restarts (fenced by the
    /// journal's snapshot generation via the start-time checkpoint).
    generation: u64,
    next_seq: u64,
    /// Per-origin retransmission logs (self included), each sorted by
    /// `(generation, seq)` by construction.
    logs: BTreeMap<NodeId, Vec<Envelope>>,
    /// Per-origin contiguous-prefix watermarks.
    watermarks: BTreeMap<NodeId, (u64, u64)>,
    replica: ReplicaTable,
    reprofile: ReprofileScheduler,
    published: HashMap<u64, PublishedState>,
    spans: SpanSink,
    span_count: u64,
}

impl std::fmt::Debug for FleetNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetNode")
            .field("id", &self.id)
            .field("platform", &self.platform.name)
            .field("generation", &self.generation)
            .field("next_seq", &self.next_seq)
            .field("replica_len", &self.replica.len())
            .finish_non_exhaustive()
    }
}

impl FleetNode {
    /// Starts (or restarts) a node over the journal at
    /// `store_root/node<id>`.
    ///
    /// Start always checkpoints first: the snapshot generation strictly
    /// increases, and the node's envelope epoch is that generation — so
    /// a restarted node can never reuse a `(generation, seq)` pair its
    /// previous life already published (epoch fencing). The recovered
    /// table is republished wholesale at the new epoch; peers supersede
    /// the old-generation facts by version order and converge.
    pub fn start(
        id: NodeId,
        platform: Platform,
        config: EasConfig,
        store_root: &Path,
        machine_seed: u64,
        reprofile_budget: usize,
    ) -> Result<FleetNode, StoreError> {
        FleetNode::start_with(
            id,
            platform,
            config,
            store_root,
            machine_seed,
            reprofile_budget,
            Arc::new(StdFs),
        )
    }

    /// [`start`](FleetNode::start) with an explicit [`Vfs`], so a fleet
    /// run can put each node's journal on its own fault-injecting
    /// filesystem (DESIGN.md §16).
    ///
    /// The start-time fencing checkpoint is retried a few times under
    /// injected faults (each attempt advances the chaos op stream). If
    /// the disk stays down the node still starts — degraded, with an
    /// in-memory epoch bump standing in for the durable one, so this
    /// life's envelopes cannot collide with the recovered generation.
    #[allow(clippy::too_many_arguments)]
    pub fn start_with(
        id: NodeId,
        platform: Platform,
        config: EasConfig,
        store_root: &Path,
        machine_seed: u64,
        reprofile_budget: usize,
        vfs: Arc<dyn Vfs>,
    ) -> Result<FleetNode, StoreError> {
        let store_dir = store_root.join(format!("node{id}"));
        let model = characterize(&platform, &CharacterizationConfig::default());
        let shared = SharedEas::with_persistence_vfs(model, config, &store_dir, vfs)?;
        let mut fenced = false;
        for _ in 0..START_CHECKPOINT_RETRIES {
            if shared.checkpoint().is_ok() {
                fenced = true;
                break;
            }
        }
        let store = shared.store().expect("with_persistence attaches a store");
        let generation = if fenced {
            store.generation()
        } else {
            store.generation() + 1
        };
        let machine = Machine::with_seed(platform.clone(), machine_seed);
        let mut node = FleetNode {
            id,
            platform,
            stats: FleetStats::default(),
            machine,
            shared,
            store_dir,
            generation,
            next_seq: 1,
            logs: BTreeMap::new(),
            watermarks: BTreeMap::new(),
            replica: ReplicaTable::new(),
            reprofile: ReprofileScheduler::new(reprofile_budget),
            published: HashMap::new(),
            spans: SpanSink::new(512, machine_seed),
            span_count: 0,
        };
        // Republish the recovered table at the new epoch so peers learn
        // this life's state even if they missed the previous one.
        node.publish_local();
        Ok(node)
    }

    /// The scheduler (for table/health inspection in tests and reports).
    pub fn shared(&self) -> &Arc<SharedEas> {
        &self.shared
    }

    /// The node's journal directory.
    pub fn store_dir(&self) -> &Path {
        &self.store_dir
    }

    /// The node's current epoch.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The convergent replica.
    pub fn replica(&self) -> &ReplicaTable {
        &self.replica
    }

    /// Replication spans recorded so far (kind
    /// [`SpanKind::Replication`], `tenant` = node id).
    pub fn spans(&self) -> Vec<Span> {
        self.spans.snapshot()
    }

    /// Kernels queued for re-profiling after replicated taints.
    pub fn reprofile_pending(&self) -> usize {
        self.reprofile.pending()
    }

    /// Runs one kernel invocation on this node's machine through the
    /// shared scheduler (profiling, α decision, journaling — the full
    /// single-node pipeline, untouched by replication).
    pub fn run_invocation(
        &mut self,
        kernel: u64,
        traits: &KernelTraits,
        items: u64,
        invocation_seed: u64,
    ) {
        let mut backend = SimBackend::new(&mut self.machine, traits, items, None, invocation_seed);
        self.shared.schedule_shared(kernel, &mut backend);
    }

    /// Checkpoints the journal (normal shutdown; a crash skips this).
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        self.shared.checkpoint()
    }

    /// This node's storage-health counters (DESIGN.md §16).
    pub fn store_health(&self) -> StoreHealth {
        self.shared
            .store()
            .expect("fleet nodes always persist")
            .health()
    }

    /// Quarantines a kernel locally (the fault pipeline's taint) so the
    /// next [`publish_local`](FleetNode::publish_local) streams it out.
    pub fn taint_local(&mut self, kernel: u64) {
        self.shared.table().taint(kernel);
    }

    /// Diffs the local table against what was last published and emits
    /// an envelope per change: `Put` when the learned state moved,
    /// `Taint` when only the quarantine flag flipped on. Envelopes
    /// self-apply immediately, so a node's own knowledge is part of its
    /// replica (and digest) without a network round-trip.
    pub fn publish_local(&mut self) {
        let mut snapshot = self.shared.table().snapshot_with_taint();
        // Shard iteration order is not deterministic; the wire order
        // must be.
        snapshot.sort_by_key(|(kernel, _, _)| *kernel);
        for (kernel, stat, tainted) in snapshot {
            let state = PublishedState {
                alpha_bits: stat.alpha.to_bits(),
                weight_bits: stat.weight.to_bits(),
                seen: stat.invocations_seen,
                tainted,
            };
            let prev = self.published.get(&kernel).copied();
            if prev == Some(state) {
                continue;
            }
            let stat_moved = prev.is_none_or(|p| {
                p.alpha_bits != state.alpha_bits
                    || p.weight_bits != state.weight_bits
                    || p.seen != state.seen
            });
            let op = if stat_moved {
                Op::Put {
                    kernel,
                    alpha: stat.alpha,
                    weight: stat.weight,
                    seen: stat.invocations_seen,
                    tainted,
                }
            } else {
                // Only the flag flipped. A flip *off* without a stat move
                // cannot happen (untainting goes through accumulate), but
                // degrade to a Put if it ever does.
                if tainted {
                    Op::Taint { kernel }
                } else {
                    Op::Put {
                        kernel,
                        alpha: stat.alpha,
                        weight: stat.weight,
                        seen: stat.invocations_seen,
                        tainted,
                    }
                }
            };
            self.published.insert(kernel, state);
            let env = Envelope {
                origin: self.id,
                platform: self.platform.name.to_string(),
                generation: self.generation,
                seq: self.next_seq,
                op,
            };
            self.next_seq += 1;
            self.watermarks.insert(self.id, (env.generation, env.seq));
            self.replica.apply(&env);
            self.logs.entry(self.id).or_default().push(env);
        }
    }

    /// The pull request this node sends each peer: its watermark vector.
    pub fn request_frame(&self, to: NodeId) -> Frame {
        let wants = self
            .watermarks
            .iter()
            .map(|(&origin, &(generation, seq))| (origin, generation, seq))
            .collect();
        Frame::request(self.id, to, wants)
    }

    /// Answers a peer's pull: for every origin this node has a log for,
    /// every envelope strictly above the peer's watermark, in
    /// `(generation, seq)` order, capped at [`MAX_ENTRIES_PER_FRAME`].
    pub fn answer_request(&self, from: NodeId, wants: &[(NodeId, u64, u64)]) -> Option<Frame> {
        let want_of = |origin: NodeId| -> (u64, u64) {
            wants
                .iter()
                .find(|(o, _, _)| *o == origin)
                .map(|&(_, g, s)| (g, s))
                .unwrap_or((0, 0))
        };
        let mut batch = Vec::new();
        for (&origin, log) in &self.logs {
            let (g, s) = want_of(origin);
            for env in log {
                if (env.generation, env.seq) > (g, s) {
                    batch.push(env.clone());
                    if batch.len() >= MAX_ENTRIES_PER_FRAME {
                        return Some(Frame::entries(self.id, from, batch));
                    }
                }
            }
        }
        (!batch.is_empty()).then(|| Frame::entries(self.id, from, batch))
    }

    /// Ingests one entries batch: contiguous-prefix admission per origin,
    /// max-merge into the replica, and local integration (priors,
    /// taints, reprofile queue). Returns how many envelopes advanced a
    /// watermark this pass.
    pub fn ingest_entries(&mut self, envelopes: &[Envelope], now_tick: u64) -> u64 {
        let mut advanced = 0u64;
        for env in envelopes {
            let wm = self.watermarks.get(&env.origin).copied().unwrap_or((0, 0));
            let admissible = (env.generation == wm.0 && env.seq == wm.1 + 1)
                || (env.generation > wm.0 && env.seq == 1);
            if !admissible {
                let stale = env.generation < wm.0 || (env.generation == wm.0 && env.seq <= wm.1);
                if stale {
                    self.stats.entries_rejected_stale += 1;
                } else {
                    self.stats.entries_deferred_gap += 1;
                }
                continue;
            }
            self.watermarks
                .insert(env.origin, (env.generation, env.seq));
            self.logs.entry(env.origin).or_default().push(env.clone());
            if let Applied::Advanced { conflict } = self.replica.apply(env) {
                if conflict {
                    self.stats.conflicts_resolved += 1;
                }
            }
            self.stats.entries_applied += 1;
            advanced += 1;
            if env.origin != self.id {
                self.integrate(env);
            }
        }
        self.emit_span(advanced, now_tick);
        advanced
    }

    /// Folds one foreign envelope into local scheduler state. Never
    /// writes learned table entries directly: untainted knowledge becomes
    /// a warm-start prior at most (profiling still runs, DESIGN.md §15);
    /// taints quarantine and queue a batched re-profile.
    fn integrate(&mut self, env: &Envelope) {
        let kernel = env.op.kernel();
        let tainted = match env.op {
            Op::Put { tainted, .. } => tainted,
            Op::Taint { .. } => true,
        };
        if tainted {
            self.stats.taints_replicated += 1;
            // A remote taint invalidates any hint derived from remote
            // knowledge, quarantines the local entry when the platform
            // matches (same silicon, same suspicion), and queues a
            // re-measurement — budgeted, so a taint storm cannot stall
            // the node.
            self.shared.table().clear_prior(kernel);
            if env.platform == self.platform.name {
                self.shared.table().taint(kernel);
            }
            if self.reprofile.enqueue(kernel) {
                self.stats.reprofiles_scheduled += 1;
            }
            return;
        }
        if let Op::Put { alpha, .. } = env.op {
            let table = self.shared.table();
            if alpha.is_finite() && table.stat(kernel).is_none() && table.prior(kernel).is_none() {
                table.set_prior(kernel, alpha);
                self.stats.priors_applied += 1;
            }
        }
    }

    /// Releases this round's reprofile batch: each released kernel's
    /// local entry is tainted so the scheduler re-profiles it on its next
    /// invocation (measurement, never belief transfer).
    pub fn release_reprofiles(&mut self) {
        for kernel in self.reprofile.take_batch() {
            if self.shared.table().stat(kernel).is_some() {
                self.shared.table().taint(kernel);
            }
        }
    }

    fn emit_span(&mut self, applied: u64, now_tick: u64) {
        self.span_count += 1;
        let mut span = [Span {
            seq: 0,
            trace: now_tick,
            kernel: 0,
            id: self.span_count as u16,
            parent: 0,
            kind: SpanKind::Replication,
            tenant: self.id,
            start: now_tick as f64,
            dur: 0.0,
            payload: applied as f64,
        }];
        self.spans.push_batch(now_tick, &mut span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FramePayload;
    use easched_core::Objective;

    fn test_node(id: NodeId, dir: &Path) -> FleetNode {
        FleetNode::start(
            id,
            Platform::haswell_desktop(),
            EasConfig::new(Objective::EnergyDelay),
            dir,
            1000 + u64::from(id),
            2,
        )
        .expect("node starts")
    }

    fn traits() -> KernelTraits {
        KernelTraits::builder("t")
            .cpu_rate(1.0e6)
            .gpu_rate(2.0e6)
            .build()
    }

    #[test]
    fn invocation_learns_and_publishes() {
        let dir = std::env::temp_dir().join(format!("fleet-node-pub-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut n = test_node(0, &dir);
        n.run_invocation(7, &traits(), 120_000, 1);
        n.publish_local();
        assert!(n.shared().learned_alpha(7).is_some());
        let entry = n.replica().entry("haswell-desktop", 7).expect("replica");
        assert_eq!(entry.alpha, n.shared().learned_alpha(7));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_bumps_the_epoch_and_republishes() {
        let dir = std::env::temp_dir().join(format!("fleet-node-epoch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut n = test_node(0, &dir);
        n.run_invocation(7, &traits(), 120_000, 1);
        n.publish_local();
        let gen1 = n.generation();
        let alpha = n.shared().learned_alpha(7);
        drop(n); // crash: no checkpoint
        let n2 = test_node(0, &dir);
        assert!(n2.generation() > gen1, "epoch fencing");
        assert_eq!(n2.shared().learned_alpha(7), alpha, "journal recovery");
        let entry = n2
            .replica()
            .entry("haswell-desktop", 7)
            .expect("republished");
        assert_eq!(entry.alpha, alpha);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pull_round_trip_moves_entries() {
        let base = std::env::temp_dir().join(format!("fleet-node-pull-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mut a = test_node(0, &base.join("a"));
        let mut b = test_node(1, &base.join("b"));
        a.run_invocation(7, &traits(), 120_000, 1);
        a.publish_local();
        let req = b.request_frame(0);
        let FramePayload::Request(wants) = &req.payload else {
            panic!("request frame");
        };
        let ent = a.answer_request(1, wants).expect("has news");
        let FramePayload::Entries(envs) = &ent.payload else {
            panic!("entries frame");
        };
        let applied = b.ingest_entries(envs, 0);
        assert!(applied > 0);
        assert_eq!(a.replica().digest(), b.replica().digest());
        // Re-ingesting the same batch is a no-op (idempotent).
        let again = b.ingest_entries(envs, 1);
        assert_eq!(again, 0);
        assert!(b.stats.entries_rejected_stale > 0);
        assert_eq!(a.replica().digest(), b.replica().digest());
        // B emitted replication spans, tenant-tagged with its id.
        let spans = b.spans();
        assert!(!spans.is_empty());
        assert!(spans
            .iter()
            .all(|s| s.kind == SpanKind::Replication && s.tenant == 1));
        let _ = std::fs::remove_dir_all(&base);
    }
}
