//! Fault-tolerant fleet replication: journal streaming across nodes with
//! chaos-hardened anti-entropy.
//!
//! Every node in a fleet runs its own full scheduler
//! ([`SharedEas`](easched_core::SharedEas)) on its own platform and
//! persists its own journal. This crate adds the replication plane on
//! top: nodes exchange journal-derived facts over a pull-based
//! anti-entropy protocol and converge — byte-identically — to the same
//! replica of the fleet's learned state, under message drops, duplicates,
//! reordering, torn frames, network partitions, and kill -9 node crashes.
//!
//! The load-bearing rules (DESIGN.md §15):
//!
//! - **Facts, not commands.** A node only ever replicates what its own
//!   journal says about *its own* platform; versions are
//!   `(generation, seq, origin)` and every merge is a max-merge, so apply
//!   order cannot matter.
//! - **Platforms are namespaces.** A Haswell α never overwrites a Bay
//!   Trail α. Cross-platform facts land as *warm-start priors* that
//!   narrow the first profiling search — they never skip profiling.
//! - **Taints travel.** A quarantined entry quarantines fleet-wide
//!   within one anti-entropy round, and a budgeted
//!   [`ReprofileScheduler`] re-measures on local silicon.
//! - **Chaos is not a fault.** Fabric counters live in [`FleetStats`],
//!   outside the scheduler's health plane: a torn frame must never trip
//!   `fault_free()`.
//!
//! [`run_fleet`] drives the whole thing deterministically from a
//! [`FleetSpec`] and records a v3 [`RunLog`](easched_replay::RunLog);
//! [`replay_fleet`] re-runs it and byte-compares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod node;
pub mod replica;
pub mod reprofile;
pub mod run;
pub mod stats;
pub mod transport;

pub use frame::{Envelope, Frame, FrameError, FramePayload, NodeId, Op, Version};
pub use node::{FleetNode, MAX_ENTRIES_PER_FRAME};
pub use replica::{Applied, EffectiveEntry, ReplicaTable};
pub use reprofile::ReprofileScheduler;
pub use run::{
    kernel_traits, platform_by_name, replay_fleet, run_fleet, CrashPlan, FleetError, FleetReport,
    FleetSpec, NodeReport, TaintPlan, MAX_DRAIN_ROUNDS,
};
pub use stats::{expose_fleet, expose_fleet_store, FleetStats};
pub use transport::{
    ChaosConfig, ChaosTransport, LinkStats, Partition, PerfectTransport, Transport,
};
