//! The deterministic fleet run loop: invocations, anti-entropy rounds,
//! chaos, crash/restart, convergence checking, and record/replay.
//!
//! One virtual tick = every live node runs its invocations, publishes
//! journal changes, and completes one pull round over the (possibly
//! chaotic) fabric. After the workload, drain rounds run anti-entropy
//! alone until every live replica reports the same digest twice in a row
//! (or the drain budget runs out — non-convergence is a *result*, not a
//! panic). The whole run is a pure function of its [`FleetSpec`]: the
//! recorded v3 [`RunLog`] replays byte-identically (DESIGN.md §15).

use crate::frame::{Frame, FramePayload, NodeId};
use crate::node::FleetNode;
use crate::stats::FleetStats;
use crate::transport::{ChaosConfig, ChaosTransport, Partition, Transport};
use easched_core::{fnv1a64, EasConfig, Objective, RunSeed, StoreError, StoreHealth};
use easched_replay::{Event, RunLog, FORMAT_VERSION_FLEET};
use easched_runtime::vfs::{ChaosFs, ChaosFsPlan, StdFs, Vfs};
use easched_runtime::TickClock;
use easched_sim::{KernelTraits, Platform};
use std::path::PathBuf;
use std::sync::Arc;

/// Drain rounds allowed after the workload before declaring
/// non-convergence.
pub const MAX_DRAIN_ROUNDS: u64 = 200;

/// A scheduled kill -9 (no checkpoint) and restart of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The node to kill.
    pub node: NodeId,
    /// Tick at which it dies (before invocations that tick).
    pub at_tick: u64,
    /// Tick at which it restarts from its journal.
    pub restart_at_tick: u64,
}

/// An injected taint (the fault pipeline quarantining an entry) used to
/// exercise fleet-wide quarantine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaintPlan {
    /// Tick to inject at (after that tick's invocations).
    pub at_tick: u64,
    /// Node whose local entry is tainted.
    pub node: NodeId,
    /// Index into the synthetic kernel set.
    pub kernel_index: u64,
}

/// Everything a fleet run depends on. Two runs with equal specs produce
/// byte-identical logs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Root seed; every stream derives from it (`RunSeed` discipline).
    pub seed: u64,
    /// Platform preset name per node (index = node id).
    pub platforms: Vec<String>,
    /// Workload ticks.
    pub ticks: u64,
    /// Invocations per node per tick.
    pub invocations_per_tick: u64,
    /// Items per invocation.
    pub items_per_invocation: u64,
    /// Synthetic kernel pool size (kernels cycle round-robin, staggered
    /// per node so priors matter).
    pub kernels: u64,
    /// Reprofile releases per node per tick.
    pub reprofile_budget: usize,
    /// Fabric fault profile.
    pub chaos: ChaosConfig,
    /// Optional kill/restart schedule.
    pub crash: Option<CrashPlan>,
    /// Optional taint injection.
    pub taint: Option<TaintPlan>,
    /// Optional storage-chaos rate (per-mille, [`ChaosFsPlan::storm`]):
    /// each node's journal goes on its own deterministic fault-injecting
    /// filesystem, seeded per node (DESIGN.md §16). `None` keeps plain
    /// disk I/O and the pre-chaos wire format.
    pub chaos_fs: Option<u16>,
    /// Journal root; each node stores under `<root>/node<id>`. Empty
    /// means a per-run temp directory (removed afterwards).
    pub store_root: PathBuf,
}

impl FleetSpec {
    /// A 3-node fleet (one of each calibrated platform) under the
    /// default chaos profile.
    pub fn three_nodes(seed: u64) -> FleetSpec {
        FleetSpec {
            seed,
            platforms: vec![
                "haswell-desktop".into(),
                "baytrail-tablet".into(),
                "skylake-minipc".into(),
            ],
            ticks: 6,
            invocations_per_tick: 2,
            items_per_invocation: 60_000,
            kernels: 4,
            reprofile_budget: 2,
            chaos: ChaosConfig::default(),
            crash: None,
            taint: None,
            chaos_fs: None,
            store_root: PathBuf::new(),
        }
    }

    /// Serializes the spec as the log's first fleet line (single line,
    /// whitespace-delimited; see [`FleetSpec::from_line`]).
    pub fn to_line(&self) -> String {
        let platforms = self.platforms.join(",");
        let partitions = if self.chaos.partitions.is_empty() {
            "-".to_string()
        } else {
            self.chaos
                .partitions
                .iter()
                .map(|p| format!("{}:{}:{}:{}", p.a, p.b, p.from_tick, p.to_tick))
                .collect::<Vec<_>>()
                .join(",")
        };
        let crash = self.crash.map_or("-".to_string(), |c| {
            format!("{}:{}:{}", c.node, c.at_tick, c.restart_at_tick)
        });
        let taint = self.taint.map_or("-".to_string(), |t| {
            format!("{}:{}:{}", t.at_tick, t.node, t.kernel_index)
        });
        let mut line = format!(
            "spec v1 seed {:016x} platforms {platforms} ticks {} inv {} items {} kernels {} \
             budget {} chaos {} {} {} {} {} partitions {partitions} crash {crash} taint {taint}",
            self.seed,
            self.ticks,
            self.invocations_per_tick,
            self.items_per_invocation,
            self.kernels,
            self.reprofile_budget,
            self.chaos.drop_per_mille,
            self.chaos.duplicate_per_mille,
            self.chaos.reorder_per_mille,
            self.chaos.torn_per_mille,
            self.chaos.max_delay_ticks,
        );
        // Trailing optional token: emitted only when set, so every
        // pre-storage-chaos log — committed fixtures included — stays
        // byte-stable.
        if let Some(rate) = self.chaos_fs {
            line.push_str(&format!(" chaosfs {rate}"));
        }
        line
    }

    /// Parses a spec line (the inverse of [`FleetSpec::to_line`]). The
    /// store root is *not* carried on the wire — replay supplies its own.
    pub fn from_line(line: &str) -> Option<FleetSpec> {
        // Grammar is positional keyword-value; walk it directly.
        let mut p = line.split_whitespace();
        if p.next() != Some("spec") || p.next() != Some("v1") {
            return None;
        }
        fn expect(p: &mut std::str::SplitWhitespace<'_>, word: &str) -> Option<()> {
            (p.next()? == word).then_some(())
        }
        expect(&mut p, "seed")?;
        let seed = u64::from_str_radix(p.next()?, 16).ok()?;
        expect(&mut p, "platforms")?;
        let platforms: Vec<String> = p.next()?.split(',').map(str::to_string).collect();
        expect(&mut p, "ticks")?;
        let ticks = p.next()?.parse().ok()?;
        expect(&mut p, "inv")?;
        let invocations_per_tick = p.next()?.parse().ok()?;
        expect(&mut p, "items")?;
        let items_per_invocation = p.next()?.parse().ok()?;
        expect(&mut p, "kernels")?;
        let kernels = p.next()?.parse().ok()?;
        expect(&mut p, "budget")?;
        let reprofile_budget = p.next()?.parse().ok()?;
        expect(&mut p, "chaos")?;
        let chaos = ChaosConfig {
            drop_per_mille: p.next()?.parse().ok()?,
            duplicate_per_mille: p.next()?.parse().ok()?,
            reorder_per_mille: p.next()?.parse().ok()?,
            torn_per_mille: p.next()?.parse().ok()?,
            max_delay_ticks: p.next()?.parse().ok()?,
            partitions: Vec::new(),
        };
        expect(&mut p, "partitions")?;
        let partitions_word = p.next()?;
        let mut chaos = chaos;
        if partitions_word != "-" {
            for part in partitions_word.split(',') {
                let mut f = part.split(':');
                chaos.partitions.push(Partition {
                    a: f.next()?.parse().ok()?,
                    b: f.next()?.parse().ok()?,
                    from_tick: f.next()?.parse().ok()?,
                    to_tick: f.next()?.parse().ok()?,
                });
                if f.next().is_some() {
                    return None;
                }
            }
        }
        expect(&mut p, "crash")?;
        let crash_word = p.next()?;
        let crash = if crash_word == "-" {
            None
        } else {
            let mut f = crash_word.split(':');
            let plan = CrashPlan {
                node: f.next()?.parse().ok()?,
                at_tick: f.next()?.parse().ok()?,
                restart_at_tick: f.next()?.parse().ok()?,
            };
            if f.next().is_some() {
                return None;
            }
            Some(plan)
        };
        expect(&mut p, "taint")?;
        let taint_word = p.next()?;
        let taint = if taint_word == "-" {
            None
        } else {
            let mut f = taint_word.split(':');
            let plan = TaintPlan {
                at_tick: f.next()?.parse().ok()?,
                node: f.next()?.parse().ok()?,
                kernel_index: f.next()?.parse().ok()?,
            };
            if f.next().is_some() {
                return None;
            }
            Some(plan)
        };
        let chaos_fs = match p.next() {
            None => None,
            Some("chaosfs") => Some(p.next()?.parse().ok()?),
            Some(_) => return None,
        };
        if p.next().is_some() {
            return None;
        }
        Some(FleetSpec {
            seed,
            platforms,
            ticks,
            invocations_per_tick,
            items_per_invocation,
            kernels,
            reprofile_budget,
            chaos,
            crash,
            taint,
            chaos_fs,
            store_root: PathBuf::new(),
        })
    }
}

/// Resolves a platform preset by its `name` field.
pub fn platform_by_name(name: &str) -> Option<Platform> {
    [
        Platform::haswell_desktop(),
        Platform::baytrail_tablet(),
        Platform::skylake_minipc(),
    ]
    .into_iter()
    .find(|p| p.name == name)
}

/// The synthetic kernel pool: deterministic per-kernel device rates,
/// spread so the α optimum differs between kernels (and, through the
/// machine model, between platforms).
pub fn kernel_traits(index: u64) -> (u64, KernelTraits) {
    let kernel_id = 100 + index;
    let cpu = 1.0e6 * (1.0 + 0.4 * index as f64);
    let gpu = 2.0e6 * (1.0 + 0.3 * ((index * 3) % 5) as f64);
    let traits = KernelTraits::builder(format!("fleet-k{index}"))
        .cpu_rate(cpu)
        .gpu_rate(gpu)
        .build();
    (kernel_id, traits)
}

/// One node's slice of the final report.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node id.
    pub id: NodeId,
    /// Platform name.
    pub platform: String,
    /// Label used in the Prometheus exposition (`node<id>`).
    pub label: String,
    /// Replication counters, crash-carryover included.
    pub stats: FleetStats,
    /// Learned table entries at the end.
    pub table_len: usize,
    /// Warm-start priors still pending (not yet superseded by local
    /// learning).
    pub priors_pending: usize,
    /// Scheduler health: replication must leave `fault_free()` true on a
    /// chaos-free *scheduler* path (fabric chaos is not scheduler
    /// faults).
    pub fault_free: bool,
    /// Storage-health counters for this node's journal (all zero unless
    /// the run injected storage chaos; see DESIGN.md §16).
    pub store: StoreHealth,
    /// Final replica digest.
    pub digest: u64,
}

/// The outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Whether every live replica reported the same digest (stable for
    /// two consecutive drain rounds).
    pub converged: bool,
    /// Drain rounds it took (0 = converged during the workload).
    pub drain_rounds: u64,
    /// The converged digest (of the first node, if not converged).
    pub digest: u64,
    /// The converged digest text (diagnostics; canonical form).
    pub digest_text: String,
    /// Per-node outcomes.
    pub nodes: Vec<NodeReport>,
    /// The sealed v3 run log (replayable via [`replay_fleet`]).
    pub log: RunLog,
}

/// Why a fleet run could not execute.
#[derive(Debug)]
pub enum FleetError {
    /// A platform name in the spec matched no preset.
    UnknownPlatform(String),
    /// Spec shape is unusable (no nodes, crash node out of range, ...).
    BadSpec(String),
    /// A node's journal failed to open or recover.
    Store(StoreError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownPlatform(name) => write!(f, "unknown platform preset {name:?}"),
            FleetError::BadSpec(why) => write!(f, "bad fleet spec: {why}"),
            FleetError::Store(e) => write!(f, "journal error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<StoreError> for FleetError {
    fn from(e: StoreError) -> FleetError {
        FleetError::Store(e)
    }
}

struct RunState {
    nodes: Vec<Option<FleetNode>>,
    /// Stats carried over from a node's previous life (crash loses the
    /// in-memory node, not its history in the report).
    carryover: Vec<FleetStats>,
    transport: ChaosTransport,
    lines: Vec<String>,
}

fn fold(into: &mut FleetStats, from: FleetStats) {
    into.frames_sent += from.frames_sent;
    into.frames_dropped += from.frames_dropped;
    into.frames_duplicated += from.frames_duplicated;
    into.frames_torn += from.frames_torn;
    into.frames_partitioned += from.frames_partitioned;
    into.entries_applied += from.entries_applied;
    into.entries_rejected_stale += from.entries_rejected_stale;
    into.entries_deferred_gap += from.entries_deferred_gap;
    into.conflicts_resolved += from.conflicts_resolved;
    into.priors_applied += from.priors_applied;
    into.taints_replicated += from.taints_replicated;
    into.reprofiles_scheduled += from.reprofiles_scheduled;
}

/// Runs a fleet to completion. Deterministic in the spec; see the module
/// docs for the tick structure.
pub fn run_fleet(spec: &FleetSpec) -> Result<FleetReport, FleetError> {
    if spec.platforms.is_empty() {
        return Err(FleetError::BadSpec("no nodes".into()));
    }
    if spec.kernels == 0 {
        return Err(FleetError::BadSpec("no kernels".into()));
    }
    if let Some(c) = spec.crash {
        if usize::from(c.node) >= spec.platforms.len() {
            return Err(FleetError::BadSpec(format!(
                "crash node {} out of range",
                c.node
            )));
        }
        if c.restart_at_tick <= c.at_tick {
            return Err(FleetError::BadSpec("restart before crash".into()));
        }
    }
    let seed = RunSeed::new(spec.seed);
    let (store_root, scratch) = if spec.store_root.as_os_str().is_empty() {
        let dir = std::env::temp_dir().join(format!(
            "easched-fleet-{}-{:016x}",
            std::process::id(),
            seed.derive("fleet/scratch")
        ));
        (dir, true)
    } else {
        (spec.store_root.clone(), false)
    };

    let config = EasConfig::new(Objective::EnergyDelay);
    let start_node = |id: NodeId| -> Result<FleetNode, FleetError> {
        let name = &spec.platforms[usize::from(id)];
        let platform =
            platform_by_name(name).ok_or_else(|| FleetError::UnknownPlatform(name.clone()))?;
        // Per-node fault stream, reseeded (deterministically) on every
        // start: a restarted node replays the same fault schedule its
        // previous life saw, so crash/restart plans stay byte-stable.
        let vfs: Arc<dyn Vfs> = match spec.chaos_fs {
            None => Arc::new(StdFs),
            Some(rate) => Arc::new(ChaosFs::new(
                seed.derive_indexed("fleet/chaosfs", u64::from(id)),
                ChaosFsPlan::storm(rate),
                Arc::new(TickClock::new()),
            )),
        };
        Ok(FleetNode::start_with(
            id,
            platform,
            config.clone(),
            &store_root,
            seed.derive_indexed("fleet/machine", u64::from(id)),
            spec.reprofile_budget,
            vfs,
        )?)
    };

    let mut state = RunState {
        nodes: Vec::new(),
        carryover: vec![FleetStats::default(); spec.platforms.len()],
        transport: ChaosTransport::new(
            spec.platforms.len(),
            seed.derive("fleet"),
            spec.chaos.clone(),
        ),
        lines: vec![spec.to_line()],
    };
    for id in 0..spec.platforms.len() {
        state.nodes.push(Some(start_node(id as NodeId)?));
    }

    // ---- Workload ticks ------------------------------------------------
    for tick in 0..spec.ticks {
        if let Some(c) = spec.crash {
            if c.at_tick == tick {
                // kill -9: drop without checkpoint; the fabric loses the
                // node's in-flight frames with it.
                if let Some(dead) = state.nodes[usize::from(c.node)].take() {
                    fold(&mut state.carryover[usize::from(c.node)], dead.stats);
                    state.lines.push(format!("crash {} tick {tick}", c.node));
                }
                state.transport.reset(c.node);
            }
            if c.restart_at_tick == tick && state.nodes[usize::from(c.node)].is_none() {
                let node = start_node(c.node)?;
                state.lines.push(format!(
                    "restart {} tick {tick} gen {}",
                    c.node,
                    node.generation()
                ));
                state.nodes[usize::from(c.node)] = Some(node);
            }
        }

        for slot in state.nodes.iter_mut() {
            let Some(node) = slot else { continue };
            node.release_reprofiles();
            for i in 0..spec.invocations_per_tick {
                let stride = tick * spec.invocations_per_tick + i;
                // Stagger the cycle per node so each platform meets each
                // kernel at a different time — the prior pathway.
                let index = (stride + u64::from(node.id)) % spec.kernels;
                let (kernel, traits) = kernel_traits(index);
                let inv_seed =
                    seed.derive_indexed("fleet/invocation", (u64::from(node.id) << 32) | stride);
                node.run_invocation(kernel, &traits, spec.items_per_invocation, inv_seed);
            }
            node.publish_local();
        }

        if let Some(t) = spec.taint {
            if t.at_tick == tick {
                if let Some(node) = state.nodes[usize::from(t.node)].as_mut() {
                    let (kernel, _) = kernel_traits(t.kernel_index % spec.kernels);
                    node.taint_local(kernel);
                    node.publish_local();
                    state
                        .lines
                        .push(format!("taint {} tick {tick} kernel {kernel:016x}", t.node));
                }
            }
        }

        anti_entropy_round(&mut state, tick);

        for slot in state.nodes.iter() {
            let Some(node) = slot else { continue };
            let s = node.stats;
            state.lines.push(format!(
                "tick {tick} node {} digest {:016x} applied {} stale {} gap {} conflicts {} \
                 priors {} taints {}",
                node.id,
                node.replica().digest(),
                s.entries_applied,
                s.entries_rejected_stale,
                s.entries_deferred_gap,
                s.conflicts_resolved,
                s.priors_applied,
                s.taints_replicated,
            ));
        }
    }

    // Restart scheduled after the workload window still happens before
    // draining (the drain must include every configured node).
    if let Some(c) = spec.crash {
        if state.nodes[usize::from(c.node)].is_none() {
            let node = start_node(c.node)?;
            state.lines.push(format!(
                "restart {} drain gen {}",
                c.node,
                node.generation()
            ));
            state.nodes[usize::from(c.node)] = Some(node);
        }
    }

    // ---- Drain to convergence -----------------------------------------
    let mut drain_rounds = 0u64;
    let mut stable_rounds = 0u32;
    let converged = loop {
        let digests: Vec<u64> = state
            .nodes
            .iter()
            .flatten()
            .map(|n| n.replica().digest())
            .collect();
        let all_equal = digests.windows(2).all(|w| w[0] == w[1]);
        if all_equal {
            stable_rounds += 1;
            // Two consecutive quiet-and-equal rounds: nothing in flight
            // could still diverge us.
            if stable_rounds >= 2 {
                break true;
            }
        } else {
            stable_rounds = 0;
        }
        if drain_rounds >= MAX_DRAIN_ROUNDS {
            break false;
        }
        anti_entropy_round(&mut state, spec.ticks + drain_rounds);
        drain_rounds += 1;
    };

    // ---- Report --------------------------------------------------------
    let mut nodes_report = Vec::new();
    let mut digest = 0u64;
    let mut digest_text = String::new();
    for slot in state.nodes.iter() {
        let Some(node) = slot else { continue };
        if nodes_report.is_empty() {
            digest = node.replica().digest();
            digest_text = node.replica().digest_text();
        }
        let mut stats = state.carryover[usize::from(node.id)];
        fold(&mut stats, node.stats);
        let store = node.store_health();
        nodes_report.push(NodeReport {
            id: node.id,
            platform: node.platform.name.to_string(),
            label: format!("node{}", node.id),
            stats,
            table_len: node.shared().table().len(),
            priors_pending: node.shared().table().prior_count(),
            fault_free: node.shared().health().fault_free(),
            store,
            digest: node.replica().digest(),
        });
        if spec.chaos_fs.is_some() {
            // Storage-health lines ride the recorded log only on chaos
            // runs (the fault stream is seed-deterministic, so replay
            // reproduces them byte-identically); fault-free logs stay
            // byte-stable.
            state.lines.push(format!(
                "storehealth node {} io {} degraded {} transitions {} rearms {} dropped {}",
                node.id,
                store.io_errors,
                u8::from(store.degraded),
                store.degraded_transitions,
                store.rearms,
                store.buffered_dropped,
            ));
        }
        // Normal shutdown checkpoints; tests reopen the stores. Under
        // injected storage faults the checkpoint may legitimately fail —
        // the node ends degraded rather than failing the whole run.
        match node.checkpoint() {
            Ok(()) => {}
            Err(e) if spec.chaos_fs.is_some() => {
                state
                    .lines
                    .push(format!("checkpoint node {} failed {e}", node.id));
            }
            Err(e) => return Err(e.into()),
        }
    }
    state.lines.push(format!(
        "converged {} rounds {drain_rounds} digest {digest:016x}",
        u8::from(converged)
    ));

    let events = state
        .lines
        .iter()
        .map(|line| Event::Fleet { line: line.clone() })
        .collect();
    let log = RunLog {
        version: FORMAT_VERSION_FLEET,
        root: spec.seed,
        platform_fp: fnv1a64(spec.platforms.join(",").as_bytes()),
        config_fp: fnv1a64(spec.to_line().as_bytes()),
        events,
        complete: true,
    };

    if scratch {
        let _ = std::fs::remove_dir_all(&store_root);
    }

    Ok(FleetReport {
        converged,
        drain_rounds,
        digest,
        digest_text,
        nodes: nodes_report,
        log,
    })
}

/// One full pull round: requests out, two delivery passes (so a
/// request → entries exchange completes within the round on a quiet
/// fabric), fabric stats folded back per node.
fn anti_entropy_round(state: &mut RunState, tick: u64) {
    let live: Vec<NodeId> = state.nodes.iter().flatten().map(|n| n.id).collect();
    for &id in &live {
        let node = state.nodes[usize::from(id)].as_mut().expect("live");
        for &peer in &live {
            if peer == id {
                continue;
            }
            let frame = node.request_frame(peer);
            node.stats.frames_sent += 1;
            state.transport.send(id, peer, frame.encode());
        }
    }
    for _pass in 0..2 {
        state.transport.tick();
        for &id in &live {
            let inbox = state.transport.poll(id);
            let mut responses: Vec<(NodeId, String)> = Vec::new();
            {
                let node = state.nodes[usize::from(id)].as_mut().expect("live");
                for text in inbox {
                    match Frame::decode(&text) {
                        Err(_) => node.stats.frames_torn += 1,
                        Ok(frame) => match frame.payload {
                            FramePayload::Request(wants) => {
                                if let Some(reply) = node.answer_request(frame.from, &wants) {
                                    node.stats.frames_sent += 1;
                                    responses.push((frame.from, reply.encode()));
                                }
                            }
                            FramePayload::Entries(envelopes) => {
                                node.ingest_entries(&envelopes, tick);
                            }
                        },
                    }
                }
            }
            for (to, text) in responses {
                state.transport.send(id, to, text);
            }
        }
    }
    // Fold fabric-side attribution into node counters (levels, not
    // deltas: the fabric keeps absolutes, so compute the difference).
    for &id in &live {
        let link = state.transport.link_stats(id);
        let node = state.nodes[usize::from(id)].as_mut().expect("live");
        node.stats.frames_dropped = link.dropped;
        node.stats.frames_duplicated = link.duplicated;
        node.stats.frames_partitioned = link.partitioned;
    }
}

/// Re-runs a recorded fleet log and byte-compares the regenerated event
/// stream. `Ok` carries the fresh report; `Err` names the first
/// divergence (or why the log is not a fleet log).
pub fn replay_fleet(recorded: &RunLog, store_root: PathBuf) -> Result<FleetReport, String> {
    let lines = recorded.fleet_lines();
    let first = lines
        .first()
        .ok_or_else(|| "log carries no fleet events".to_string())?;
    let mut spec =
        FleetSpec::from_line(first).ok_or_else(|| format!("unparseable fleet spec: {first}"))?;
    spec.store_root = store_root;
    let report = run_fleet(&spec).map_err(|e| e.to_string())?;
    let fresh = report.log.fleet_lines();
    if fresh.len() != lines.len() {
        return Err(format!(
            "event count diverged: recorded {} vs replayed {}",
            lines.len(),
            fresh.len()
        ));
    }
    for (i, (a, b)) in lines.iter().zip(&fresh).enumerate() {
        if a != b {
            return Err(format!(
                "first divergence at fleet event {i}:\n  recorded: {a}\n  replayed: {b}"
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_line_round_trips() {
        let mut spec = FleetSpec::three_nodes(0x2a);
        spec.chaos.partitions.push(Partition {
            a: 0,
            b: 2,
            from_tick: 1,
            to_tick: 4,
        });
        spec.crash = Some(CrashPlan {
            node: 1,
            at_tick: 2,
            restart_at_tick: 4,
        });
        spec.taint = Some(TaintPlan {
            at_tick: 3,
            node: 0,
            kernel_index: 1,
        });
        let line = spec.to_line();
        let back = FleetSpec::from_line(&line).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn kernel_pool_is_deterministic_and_distinct() {
        let (id0, t0) = kernel_traits(0);
        let (id1, t1) = kernel_traits(1);
        assert_ne!(id0, id1);
        assert_ne!(t0.cpu_rate(), t1.cpu_rate());
        assert_eq!(kernel_traits(0).1.cpu_rate(), t0.cpu_rate());
    }

    #[test]
    fn spec_line_round_trips_with_chaos_fs() {
        let mut spec = FleetSpec::three_nodes(0x2b);
        spec.chaos_fs = Some(150);
        let line = spec.to_line();
        assert!(line.ends_with("chaosfs 150"), "{line}");
        let back = FleetSpec::from_line(&line).expect("parses");
        assert_eq!(back, spec);
        // The pre-chaos wire format stays accepted (old fixtures).
        spec.chaos_fs = None;
        assert_eq!(FleetSpec::from_line(&spec.to_line()), Some(spec));
    }

    #[test]
    fn storage_chaos_fleet_converges_and_replays_byte_identically() {
        let base = std::env::temp_dir().join(format!("fleet-chaosfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mut spec = FleetSpec::three_nodes(7);
        spec.chaos_fs = Some(200);
        spec.crash = Some(CrashPlan {
            node: 1,
            at_tick: 2,
            restart_at_tick: 4,
        });
        spec.store_root = base.join("record");
        let report = run_fleet(&spec).expect("chaotic disks never fail the run");
        assert!(report.converged, "replication is storage-independent");
        let injected: u64 = report.nodes.iter().map(|n| n.store.io_errors).sum();
        assert!(injected > 0, "a 20% write-fault storm must land something");
        for node in &report.nodes {
            assert!(node.fault_free, "storage faults stay out of fault_free");
        }
        let replayed = replay_fleet(&report.log, base.join("replay")).expect("byte-identical");
        assert_eq!(replayed.digest, report.digest);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn unknown_platform_is_an_error() {
        let mut spec = FleetSpec::three_nodes(1);
        spec.platforms[1] = "pentium-pro".into();
        assert!(matches!(
            run_fleet(&spec),
            Err(FleetError::UnknownPlatform(_))
        ));
    }
}
