//! Per-node replication counters and their Prometheus exposition.
//!
//! These are *fabric* and *protocol* counters, deliberately separate from
//! the scheduler's [`HealthReport`](easched_core::HealthReport): dropped
//! or torn frames are the chaos environment doing its job, not scheduler
//! faults, so they must never disturb `fault_free()` (DESIGN.md §15).

use easched_core::StoreHealth;
use easched_telemetry::metrics::escape_label_value;

/// One node's replication counters. Plain integers — the fleet loop is
/// single-threaded, so no atomics are needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Frames this node sent (requests and entry batches).
    pub frames_sent: u64,
    /// Frames destined to this node the fabric dropped.
    pub frames_dropped: u64,
    /// Frames destined to this node the fabric duplicated.
    pub frames_duplicated: u64,
    /// Frames that arrived torn or corrupt and were rejected whole.
    pub frames_torn: u64,
    /// Frames refused because a partition severed the link.
    pub frames_partitioned: u64,
    /// Envelopes applied (fresh watermark advances).
    pub entries_applied: u64,
    /// Envelopes skipped as duplicates or stale generations.
    pub entries_rejected_stale: u64,
    /// Envelopes deferred because an earlier seq had not arrived yet
    /// (reordering; the gap closes on a later pull).
    pub entries_deferred_gap: u64,
    /// Replica facts where a newer version superseded a different
    /// origin's fact (LWW conflict resolutions).
    pub conflicts_resolved: u64,
    /// Cross-platform entries installed as warm-start priors.
    pub priors_applied: u64,
    /// Taints ingested from other nodes.
    pub taints_replicated: u64,
    /// Kernels this node's reprofile scheduler queued after a
    /// replicated taint.
    pub reprofiles_scheduled: u64,
}

impl FleetStats {
    /// Renders this node's counters as Prometheus text-exposition lines
    /// labelled `node="<name>"`. Callers concatenate one block per node;
    /// `# TYPE` preambles come from [`expose_fleet`].
    fn expose_into(&self, out: &mut String, node: &str) {
        let node = escape_label_value(node);
        let mut line = |metric: &str, v: u64| {
            out.push_str(&format!("easched_fleet_{metric}{{node=\"{node}\"}} {v}\n"));
        };
        line("frames_sent_total", self.frames_sent);
        line("frames_dropped_total", self.frames_dropped);
        line("frames_duplicated_total", self.frames_duplicated);
        line("frames_torn_total", self.frames_torn);
        line("frames_partitioned_total", self.frames_partitioned);
        line("entries_applied_total", self.entries_applied);
        line("entries_rejected_stale_total", self.entries_rejected_stale);
        line("entries_deferred_gap_total", self.entries_deferred_gap);
        line("conflicts_resolved_total", self.conflicts_resolved);
        line("priors_applied_total", self.priors_applied);
        line("taints_replicated_total", self.taints_replicated);
        line("reprofiles_scheduled_total", self.reprofiles_scheduled);
    }
}

/// Renders every node's replication counters as one Prometheus
/// text-exposition page fragment (counters only; append it to a
/// [`MetricsRegistry::expose`](easched_telemetry::MetricsRegistry::expose)
/// page or serve it standalone).
pub fn expose_fleet(nodes: &[(String, FleetStats)]) -> String {
    let mut out = String::new();
    out.push_str("# HELP easched_fleet Replication fabric and anti-entropy counters per node\n");
    out.push_str("# TYPE easched_fleet counter\n");
    for (name, stats) in nodes {
        stats.expose_into(&mut out, name);
    }
    out
}

/// Renders every node's journal storage-health counters (DESIGN.md §16)
/// as a page fragment beside [`expose_fleet`]: the single-node
/// `easched_store_*` series, node-labelled.
pub fn expose_fleet_store(nodes: &[(String, StoreHealth)]) -> String {
    let mut out = String::new();
    out.push_str("# HELP easched_store Per-node journal storage health\n");
    out.push_str("# TYPE easched_store counter\n");
    for (name, health) in nodes {
        let node = escape_label_value(name);
        let mut line = |metric: &str, v: u64| {
            out.push_str(&format!("easched_store_{metric}{{node=\"{node}\"}} {v}\n"));
        };
        line("io_errors", health.io_errors);
        line("degraded", u64::from(health.degraded));
        line("bytes", health.bytes_written);
        line("degraded_transitions", health.degraded_transitions);
        line("rearms", health.rearms);
        line("buffered_dropped", health.buffered_dropped);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_prometheus_shaped_with_node_labels() {
        let stats = FleetStats {
            frames_sent: 12,
            frames_dropped: 3,
            conflicts_resolved: 1,
            ..FleetStats::default()
        };
        let page = expose_fleet(&[("node0".into(), stats), ("node1".into(), stats)]);
        assert!(page.contains("easched_fleet_frames_sent_total{node=\"node0\"} 12"));
        assert!(page.contains("easched_fleet_conflicts_resolved_total{node=\"node1\"} 1"));
        // Every non-comment line is `name{node="..."} value`.
        for line in page.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.starts_with("easched_fleet_") && line.contains("{node=\""),
                "{line}"
            );
        }
    }

    #[test]
    fn hostile_node_names_are_escaped() {
        let page = expose_fleet(&[("a\"b\\c\nd".into(), FleetStats::default())]);
        assert!(page.contains("node=\"a\\\"b\\\\c\\nd\""), "{page}");
    }

    #[test]
    fn store_health_exposes_per_node() {
        let healthy = StoreHealth::default();
        let sick = StoreHealth {
            io_errors: 4,
            degraded: true,
            bytes_written: 512,
            degraded_transitions: 1,
            rearms: 0,
            buffered_dropped: 2,
            ..StoreHealth::default()
        };
        let page = expose_fleet_store(&[("node0".into(), healthy), ("node1".into(), sick)]);
        assert!(page.contains("easched_store_io_errors{node=\"node0\"} 0"));
        assert!(page.contains("easched_store_io_errors{node=\"node1\"} 4"));
        assert!(page.contains("easched_store_degraded{node=\"node1\"} 1"));
        assert!(page.contains("easched_store_bytes{node=\"node1\"} 512"));
        assert!(page.contains("easched_store_buffered_dropped{node=\"node1\"} 2"));
        for line in page.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.starts_with("easched_store_") && line.contains("{node=\""),
                "{line}"
            );
        }
    }
}
