//! The convergent replica: every node's view of the whole fleet's tables.
//!
//! Keyed by `(platform, kernel)`, each fact keeps the max-version `Put`
//! and the max-version `Taint` *separately* (DESIGN.md §15). The
//! effective state overlays them: a taint newer than the newest put wins
//! (the entry is quarantined until its owner republishes), otherwise the
//! put's own taint flag stands. Because both sides are pure max-merges,
//! apply order cannot matter — `Put(v₁)` then `Taint(v₂)` and the reverse
//! land in the same state — which is the whole convergence argument.
//!
//! The [`digest`](ReplicaTable::digest) serializes *effective* state
//! only, never version metadata: after a crash/restart some nodes hold a
//! superseded old-generation fact that others never saw, and that
//! asymmetry is invisible exactly because versions stay out of the hash.

use crate::frame::{Envelope, NodeId, Op, Version};
use easched_core::fnv1a64;
use std::collections::BTreeMap;

/// The max-version `Put` body for one `(platform, kernel)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PutFact {
    version: Version,
    alpha: f64,
    weight: f64,
    seen: u64,
    tainted: bool,
}

/// One `(platform, kernel)` fact: independent put and taint maxima.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Fact {
    put: Option<PutFact>,
    taint: Option<Version>,
}

/// The effective (version-free) state of one replicated entry.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectiveEntry {
    /// Platform namespace the entry is truth in.
    pub platform: String,
    /// Kernel id.
    pub kernel: u64,
    /// Learned offload ratio (absent for a taint with no surviving put).
    pub alpha: Option<f64>,
    /// Accumulated sample weight.
    pub weight: f64,
    /// Invocations the origin had observed.
    pub seen: u64,
    /// Whether the entry is currently quarantined fleet-wide.
    pub tainted: bool,
    /// The node whose put currently defines the entry (the max-version
    /// origin; the taint origin if no put survives).
    pub origin: NodeId,
}

/// What applying one envelope did to the replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// The fact advanced (fresh maximum).
    Advanced {
        /// An older fact from a *different* origin was superseded —
        /// a genuine cross-node conflict resolved by version order.
        conflict: bool,
    },
    /// The envelope was at or below the stored maximum — idempotent no-op.
    Stale,
}

/// A node's replica of the fleet's learned state.
#[derive(Debug, Clone, Default)]
pub struct ReplicaTable {
    facts: BTreeMap<(String, u64), Fact>,
}

impl ReplicaTable {
    /// An empty replica.
    pub fn new() -> ReplicaTable {
        ReplicaTable::default()
    }

    /// Merges one envelope. Pure max-merge per fact side: idempotent,
    /// commutative, monotone.
    pub fn apply(&mut self, env: &Envelope) -> Applied {
        let key = (env.platform.clone(), env.op.kernel());
        let fact = self.facts.entry(key).or_default();
        let version = env.version();
        match env.op {
            Op::Put {
                alpha,
                weight,
                seen,
                tainted,
                ..
            } => {
                let current = fact.put.map(|p| p.version);
                if current.is_some_and(|v| v >= version) {
                    return Applied::Stale;
                }
                let conflict = fact.put.is_some_and(|p| p.version.origin != version.origin);
                fact.put = Some(PutFact {
                    version,
                    alpha,
                    weight,
                    seen,
                    tainted,
                });
                Applied::Advanced { conflict }
            }
            Op::Taint { .. } => {
                if fact.taint.is_some_and(|v| v >= version) {
                    return Applied::Stale;
                }
                let conflict = fact.taint.is_some_and(|v| v.origin != version.origin);
                fact.taint = Some(version);
                Applied::Advanced { conflict }
            }
        }
    }

    /// The effective entries, sorted by `(platform, kernel)`.
    pub fn effective(&self) -> Vec<EffectiveEntry> {
        self.facts
            .iter()
            .map(|((platform, kernel), fact)| {
                let taint_wins = match (&fact.put, &fact.taint) {
                    (Some(p), Some(t)) => *t > p.version,
                    (None, Some(_)) => true,
                    _ => false,
                };
                match &fact.put {
                    Some(p) => EffectiveEntry {
                        platform: platform.clone(),
                        kernel: *kernel,
                        alpha: Some(p.alpha),
                        weight: p.weight,
                        seen: p.seen,
                        tainted: taint_wins || p.tainted,
                        origin: if taint_wins {
                            fact.taint.expect("taint_wins implies taint").origin
                        } else {
                            p.version.origin
                        },
                    },
                    None => EffectiveEntry {
                        platform: platform.clone(),
                        kernel: *kernel,
                        alpha: None,
                        weight: 0.0,
                        seen: 0,
                        tainted: true,
                        origin: fact.taint.expect("no put implies taint").origin,
                    },
                }
            })
            .collect()
    }

    /// The effective entry for one `(platform, kernel)`, if any.
    pub fn entry(&self, platform: &str, kernel: u64) -> Option<EffectiveEntry> {
        self.effective()
            .into_iter()
            .find(|e| e.platform == platform && e.kernel == kernel)
    }

    /// Number of `(platform, kernel)` facts held.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the replica holds nothing yet.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Canonical text of the effective state — byte-identical across
    /// converged replicas, whatever order and duplication the envelopes
    /// arrived with. Version metadata is deliberately excluded (see the
    /// module docs).
    pub fn digest_text(&self) -> String {
        let mut out = String::new();
        for e in self.effective() {
            let alpha = e.alpha.map_or(u64::MAX, f64::to_bits);
            out.push_str(&format!(
                "{} {:016x} {alpha:016x} {:016x} {} {}\n",
                e.platform,
                e.kernel,
                e.weight.to_bits(),
                e.seen,
                u8::from(e.tainted),
            ));
        }
        out
    }

    /// FNV-1a of [`digest_text`](ReplicaTable::digest_text) — the
    /// convergence checker's comparison unit.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.digest_text().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(origin: NodeId, generation: u64, seq: u64, kernel: u64, alpha: f64) -> Envelope {
        Envelope {
            origin,
            platform: "haswell-desktop".into(),
            generation,
            seq,
            op: Op::Put {
                kernel,
                alpha,
                weight: 10.0,
                seen: 1,
                tainted: false,
            },
        }
    }

    fn taint(origin: NodeId, generation: u64, seq: u64, kernel: u64) -> Envelope {
        Envelope {
            origin,
            platform: "haswell-desktop".into(),
            generation,
            seq,
            op: Op::Taint { kernel },
        }
    }

    #[test]
    fn apply_is_idempotent() {
        let mut r = ReplicaTable::new();
        let e = put(0, 1, 1, 7, 0.5);
        assert_eq!(r.apply(&e), Applied::Advanced { conflict: false });
        assert_eq!(r.apply(&e), Applied::Stale);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn put_and_taint_commute() {
        let p = put(0, 1, 1, 7, 0.5);
        let t = taint(1, 1, 1, 7); // newer: same (gen, seq), origin 1 > 0
        let mut ab = ReplicaTable::new();
        ab.apply(&p);
        ab.apply(&t);
        let mut ba = ReplicaTable::new();
        ba.apply(&t);
        ba.apply(&p);
        assert_eq!(ab.digest_text(), ba.digest_text());
        assert!(ab.entry("haswell-desktop", 7).unwrap().tainted);
    }

    #[test]
    fn newer_put_clears_an_older_taint() {
        let mut r = ReplicaTable::new();
        r.apply(&taint(0, 1, 1, 7));
        assert!(r.entry("haswell-desktop", 7).unwrap().tainted);
        r.apply(&put(0, 1, 2, 7, 0.4));
        let e = r.entry("haswell-desktop", 7).unwrap();
        assert!(!e.tainted, "republish after the taint reinstates the entry");
        assert_eq!(e.alpha, Some(0.4));
    }

    #[test]
    fn conflicts_resolve_by_version_order_everywhere() {
        // Two origins race on the same platform+kernel; every replica must
        // pick the same winner whatever the arrival order.
        let a = put(0, 2, 3, 7, 0.3);
        let b = put(1, 2, 3, 7, 0.8); // same (gen, seq): origin breaks the tie
        let mut r1 = ReplicaTable::new();
        r1.apply(&a);
        assert_eq!(r1.apply(&b), Applied::Advanced { conflict: true });
        let mut r2 = ReplicaTable::new();
        r2.apply(&b);
        assert_eq!(r2.apply(&a), Applied::Stale);
        assert_eq!(r1.digest(), r2.digest());
        assert_eq!(r1.entry("haswell-desktop", 7).unwrap().alpha, Some(0.8));
    }

    #[test]
    fn digest_ignores_superseded_generations() {
        // Node A saw gen-1 facts then the gen-2 republish; node B only ever
        // saw gen 2 (it joined after the crash). Same digest.
        let mut a = ReplicaTable::new();
        a.apply(&put(0, 1, 1, 7, 0.5));
        a.apply(&put(0, 2, 1, 7, 0.5));
        let mut b = ReplicaTable::new();
        b.apply(&put(0, 2, 1, 7, 0.5));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn platforms_are_separate_namespaces() {
        let mut r = ReplicaTable::new();
        r.apply(&put(0, 1, 1, 7, 0.5));
        let mut tablet = put(1, 1, 1, 7, 0.9);
        tablet.platform = "baytrail-tablet".into();
        r.apply(&tablet);
        assert_eq!(r.len(), 2, "no cross-platform overwrite, ever");
        assert_eq!(r.entry("haswell-desktop", 7).unwrap().alpha, Some(0.5));
        assert_eq!(r.entry("baytrail-tablet", 7).unwrap().alpha, Some(0.9));
    }
}
