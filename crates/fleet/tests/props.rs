//! Property tests for the replication wire format and the convergent
//! replica (DESIGN.md §15).
//!
//! The frame codec must be lossless for every float bit pattern (NaN
//! payloads included — chaos-era α values ride replication verbatim) and
//! must reject *whole* any frame that arrives torn, truncated,
//! bit-flipped, or with duplicated lines. The replica must converge to
//! the same digest whatever order the envelopes arrive in.

use easched_fleet::{Envelope, Frame, FramePayload, Op, ReplicaTable};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            any::<u64>(),
            arb_f64(),
            arb_f64(),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(|(kernel, alpha, weight, seen, tainted)| Op::Put {
                kernel,
                alpha,
                weight,
                seen,
                tainted,
            }),
        any::<u64>().prop_map(|kernel| Op::Taint { kernel }),
    ]
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (
        any::<u16>(),
        prop_oneof![
            Just("haswell-desktop".to_string()),
            Just("baytrail-tablet".to_string()),
            Just("skylake-minipc".to_string()),
        ],
        any::<u64>(),
        any::<u64>(),
        arb_op(),
    )
        .prop_map(|(origin, platform, generation, seq, op)| Envelope {
            origin,
            platform,
            generation,
            seq,
            op,
        })
}

fn arb_payload() -> impl Strategy<Value = FramePayload> {
    prop_oneof![
        vec((any::<u16>(), any::<u64>(), any::<u64>()), 0..6).prop_map(FramePayload::Request),
        vec(arb_envelope(), 0..6).prop_map(FramePayload::Entries),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (any::<u16>(), any::<u16>(), arb_payload()).prop_map(|(from, to, payload)| Frame {
        from,
        to,
        payload,
    })
}

proptest! {
    /// Every frame — NaN α payloads, infinities, empty batches — decodes
    /// back bit-exact. Floats are compared as raw bits because `NaN !=
    /// NaN` would make `PartialEq` lie about codec fidelity.
    #[test]
    fn frames_round_trip_bit_exact(frame in arb_frame()) {
        let decoded = Frame::decode(&frame.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded.from, frame.from);
        prop_assert_eq!(decoded.to, frame.to);
        match (&decoded.payload, &frame.payload) {
            (FramePayload::Request(a), FramePayload::Request(b)) => prop_assert_eq!(a, b),
            (FramePayload::Entries(a), FramePayload::Entries(b)) => {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.origin, y.origin);
                    prop_assert_eq!(&x.platform, &y.platform);
                    prop_assert_eq!(x.generation, y.generation);
                    prop_assert_eq!(x.seq, y.seq);
                    match (x.op, y.op) {
                        (
                            Op::Put { kernel: k1, alpha: a1, weight: w1, seen: s1, tainted: t1 },
                            Op::Put { kernel: k2, alpha: a2, weight: w2, seen: s2, tainted: t2 },
                        ) => {
                            prop_assert_eq!(k1, k2);
                            prop_assert_eq!(a1.to_bits(), a2.to_bits(), "alpha bits");
                            prop_assert_eq!(w1.to_bits(), w2.to_bits(), "weight bits");
                            prop_assert_eq!(s1, s2);
                            prop_assert_eq!(t1, t2);
                        }
                        (Op::Taint { kernel: k1 }, Op::Taint { kernel: k2 }) => {
                            prop_assert_eq!(k1, k2);
                        }
                        _ => prop_assert!(false, "op kind changed in flight"),
                    }
                }
            }
            _ => prop_assert!(false, "payload kind changed in flight"),
        }
    }

    /// A torn tail — any strict truncation short of the trailing newline —
    /// rejects the frame whole. (Cutting exactly the final `\n` leaves
    /// every sealed line intact, which legitimately decodes.)
    #[test]
    fn truncations_are_rejected_whole(frame in arb_frame(), cut in any::<u64>()) {
        let text = frame.encode();
        let cut = (cut as usize) % text.len().max(1);
        if cut < text.len() - 1 {
            prop_assert!(Frame::decode(&text[..cut]).is_err(), "prefix of {} decoded", cut);
        }
    }

    /// Any single bit flip anywhere in the frame is caught — either the
    /// per-line CRC seal or the grammar rejects it, or the decode is
    /// *bit-exact* anyway (a case flip inside the seal's hex text, or a
    /// flipped trailing newline, alters representation but not content).
    /// What can never happen is a silently different frame.
    #[test]
    fn single_bit_flips_never_corrupt_silently(
        frame in arb_frame(),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let pristine = frame.encode();
        let mut bytes = pristine.clone().into_bytes();
        let pos = (pos as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        // Only valid UTF-8 corruption reaches the decoder in-process; the
        // fabric hands frames around as `String`.
        if let Ok(corrupt) = String::from_utf8(bytes) {
            if let Ok(decoded) = Frame::decode(&corrupt) {
                // Re-encoding canonicalizes; NaN-safe equality by bytes.
                prop_assert_eq!(
                    decoded.encode(),
                    pristine,
                    "flipped bit {} at {} decoded DIFFERENT content", bit, pos
                );
            }
        }
    }

    /// Duplicating any line desynchronizes body count and footer: the
    /// frame is rejected whole, never half-applied.
    #[test]
    fn duplicated_lines_are_rejected(frame in arb_frame(), at in any::<u64>()) {
        let text = frame.encode();
        let lines: Vec<&str> = text.lines().collect();
        let at = (at as usize) % lines.len();
        let mut doubled = Vec::with_capacity(lines.len() + 1);
        for (i, line) in lines.iter().enumerate() {
            doubled.push(*line);
            if i == at {
                doubled.push(*line);
            }
        }
        let corrupt: String = doubled.iter().map(|l| format!("{l}\n")).collect();
        prop_assert!(Frame::decode(&corrupt).is_err(), "doubled line {} decoded", at);
    }

    /// Replica convergence is order-independent: any envelope set applied
    /// forwards, backwards, or rotated lands on the same digest.
    #[test]
    fn replica_digest_is_order_independent(
        envs in vec(arb_envelope(), 1..24),
        rot in any::<u64>(),
    ) {
        let rot = (rot as usize) % envs.len();
        let mut forward = ReplicaTable::new();
        for e in &envs {
            forward.apply(e);
        }
        let mut backward = ReplicaTable::new();
        for e in envs.iter().rev() {
            backward.apply(e);
        }
        let mut rotated = ReplicaTable::new();
        for e in envs[rot..].iter().chain(&envs[..rot]) {
            rotated.apply(e);
        }
        prop_assert_eq!(forward.digest_text(), backward.digest_text());
        prop_assert_eq!(forward.digest(), rotated.digest());
    }

    /// Applying everything twice (the duplication chaos mode end-to-end)
    /// changes nothing.
    #[test]
    fn replica_apply_is_idempotent_under_duplication(envs in vec(arb_envelope(), 1..24)) {
        let mut once = ReplicaTable::new();
        for e in &envs {
            once.apply(e);
        }
        let mut twice = ReplicaTable::new();
        for e in envs.iter().chain(&envs) {
            twice.apply(e);
        }
        prop_assert_eq!(once.digest_text(), twice.digest_text());
    }
}
