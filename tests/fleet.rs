//! End-to-end fleet replication: convergence under chaos, warm-start
//! priors across platforms, fleet-wide quarantine, crash/restart epoch
//! fencing, and record/replay byte-identity (DESIGN.md §15).

use easched::core::{EasConfig, Objective, TableStore};
use easched::fleet::{
    kernel_traits, replay_fleet, run_fleet, ChaosConfig, CrashPlan, FleetNode, FleetSpec,
    FramePayload, Partition, TaintPlan,
};
use easched::replay::{RunLog, FORMAT_VERSION_FLEET};
use easched::sim::Platform;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("easched-fleet-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn node(id: u16, platform: Platform, root: &Path) -> FleetNode {
    FleetNode::start(
        id,
        platform,
        EasConfig::new(Objective::EnergyDelay),
        root,
        9000 + u64::from(id),
        2,
    )
    .expect("node starts")
}

/// One full pull exchange from `src` into `dst` (request, answer,
/// ingest), the way the run loop does it but without a fabric.
fn pull(dst: &mut FleetNode, src: &mut FleetNode, tick: u64) -> u64 {
    let req = dst.request_frame(src.id);
    let FramePayload::Request(wants) = &req.payload else {
        panic!("request frame");
    };
    match src.answer_request(dst.id, wants) {
        None => 0,
        Some(ent) => {
            let FramePayload::Entries(envs) = &ent.payload else {
                panic!("entries frame");
            };
            dst.ingest_entries(envs, tick)
        }
    }
}

#[test]
fn three_node_fleet_converges_under_chaos() {
    let mut spec = FleetSpec::three_nodes(7);
    spec.store_root = scratch("chaos");
    let report = run_fleet(&spec).expect("fleet runs");
    assert!(
        report.converged,
        "default chaos must converge: {}",
        report.digest_text
    );
    assert!(report.nodes.len() == 3);
    for n in &report.nodes {
        assert_eq!(n.digest, report.digest, "node {} diverged", n.id);
        assert!(n.table_len > 0, "node {} learned nothing", n.id);
    }
    assert_eq!(report.log.version, FORMAT_VERSION_FLEET);
    assert!(report.log.complete);
    let _ = std::fs::remove_dir_all(&spec.store_root);
}

#[test]
fn fabric_chaos_is_not_a_scheduler_fault() {
    let mut spec = FleetSpec::three_nodes(23);
    spec.store_root = scratch("faultfree");
    let report = run_fleet(&spec).expect("fleet runs");
    assert!(report.converged);
    let faulted: u64 = report
        .nodes
        .iter()
        .map(|n| n.stats.frames_dropped + n.stats.frames_torn + n.stats.frames_duplicated)
        .sum();
    assert!(faulted > 0, "chaos profile produced no faults at all");
    for n in &report.nodes {
        assert!(
            n.fault_free,
            "node {}: fabric chaos leaked into scheduler health",
            n.id
        );
    }
    let _ = std::fs::remove_dir_all(&spec.store_root);
}

#[test]
fn partition_heals_and_crash_restart_still_converge() {
    let mut spec = FleetSpec::three_nodes(1009);
    spec.ticks = 8;
    spec.chaos.partitions.push(Partition {
        a: 0,
        b: 2,
        from_tick: 1,
        to_tick: 5,
    });
    spec.crash = Some(CrashPlan {
        node: 1,
        at_tick: 3,
        restart_at_tick: 6,
    });
    spec.store_root = scratch("crash");
    let report = run_fleet(&spec).expect("fleet runs");
    assert!(report.converged, "digest: {}", report.digest_text);
    let lines: Vec<&str> = report.log.fleet_lines();
    assert!(
        lines.iter().any(|l| l.starts_with("crash 1 ")),
        "crash recorded"
    );
    let restart = lines
        .iter()
        .find(|l| l.starts_with("restart 1 "))
        .expect("restart recorded");
    let gen: u64 = restart
        .rsplit(' ')
        .next()
        .and_then(|g| g.parse().ok())
        .expect("restart line carries the new epoch");
    assert!(gen > 1, "restart must fence a fresh epoch, got {gen}");
    // The survivor partitions count on at least one side of the cut.
    let partitioned: u64 = report
        .nodes
        .iter()
        .map(|n| n.stats.frames_partitioned)
        .sum();
    assert!(partitioned > 0, "the partition never bit");
    let _ = std::fs::remove_dir_all(&spec.store_root);
}

#[test]
fn cross_platform_entry_warm_starts_but_never_skips_profiling() {
    let root = scratch("prior");
    let mut desktop = node(0, Platform::haswell_desktop(), &root);
    let mut tablet = node(1, Platform::baytrail_tablet(), &root);
    let (kernel, traits) = kernel_traits(0);

    desktop.run_invocation(kernel, &traits, 120_000, 1);
    desktop.publish_local();
    let desktop_alpha = desktop.shared().learned_alpha(kernel).expect("learned");

    assert!(pull(&mut tablet, &mut desktop, 0) > 0);
    let table = tablet.shared().table();
    assert_eq!(
        table.prior(kernel),
        Some(desktop_alpha),
        "foreign knowledge lands as a warm-start prior"
    );
    assert!(
        table.stat(kernel).is_none(),
        "a prior must NOT materialize a learned entry"
    );
    assert_eq!(tablet.stats.priors_applied, 1);

    // The tablet still profiles on its own silicon: after its first
    // invocation it has a real measurement and the prior is consumed.
    tablet.run_invocation(kernel, &traits, 120_000, 2);
    let stat = tablet
        .shared()
        .table()
        .stat(kernel)
        .expect("profiling ran and learned");
    assert!(stat.weight > 0.0, "a real measurement carries weight");
    assert!(
        tablet.shared().table().prior(kernel).is_none(),
        "own measurement erases the prior"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn replicated_taint_quarantines_fleet_wide_within_one_round() {
    let root = scratch("taint");
    // Same platform on both nodes: the taint must quarantine the peer's
    // own learned entry, not just clear a prior.
    let mut a = node(0, Platform::haswell_desktop(), &root);
    let mut b = node(1, Platform::haswell_desktop(), &root);
    let (kernel, traits) = kernel_traits(1);
    a.run_invocation(kernel, &traits, 120_000, 1);
    b.run_invocation(kernel, &traits, 120_000, 2);
    a.publish_local();
    b.publish_local();
    pull(&mut b, &mut a, 0);
    pull(&mut a, &mut b, 0);
    assert!(!b.shared().table().is_tainted(kernel));

    // Node A's fault pipeline quarantines the kernel.
    a.taint_local(kernel);
    a.publish_local();
    assert!(pull(&mut b, &mut a, 1) > 0, "taint envelope crossed");
    assert!(
        b.shared().table().is_tainted(kernel),
        "one anti-entropy round must quarantine fleet-wide"
    );
    assert_eq!(b.stats.taints_replicated, 1);
    assert_eq!(b.stats.reprofiles_scheduled, 1);
    assert_eq!(b.reprofile_pending(), 1);
    // The batched release re-taints at most budget kernels per round;
    // here the one queued kernel drains immediately.
    b.release_reprofiles();
    assert_eq!(b.reprofile_pending(), 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fleet_record_replay_is_byte_identical() {
    let mut spec = FleetSpec::three_nodes(23);
    spec.ticks = 4;
    spec.taint = Some(TaintPlan {
        at_tick: 2,
        node: 0,
        kernel_index: 1,
    });
    spec.store_root = scratch("replay-record");
    let report = run_fleet(&spec).expect("fleet runs");
    let _ = std::fs::remove_dir_all(&spec.store_root);

    // Through the text round-trip, exactly as the CLI writes and reads.
    let text = report.log.to_text();
    let back = RunLog::from_text(&text).expect("parses");
    assert_eq!(back.version, FORMAT_VERSION_FLEET);

    let fresh = replay_fleet(&back, scratch("replay-fresh")).expect("byte-identical replay");
    assert_eq!(fresh.log.to_text(), text);
    assert_eq!(fresh.digest, report.digest);

    // A perturbed log must be called out, not silently accepted.
    let mut tampered = back.clone();
    if let Some(easched::replay::Event::Fleet { line }) = tampered
        .events
        .iter_mut()
        .rev()
        .find(|e| matches!(e, easched::replay::Event::Fleet { .. }))
    {
        *line = line.replace("digest", "digset");
    }
    let err = replay_fleet(&tampered, scratch("replay-tampered")).unwrap_err();
    assert!(err.contains("divergence"), "got: {err}");
}

#[test]
fn journals_survive_the_fleet_run_for_cold_recovery() {
    // The ci.sh recovery smoke reopens the journals a fleet run (with a
    // kill -9 in the middle) left behind; this is the in-process twin.
    let mut spec = FleetSpec::three_nodes(7);
    spec.ticks = 5;
    spec.chaos = ChaosConfig::quiet();
    spec.crash = Some(CrashPlan {
        node: 2,
        at_tick: 2,
        restart_at_tick: 4,
    });
    spec.store_root = scratch("recovery");
    let report = run_fleet(&spec).expect("fleet runs");
    assert!(report.converged);
    for n in &report.nodes {
        let dir = spec.store_root.join(format!("node{}", n.id));
        let (_store, recovered) = TableStore::open(&dir).expect("journal reopens");
        assert_eq!(
            recovered.table.len(),
            n.table_len,
            "node {}: recovered table must match the live one",
            n.id
        );
        assert!(recovered.generation >= 1);
    }
    let _ = std::fs::remove_dir_all(&spec.store_root);
}
