//! The `easched replay` exit-code contract, driven through the real
//! binary: 0 byte-identical, 1 divergence, 2 unusable input. Divergence
//! is already pinned by `tests/replay_fixture.rs` at the library level;
//! these tests pin the *boundary* — a torn header and a wrong platform
//! fingerprint must exit 2 (the log cannot be used at all), never 1
//! (the log replayed and disagreed).

use easched::replay::RunLog;
use std::process::Command;

const FIXTURE: &str = include_str!("fixtures/divergent_min.runlog");

fn replay(dir: &std::path::Path, name: &str, text: &str) -> std::process::Output {
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write log");
    Command::new(env!("CARGO_BIN_EXE_easched"))
        .args(["replay", "--log"])
        .arg(&path)
        .output()
        .expect("run easched")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("easched-exitcodes-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn divergent_fixture_exits_1() {
    let dir = temp_dir("divergent");
    let out = replay(&dir, "divergent.runlog", FIXTURE);
    assert_eq!(
        out.status.code(),
        Some(1),
        "divergence must exit 1; stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn torn_header_exits_2() {
    // Cut the log mid-header: not even the format version survives, so
    // the file is unusable rather than divergent.
    let torn = &FIXTURE[..FIXTURE.len().min(10)];
    let dir = temp_dir("torn");
    let out = replay(&dir, "torn.runlog", torn);
    assert_eq!(
        out.status.code(),
        Some(2),
        "a torn header must exit 2; stderr: {}",
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot parse log"),
        "stderr names the parse failure: {}",
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn wrong_platform_fingerprint_exits_2() {
    // Re-seal the fixture under a bumped platform fingerprint: every
    // line CRC is valid, so the log parses — but it describes a machine
    // this build cannot reconstruct, which is unusable, not divergent.
    let mut log = RunLog::from_text(FIXTURE).expect("fixture parses");
    log.platform_fp ^= 1;
    let dir = temp_dir("platform");
    let out = replay(&dir, "wrong_platform.runlog", &log.to_text());
    assert_eq!(
        out.status.code(),
        Some(2),
        "a foreign platform fingerprint must exit 2; stderr: {}",
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("platform fingerprint mismatch"),
        "stderr names the mismatch: {}",
        String::from_utf8_lossy(&out.stderr),
    );
}
