//! Regression fixture for the divergence reporter.
//!
//! `tests/fixtures/divergent_min.runlog` is a bisect-shrunk chaos-storm
//! recording with one intentionally perturbed observation (produced by
//! `easched replay --log <storm> --perturb 12 --bisect --emit-fixture`).
//! Replaying it must *diverge* — this pins the whole reporting path:
//! parse, fingerprint check, replay, decision diff, state snapshot.
//!
//! If this test fails with a fingerprint mismatch, the power model or
//! scheduler config changed shape; regenerate the fixture with the
//! command above (see README "Replaying a run").

use easched::replay::{replay_chaos_storm, RunLog};

const FIXTURE: &str = include_str!("fixtures/divergent_min.runlog");

#[test]
fn shrunk_fixture_still_trips_the_divergence_reporter() {
    let log = RunLog::from_text(FIXTURE).expect("fixture parses");
    assert!(log.complete, "fixture is a sealed, complete log");

    let outcome = replay_chaos_storm(&log).unwrap_or_else(|e| {
        panic!(
            "fixture no longer matches this build ({e}); regenerate it with \
             `easched replay --log <storm> --perturb N --bisect --emit-fixture \
             tests/fixtures/divergent_min.runlog`"
        )
    });
    let divergence = outcome
        .divergence
        .expect("the perturbed fixture must diverge");

    // The perturbation scaled one recorded energy, so the divergent field
    // set pins down to exactly the energy words.
    assert!(
        divergence.fields.iter().any(|f| f.contains("energy")),
        "expected an energy field, got {:?}",
        divergence.fields
    );
    let report = divergence.render();
    assert!(report.contains("first divergent decision"), "{report}");
    assert!(!divergence.table.is_empty());
}

#[test]
fn fixture_text_is_sealed_and_stable() {
    let log = RunLog::from_text(FIXTURE).expect("fixture parses");
    assert_eq!(log.to_text(), FIXTURE, "fixture file is canonical");
    assert_eq!(log.root, 7, "fixture records the seed-7 storm");
}
