//! Experiment-shape assertions (DESIGN.md §4): the qualitative claims of
//! every paper figure must hold in the reproduction. These use trace
//! replay (no functional execution) so they are fast in debug builds.

use easched::core::{
    characterize, CharacterizationConfig, EasConfig, EasScheduler, Evaluator, Objective,
};
use easched::kernels::{InvocationTrace, Profile};
use easched::runtime::replay_trace;
use easched::runtime::scheduler::FixedAlpha;
use easched::sim::{KernelTraits, Machine, PhasePlan, Platform};

fn desktop_model() -> (Platform, easched::core::PowerModel) {
    let platform = Platform::haswell_desktop();
    let model = characterize(&platform, &CharacterizationConfig::default());
    (platform, model)
}

fn graph_like_traits() -> KernelTraits {
    // CC's calibrated profile (kept in sync with kernels::graphs).
    easched::kernels::graphs::ConnectedComponents::default_profile()
        .traits_for("CC", &Platform::haswell_desktop())
}

fn cc_like_trace() -> InvocationTrace {
    InvocationTrace {
        sizes: vec![262_144; 60],
    }
}

fn sweep(
    platform: &Platform,
    traits: &KernelTraits,
    trace: &InvocationTrace,
) -> Vec<(f64, f64, f64)> {
    (0..=10)
        .map(|i| {
            let alpha = i as f64 / 10.0;
            let mut m = Machine::new(platform.clone());
            let r = replay_trace(&mut m, traits, 1, trace, &mut FixedAlpha::new(alpha));
            (alpha, r.time, r.energy_joules)
        })
        .collect()
}

/// Figure 1's headline: the energy-optimal offload exceeds the
/// performance-optimal offload, and both are interior-or-GPU-heavy.
#[test]
fn fig1_shape_energy_optimum_beyond_perf_optimum() {
    let platform = Platform::haswell_desktop();
    let traits = graph_like_traits();
    let trace = cc_like_trace();
    let points = sweep(&platform, &traits, &trace);
    let perf_alpha = points.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
    let energy_alpha = points.iter().min_by(|a, b| a.2.total_cmp(&b.2)).unwrap().0;
    assert!(
        (0.4..=0.7).contains(&perf_alpha),
        "paper: best performance near α=0.6, got {perf_alpha}"
    );
    assert!(
        energy_alpha >= perf_alpha,
        "paper: minimum energy ({energy_alpha}) at or beyond best performance ({perf_alpha})"
    );
}

/// Figure 3: memory-bound combined execution draws more package power than
/// compute-bound (≈63 W vs ≈55 W on the desktop).
#[test]
fn fig3_shape_memory_draws_more_than_compute() {
    let platform = Platform::haswell_desktop();
    let measure = |mem: f64| {
        let traits = KernelTraits::builder("x")
            .cpu_rate(8.0e5)
            .gpu_rate(1.6e6)
            .memory_intensity(mem)
            .build();
        let mut m = Machine::new(platform.clone());
        let r = m.run_phase(&traits, &PhasePlan::split(2_000_000, 0.65));
        r.energy_joules / r.elapsed
    };
    let compute = measure(0.0);
    let memory = measure(1.0);
    assert!(
        (52.0..58.0).contains(&compute),
        "compute combined {compute} W"
    );
    assert!((59.0..65.0).contains(&memory), "memory combined {memory} W");
}

/// Figure 4: a GPU burst into ongoing CPU execution dips package power
/// below 40 W; the CPU-only plateau sits near 60 W.
#[test]
fn fig4_shape_burst_dip() {
    let platform = Platform::haswell_desktop();
    let traits = KernelTraits::builder("membench")
        .cpu_rate(8.0e5)
        .gpu_rate(1.2e6)
        .memory_intensity(1.0)
        .build();
    let mut m = Machine::new(platform.clone());
    m.enable_trace();
    for inv in 0..4 {
        m.run_phase(&traits, &PhasePlan::split(1_000_000, 0.05).with_seed(inv));
    }
    let trace = m.take_trace();
    let late: Vec<_> = trace
        .resample(0.005)
        .points()
        .iter()
        .filter(|p| p.time > 1.0)
        .cloned()
        .collect();
    let min = late.iter().map(|p| p.watts).fold(f64::INFINITY, f64::min);
    let max = late.iter().map(|p| p.watts).fold(0.0f64, f64::max);
    assert!(min < 40.0, "burst dip should go below 40 W, got {min}");
    assert!(max > 57.0, "CPU plateau should be near 60 W, got {max}");
}

/// Figures 9/10 orderings on a GPU-friendly compute kernel: EAS tracks the
/// oracle on both metrics, and a forced hybrid (PERF-like) loses energy.
#[test]
fn fig9_fig10_shape_on_compute_kernel() {
    let (platform, model) = desktop_model();
    // An MM-like kernel: GPU 3× faster, compute-bound.
    let traits = KernelTraits::builder("mm-like")
        .cpu_rate(2.2e5)
        .gpu_rate(7.0e5)
        .memory_intensity(0.15)
        .build();
    let trace = InvocationTrace {
        sizes: vec![262_144],
    };
    let ev = Evaluator::new(platform.clone(), model.clone());

    for objective in [Objective::EnergyDelay, Objective::Energy] {
        let (_, oracle) = ev.oracle(&traits, &trace, &objective);
        let mut eas = EasScheduler::new(model.clone(), EasConfig::new(objective.clone()));
        let mut machine = Machine::new(platform.clone());
        let m = replay_trace(&mut machine, &traits, 1, &trace, &mut eas);
        let eas_score = objective.of_totals(m.energy_joules, m.time);
        let eff = oracle.score / eas_score;
        assert!(
            eff > 0.85,
            "EAS within 15% of oracle on {}: got {eff:.3}",
            objective.name()
        );
    }

    // Energy: a balanced forced hybrid costs measurably more than
    // GPU-alone (the PERF pathology of Figure 10).
    let energy_at = |alpha: f64| {
        let mut machine = Machine::new(platform.clone());
        replay_trace(
            &mut machine,
            &traits,
            1,
            &trace,
            &mut FixedAlpha::new(alpha),
        )
        .energy_joules
    };
    assert!(
        energy_at(0.8) > energy_at(1.0) * 1.1,
        "hybrid must burn >10% more energy than GPU-alone on this kernel"
    );
}

/// Figure 11/12 platform contrast: on the tablet the GPU draws more power,
/// so GPU-alone loses ground that it holds on the desktop.
#[test]
fn fig11_shape_tablet_gpu_less_attractive() {
    let tablet = Platform::baytrail_tablet();
    let desktop = Platform::haswell_desktop();
    // The same moderate kernel on both platforms, scaled to each platform's
    // speed so durations are comparable.
    let mk = |cpu: f64, gpu: f64| {
        KernelTraits::builder("k")
            .cpu_rate(cpu)
            .gpu_rate(gpu)
            .memory_intensity(0.1)
            .build()
    };
    let trace = InvocationTrace {
        sizes: vec![200_000; 4],
    };
    let ratio = |platform: &Platform, traits: &KernelTraits| {
        let e = |alpha: f64| {
            let mut m = Machine::new(platform.clone());
            replay_trace(&mut m, traits, 1, &trace, &mut FixedAlpha::new(alpha)).energy_joules
        };
        e(1.0) / e(0.0) // GPU-alone energy relative to CPU-alone
    };
    let desktop_ratio = ratio(&desktop, &mk(2.2e5, 4.4e5));
    let tablet_ratio = ratio(&tablet, &mk(1.2e4, 2.4e4));
    assert!(
        desktop_ratio < tablet_ratio,
        "GPU-alone is relatively cheaper on the desktop: {desktop_ratio:.3} vs {tablet_ratio:.3}"
    );
    assert!(
        desktop_ratio < 0.5,
        "desktop GPU is a big energy win, got {desktop_ratio:.3}"
    );
}

/// EAS's small-N guard (the FD behaviour): invocations too small to fill
/// the GPU run on the CPU even after a GPU-friendly ratio was learned.
#[test]
fn small_invocations_stay_on_cpu() {
    let (platform, model) = desktop_model();
    let traits = KernelTraits::builder("fd-like")
        .cpu_rate(6.0e6)
        .gpu_rate(2.0e6)
        .memory_intensity(0.15)
        .build();
    // A cascade-like trace: one big invocation then many tiny ones.
    let mut sizes = vec![80_000u64];
    sizes.extend(std::iter::repeat_n(500, 30));
    let trace = InvocationTrace { sizes };
    let ev = Evaluator::new(platform.clone(), model.clone());
    let objective = Objective::EnergyDelay;
    let (_, oracle) = ev.oracle(&traits, &trace, &objective);

    let mut eas = EasScheduler::new(model, EasConfig::new(objective.clone()));
    let mut machine = Machine::new(platform);
    let m = replay_trace(&mut machine, &traits, 1, &trace, &mut eas);
    let eas_score = objective.of_totals(m.energy_joules, m.time);
    // The adaptive guard should beat or match the best *fixed* split.
    assert!(
        eas_score <= oracle.score * 1.05,
        "EAS {eas_score} should be within 5% of (or beat) the fixed-split oracle {}",
        oracle.score
    );
}

/// Table 1 spot checks: the profiles classify on the correct side of both
/// thresholds (full check lives in the figures harness).
#[test]
fn table1_shape_classification_sides() {
    let platform = Platform::haswell_desktop();
    let check = |profile: Profile, name: &str, expect_memory: bool| {
        let traits = profile.traits_for(name, &platform);
        let ratio = traits.l3_miss_ratio(platform.memory.llc_bytes);
        assert_eq!(ratio > 0.33, expect_memory, "{name}: miss/load {ratio}");
    };
    check(
        easched::kernels::graphs::Bfs::default_profile(),
        "BFS",
        true,
    );
    check(
        easched::kernels::matmul::MatMul::default_profile(),
        "MM",
        false,
    );
    check(
        easched::kernels::mandelbrot::Mandelbrot::default_profile(),
        "MB",
        true,
    );
    check(
        easched::kernels::blackscholes::BlackScholes::default_profile(),
        "BS",
        false,
    );
}
