//! Self-healing control-loop integration (DESIGN.md §11): drift-triggered
//! re-profiling with budget guards, watchdog deadlines on profiling rounds
//! and chunk executions, and the fault-free identity guarantee.

use easched::core::{
    characterize, CharacterizationConfig, DriftPolicy, EasConfig, EasRuntime, EasScheduler,
    Objective, PowerModel, RingSink, WatchdogPolicy,
};
use easched::kernels::suite;
use easched::runtime::backend::test_support::FakeBackend;
use easched::runtime::chaos::{ChaosInjector, Fault, FaultPlan};
use easched::runtime::{Backend, Scheduler};
use easched::sim::Platform;
use std::sync::Arc;

fn quiet_desktop() -> Platform {
    let mut p = Platform::haswell_desktop();
    p.pcu.measurement_noise = 0.0;
    p
}

fn desktop_model() -> PowerModel {
    characterize(
        &quiet_desktop(),
        &CharacterizationConfig {
            alpha_steps: 10,
            ..Default::default()
        },
    )
}

/// 100k items on a 1:2 machine: the Time objective's grid decision is
/// exactly α = 0.7, and realized EDP per invocation is deterministic.
fn fake() -> FakeBackend {
    FakeBackend::new(100_000, 1.0e6, 2.0e6)
}

/// A drift policy tight enough to react within a handful of invocations:
/// EWMA = latest sample, two consecutive breaches fire, one reprofile
/// token total and no refill (so the second storm must be suppressed).
fn tight_drift() -> DriftPolicy {
    DriftPolicy {
        enabled: true,
        bound: 0.5,
        breach_invocations: 2,
        ewma_weight: 1.0,
        cooldown: 2,
        rearm_ratio: 0.5,
        bucket_capacity: 1.0,
        bucket_refill: 0.0,
    }
}

#[test]
fn sustained_drift_triggers_one_budgeted_reprofile() {
    let mut config = EasConfig::new(Objective::Time);
    config.reprofile_every = None; // isolate the drift trigger
    config.drift = tight_drift();
    let mut eas = EasScheduler::new(desktop_model(), config);
    let sink = Arc::new(RingSink::with_capacity(64));
    eas.set_telemetry(Some(sink.clone()));

    // Phase A — healthy platform: profile once, then reuse. The reused
    // splits match the learned reference exactly, so nothing drifts.
    for _ in 0..3 {
        let mut b = fake();
        eas.schedule(7, &mut b);
        assert_eq!(b.remaining(), 0);
    }
    let learned = eas.learned_alpha(7).expect("kernel learned");
    assert!((learned - 0.7).abs() < 1e-9, "α {learned}");
    let decisions_clean = eas.decisions();
    assert_eq!(eas.health().drift_reprofiles, 0);

    // Phase B — the platform shifts: every observation burns 2.5× the
    // energy (vetting-proof; relative EDP error |1 − 2.5|/2.5 = 0.6,
    // above the bound 0.5). The second breaching invocation spends the
    // only token and taints the entry; the invocation after that
    // re-profiles and re-learns the reference under surge conditions.
    let mut surge = ChaosInjector::new(FaultPlan::Drift {
        from: 0,
        until: u64::MAX,
    });
    for i in 0..5 {
        let mut b = fake();
        let mut chaos = surge.wrap(&mut b);
        eas.schedule(7, &mut chaos);
        assert_eq!(b.remaining(), 0, "invocation {i}");
    }
    let h = eas.health();
    assert_eq!(h.drift_reprofiles, 1, "{h:?}");
    assert!(
        eas.decisions() > decisions_clean,
        "drift taint must force a fresh profiling pass"
    );
    // α re-converges: rates never changed, only power, and Time ignores
    // power — the re-profiled ratio lands on the same grid point.
    assert_eq!(eas.learned_alpha(7), Some(learned));
    // Adaptation is not a fault: the §9 pipeline never fired.
    assert!(h.fault_free(), "{h:?}");

    // Phase C — the surge clears, so reused splits now sit far below the
    // re-learned (surged) reference: error (2.5 − 1)/1 = 1.5. The bucket
    // is empty and refill is zero: the reprofile must be suppressed.
    for _ in 0..4 {
        let mut b = fake();
        eas.schedule(7, &mut b);
    }
    let h = eas.health();
    assert_eq!(h.drift_reprofiles, 1, "budget must cap the storm: {h:?}");
    assert!(h.reprofiles_suppressed >= 1, "{h:?}");
    assert!(h.fault_free(), "{h:?}");

    // Satellite: the loop is observable end to end — per-kernel EWMA
    // gauge plus both counters ride the Prometheus exposition.
    let metrics = sink.metrics();
    let ewma = metrics.kernel_drift(7).expect("drift gauge for kernel 7");
    assert!(ewma > 0.8, "last fold was a breach: {ewma}");
    let text = metrics.expose();
    assert!(text.contains("easched_drift_reprofiles_total 1"), "{text}");
    assert!(
        text.contains("easched_reprofiles_suppressed_total"),
        "{text}"
    );
    assert!(
        text.contains("easched_kernel_drift_ewma{kernel=\"7\"}"),
        "{text}"
    );
}

#[test]
fn hung_profiling_round_is_cancelled_and_retried() {
    // Fault::Hang reports internally plausible data after a 3600 s stall:
    // vetting passes it, so only the watchdog's 60 s profiling deadline
    // can cancel the round. From there it rides the §9 rejection path —
    // backed-off retry, then clean completion with a tainted entry.
    let mut eas = EasScheduler::new(desktop_model(), EasConfig::new(Objective::Time));
    let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(0, Fault::Hang)]));
    let mut b = fake();
    let mut chaos = injector.wrap(&mut b);
    eas.schedule(7, &mut chaos);
    assert_eq!(b.remaining(), 0, "cancelled rounds must not lose work");
    assert_eq!(b.log[0], "profile(2240)");
    assert_eq!(b.log[1], "profile(1120)", "retry backs the chunk off");

    let h = eas.health();
    assert_eq!(h.watchdog_trips, 1, "{h:?}");
    assert_eq!(h.observations_rejected, 1, "{h:?}");
    assert_eq!(h.retries, 1, "{h:?}");
    assert_eq!(h.taints, 1, "suspect invocation must taint: {h:?}");
    assert_eq!(h.breaker_trips, 0, "one hang is below the threshold");
    assert!(!h.fault_free(), "a watchdog trip is a real fault");
    assert!(eas.learned_alpha(7).is_some(), "profiling still completed");
}

#[test]
fn hung_reused_split_trips_the_split_watchdog() {
    let mut eas = EasScheduler::new(desktop_model(), EasConfig::new(Objective::Time));
    // Invocation 0 learns cleanly.
    let mut b = fake();
    eas.schedule(7, &mut b);
    let decisions = eas.decisions();

    // Invocation 1 reuses the table — and its single chunk stalls for an
    // hour. The split watchdog (600 s deadline) flags it, implicates the
    // GPU, and taints the entry.
    let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(0, Fault::Hang)]));
    let mut b = fake();
    let mut chaos = injector.wrap(&mut b);
    eas.schedule(7, &mut chaos);
    assert_eq!(b.remaining(), 0);
    assert_eq!(b.log, vec!["split(0.70)"]);
    let h = eas.health();
    assert_eq!(h.split_overruns, 1, "{h:?}");
    assert!(!h.fault_free(), "{h:?}");
    assert!(eas.table().is_tainted(7));

    // Invocation 2 (healthy): the taint forces a re-profile, not reuse.
    let mut b = fake();
    eas.schedule(7, &mut b);
    assert!(eas.decisions() > decisions);
    assert!(!eas.table().is_tainted(7));
}

#[test]
fn hang_and_surge_storm_is_survived_and_recovered_from() {
    // The §11 storm: a third of all observations either stall for an hour
    // or burn surge power. Work must always complete; afterwards, a
    // healthy stretch must return the scheduler to clean table reuse.
    let mut config = EasConfig::new(Objective::Time);
    config.reprofile_every = None; // isolate the §11 recovery machinery
    let mut eas = EasScheduler::new(desktop_model(), config);
    let mut injector = ChaosInjector::new(FaultPlan::Random {
        seed: 22,
        rate: 0.3,
        kinds: vec![Fault::Hang, Fault::PowerSurge],
    });
    for i in 0..20 {
        let mut b = fake();
        let mut chaos = injector.wrap(&mut b);
        eas.schedule(7, &mut chaos);
        assert_eq!(b.remaining(), 0, "storm invocation {i} lost work");
    }
    assert!(injector.injected() > 0, "storm plan never fired");
    let h = eas.health();
    assert!(
        h.watchdog_trips > 0,
        "profiling hangs must be caught: {h:?}"
    );
    assert!(h.split_overruns > 0, "chunk hangs must be caught: {h:?}");

    // Clear skies: enough invocations to serve any quarantine, close the
    // breaker, and re-learn. The last one must be a pure table reuse.
    for _ in 0..12 {
        let mut b = fake();
        eas.schedule(7, &mut b);
        assert_eq!(b.remaining(), 0);
    }
    let mut b = fake();
    eas.schedule(7, &mut b);
    assert_eq!(b.log, vec!["split(0.70)"], "must return to clean reuse");
    let alpha = eas.learned_alpha(7).expect("relearned");
    assert!((alpha - 0.7).abs() < 1e-9);
}

#[test]
fn fault_free_runs_are_identical_with_the_control_loop_disabled() {
    // The acceptance bar for the whole PR: with no faults injected, the
    // self-healing loop (drift monitor + watchdog, both on by default)
    // must not perturb a single decision — outcomes are equal to the
    // loop-disabled runtime on every workload, which is what keeps the
    // fig9/fig10 artifacts byte-identical.
    let platform = quiet_desktop();
    let model = desktop_model();
    let run = |config: EasConfig| {
        let mut rt = EasRuntime::new(platform.clone(), model.clone(), config);
        suite::small_suite()
            .iter()
            .map(|w| rt.run(w.as_ref()))
            .collect::<Vec<_>>()
    };

    let enabled = run(EasConfig::new(Objective::EnergyDelay));
    let mut off = EasConfig::new(Objective::EnergyDelay);
    off.drift = DriftPolicy::disabled();
    off.watchdog = WatchdogPolicy::disabled();
    let disabled = run(off);

    assert_eq!(enabled.len(), disabled.len());
    for (a, b) in enabled.iter().zip(&disabled) {
        assert_eq!(a, b, "control loop perturbed a fault-free run");
        assert!(a.verification.is_passed());
    }
}
