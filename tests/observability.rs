//! Observability-plane integration: concurrent scrapes against a live
//! overload storm (ISSUE: observability plane, DESIGN.md §14).
//!
//! The acceptance demo is `easched serve`; this test is its adversarial
//! twin. Eight scraper threads hammer `/metrics` and `/slo` over real
//! TCP while the canonical eight-tenant storm records on the main
//! thread, asserting the three load-bearing properties at once:
//!
//! 1. every completed scrape is a well-formed `200` with the expected
//!    families (readers never see a torn seqlock snapshot),
//! 2. the server survives the contention (no handler panics, bounded
//!    connections hold), and
//! 3. the storm's run log is byte-identical to an unobserved run — the
//!    whole observability plane, scrape traffic included, is derived
//!    state that never leaks into the recording.

use easched::replay::{record_overload_storm, record_overload_storm_observed_with, OverloadSpec};
use easched::telemetry::{http_get, Page, Router, ScrapeServer, ServeConfig, TimeSource};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const SCRAPERS: usize = 8;

#[test]
fn concurrent_scrapes_ride_a_live_storm_without_perturbing_it() {
    let spec = OverloadSpec::new(7);
    let stop = Arc::new(AtomicBool::new(false));
    let mut server: Option<ScrapeServer> = None;
    let mut scrapers: Vec<JoinHandle<(u64, u64)>> = Vec::new();

    let observed = record_overload_storm_observed_with(&spec, |live| {
        let start = Instant::now();
        let time: TimeSource = Arc::new(move || start.elapsed().as_secs_f64());
        let metrics_page = {
            let ring = Arc::clone(&live.ring);
            let time = Arc::clone(&time);
            move || {
                let m = ring.metrics();
                m.observe_now(time());
                Page::metrics(m.expose())
            }
        };
        let slo_page = {
            let slo = Arc::clone(&live.slo);
            move || Page::json(slo.render_json(spec.ticks as f64))
        };
        let router = Router::new()
            .route("/metrics", metrics_page)
            .route("/slo", slo_page);
        let srv = ScrapeServer::bind_tcp("127.0.0.1:0", router, ServeConfig::default(), time)
            .expect("loopback bind");
        let addr = srv.local_addr().expect("tcp server has an address");
        for t in 0..SCRAPERS {
            let stop = Arc::clone(&stop);
            scrapers.push(std::thread::spawn(move || {
                let path = if t % 2 == 0 { "/metrics" } else { "/slo" };
                let want = if t % 2 == 0 {
                    "easched_invocations_total"
                } else {
                    "burn_threshold"
                };
                let (mut ok, mut attempts) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    attempts += 1;
                    // 503 under max_connections pressure is backpressure
                    // working as designed, not a failure; anything else
                    // non-200 (or a malformed 200) is.
                    match http_get(&addr, path, Duration::from_secs(5)) {
                        Ok((200, body)) => {
                            assert!(body.contains(want), "torn {path} scrape: {body:?}");
                            ok += 1;
                        }
                        Ok((503, _)) => {}
                        Ok((status, body)) => panic!("{path} -> HTTP {status}: {body:?}"),
                        Err(e) => panic!("{path} scrape failed mid-storm: {e}"),
                    }
                }
                (ok, attempts)
            }));
        }
        server = Some(srv);
    });

    stop.store(true, Ordering::Relaxed);
    let (mut ok, mut attempts) = (0u64, 0u64);
    for h in scrapers {
        let (o, a) = h.join().expect("scraper thread must not panic");
        ok += o;
        attempts += a;
    }
    let server = server.expect("server was bound in the live hook");
    assert!(
        ok > 0,
        "no scrape completed during the storm ({attempts} attempts)"
    );
    assert!(server.served() >= ok);
    server.shutdown();

    // The determinism gate: a storm scraped by eight threads records the
    // same bytes as one nobody watched.
    assert!(observed.recorded.offered > 0);
    let unobserved = record_overload_storm(&spec);
    assert_eq!(
        observed.recorded.log.to_text(),
        unobserved.log.to_text(),
        "concurrent scraping perturbed the run log"
    );
}
