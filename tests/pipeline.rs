//! End-to-end integration: characterization → scheduling → verified
//! functional execution, across crates.

use easched::core::{
    characterize, CharacterizationConfig, EasConfig, EasRuntime, Evaluator, Objective,
};
use easched::kernels::suite;
use easched::runtime::run_workload;
use easched::runtime::scheduler::FixedAlpha;
use easched::sim::{Machine, Platform};

fn fast_config() -> CharacterizationConfig {
    CharacterizationConfig {
        alpha_steps: 10,
        ..Default::default()
    }
}

#[test]
fn eas_runtime_runs_the_small_suite_verified() {
    let platform = Platform::haswell_desktop();
    let model = characterize(&platform, &fast_config());
    let mut runtime = EasRuntime::new(platform, model, EasConfig::new(Objective::EnergyDelay));
    for workload in suite::small_suite() {
        let spec = workload.spec();
        let outcome = runtime.run(workload.as_ref());
        assert!(
            outcome.verification.is_passed(),
            "{} failed under EAS: {:?}",
            spec.abbrev,
            outcome.verification
        );
        assert!(outcome.time > 0.0, "{}", spec.abbrev);
        assert!(outcome.energy_joules > 0.0, "{}", spec.abbrev);
    }
}

#[test]
fn every_fixed_split_preserves_functional_correctness() {
    // The scheduler must never be able to break outputs, whatever split it
    // picks: items are independent.
    let platform = Platform::baytrail_tablet();
    for alpha in [0.0, 0.3, 0.7, 1.0] {
        let mut machine = Machine::new(platform.clone());
        for workload in [suite::blackscholes_small(), suite::bfs_small()] {
            let (metrics, verification) =
                run_workload(&mut machine, workload.as_ref(), &mut FixedAlpha::new(alpha));
            assert!(verification.is_passed(), "alpha {alpha}");
            assert!(metrics.items > 0);
        }
    }
}

#[test]
fn characterization_transfers_across_workloads() {
    // One power model serves every kernel on the platform (the paper's
    // one-time claim): running more workloads must not require
    // re-characterization, and decisions stay sane.
    let platform = Platform::haswell_desktop();
    let model = characterize(&platform, &fast_config());
    let mut runtime = EasRuntime::new(platform, model, EasConfig::new(Objective::Energy));
    for workload in suite::small_suite() {
        let outcome = runtime.run(workload.as_ref());
        assert!(outcome.verification.is_passed());
    }
}

#[test]
fn tablet_and_desktop_models_differ() {
    // The two platforms have opposite device-power orderings (paper §2);
    // their characterizations must reflect that.
    let d = characterize(&Platform::haswell_desktop(), &fast_config());
    let t = characterize(&Platform::baytrail_tablet(), &fast_config());
    let long_compute = easched::core::WorkloadClass {
        memory_bound: false,
        cpu_short: false,
        gpu_short: false,
    };
    // Desktop: GPU-alone cheaper than CPU-alone.
    assert!(d.predict(long_compute, 1.0) < d.predict(long_compute, 0.0));
    // Tablet: GPU-alone costs MORE than CPU-alone.
    assert!(t.predict(long_compute, 1.0) > t.predict(long_compute, 0.0));
}

#[test]
fn oracle_dominates_every_scheme_on_both_platforms() {
    for (platform, workload) in [
        (Platform::haswell_desktop(), suite::mandelbrot_small()),
        (Platform::baytrail_tablet(), suite::blackscholes_small()),
    ] {
        let model = characterize(&platform, &fast_config());
        let ev = Evaluator::new(platform, model);
        for objective in [Objective::Energy, Objective::EnergyDelay] {
            let c = ev.compare(workload.as_ref(), &objective);
            for s in [c.cpu, c.gpu, c.perf] {
                assert!(c.oracle.score <= s.score * 1.0001);
            }
        }
    }
}

#[test]
fn kernel_table_survives_across_applications() {
    let platform = Platform::haswell_desktop();
    let model = characterize(&platform, &fast_config());
    let mut runtime = EasRuntime::new(platform, model, EasConfig::new(Objective::EnergyDelay));
    runtime.run(suite::mandelbrot_small().as_ref());
    let decisions_after_first = runtime.scheduler().decisions();
    // A different instance of the same kernel reuses the learned ratio.
    runtime.run(suite::mandelbrot_small().as_ref());
    assert_eq!(runtime.scheduler().decisions(), decisions_after_first);
}

#[test]
fn whole_small_suite_verifies_under_real_parallelism() {
    // Every workload's item function must be thread-safe: run the full
    // reduced suite with actual work-stealing threads.
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8));
    for workload in suite::small_suite() {
        let mut invoker = easched::runtime::ParallelInvoker::new(workers);
        let v = workload.drive(&mut invoker);
        assert!(
            v.is_passed(),
            "{} under parallel execution: {v:?}",
            workload.spec().abbrev
        );
    }
}
