//! Chaos-mode integration: the observation→decision pipeline under
//! injected faults (DESIGN.md §9).
//!
//! Every test drives real workloads (or the deterministic `FakeBackend`)
//! through [`ChaosInjector`] fault plans and asserts the three §9
//! guarantees: functional output is never corrupted, the scheduler never
//! panics, and degradation/recovery follow the circuit-breaker contract.
//!
//! Debug builds cover the reduced suite; release builds (the ci.sh chaos
//! matrix runs `--release`) cover all 12 desktop benchmarks. The random
//! plans honor `EASCHED_CHAOS_SEED` so CI can sweep seeds.

use easched::core::{
    characterize, BreakerState, CharacterizationConfig, EasConfig, EasRuntime, EasScheduler,
    Objective, PowerModel, SharedEas, SharedEasExt,
};
use easched::kernels::suite;
use easched::runtime::backend::test_support::FakeBackend;
use easched::runtime::chaos::{run_workload_chaos, ChaosInjector, Fault, FaultPlan};
use easched::runtime::{run_workload, Backend, Scheduler};
use easched::sim::{EnergyFault, Machine, Platform};

fn chaos_seed() -> u64 {
    std::env::var("EASCHED_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn quiet_desktop() -> Platform {
    let mut p = Platform::haswell_desktop();
    p.pcu.measurement_noise = 0.0;
    p
}

fn desktop_model() -> PowerModel {
    characterize(
        &quiet_desktop(),
        &CharacterizationConfig {
            alpha_steps: 10,
            ..Default::default()
        },
    )
}

/// A FakeBackend-driven invocation: 100k items on a 1:2 machine, where
/// the Time objective's grid decision is exactly α = 0.7.
fn fake() -> FakeBackend {
    FakeBackend::new(100_000, 1.0e6, 2.0e6)
}

#[test]
fn every_fault_plan_preserves_functional_correctness() {
    let seed = chaos_seed();
    let model = desktop_model();
    let mut plans: Vec<(String, FaultPlan)> = Fault::ALL
        .iter()
        .map(|&f| {
            (
                format!("{f:?}"),
                FaultPlan::Random {
                    seed,
                    rate: 0.3,
                    kinds: vec![f],
                },
            )
        })
        .collect();
    plans.push((
        "mixed".into(),
        FaultPlan::Random {
            seed,
            rate: 0.4,
            kinds: Fault::ALL.to_vec(),
        },
    ));
    plans.push(("outage".into(), FaultPlan::GpuOutage { from: 0, until: 6 }));

    // Debug builds are ~50x slower on the big inputs; the ci.sh chaos
    // matrix runs this test --release to cover all 12 desktop benchmarks.
    let workloads = if cfg!(debug_assertions) {
        suite::small_suite()
    } else {
        suite::desktop_suite()
    };
    for (label, plan) in &plans {
        for workload in &workloads {
            let abbrev = workload.spec().abbrev;
            let mut machine = Machine::new(quiet_desktop());
            let mut eas = EasScheduler::new(model.clone(), EasConfig::new(Objective::EnergyDelay));
            let mut injector = ChaosInjector::new(plan.clone());
            let (metrics, v) =
                run_workload_chaos(&mut machine, workload.as_ref(), &mut eas, &mut injector);
            assert!(v.is_passed(), "{abbrev} corrupted under {label}: {v:?}");
            assert!(metrics.items > 0, "{abbrev} under {label}");
            assert!(
                metrics.time > 0.0 && metrics.time.is_finite(),
                "{abbrev} under {label}: time {}",
                metrics.time
            );
            assert!(
                metrics.energy_joules.is_finite(),
                "{abbrev} under {label}: energy {}",
                metrics.energy_joules
            );
            let health = eas.health();
            if injector.injected() == 0 {
                assert!(health.fault_free(), "{abbrev} under {label}: {health:?}");
            }
        }
    }
}

#[test]
fn persistent_gpu_outage_degrades_to_cpu_only_within_budget() {
    // FaultPolicy defaults: max_retries 3, breaker_threshold 3,
    // quarantine 8. A dead GPU driver means every profiling round reports
    // GpuHang, so invocation 0 must trip the breaker after exactly 3
    // consecutive rejections, invocations 1..=7 are gated CPU-only without
    // touching the GPU, and invocation 8's probe re-trips.
    let mut eas = EasScheduler::new(desktop_model(), EasConfig::new(Objective::Time));
    let mut injector = ChaosInjector::new(FaultPlan::GpuOutage {
        from: 0,
        until: u64::MAX,
    });

    let mut logs = Vec::new();
    for _ in 0..9 {
        let mut b = fake();
        let mut chaos = injector.wrap(&mut b);
        eas.schedule(7, &mut chaos);
        assert_eq!(b.remaining(), 0, "work must still complete");
        logs.push(b.log);
    }

    // Invocation 0: three backed-off retries (2240, 1120, 560), then the
    // degraded CPU-only remainder.
    assert_eq!(
        logs[0],
        vec![
            "profile(2240)",
            "profile(1120)",
            "profile(560)",
            "split(0.00)"
        ]
    );
    // Quarantine: seven whole invocations gated CPU-only, GPU untouched.
    for log in &logs[1..8] {
        assert_eq!(log, &vec!["split(0.00)"]);
    }
    // Invocation 8: the recovery probe exercises the GPU, finds it still
    // dead, and degrades again.
    assert_eq!(logs[8][0], "profile(2240)");
    assert_eq!(logs[8].last().unwrap(), "split(0.00)");

    let h = eas.health();
    assert_eq!(h.breaker_trips, 2, "{h:?}");
    assert_eq!(h.degraded_invocations, 2, "{h:?}");
    assert_eq!(h.quarantined_invocations, 7, "{h:?}");
    assert_eq!(h.probes, 1, "{h:?}");
    assert_eq!(h.retries, 2, "{h:?}");
    assert_eq!(h.observations_rejected, 4, "{h:?}");
    assert_eq!(h.recoveries, 0, "{h:?}");
    assert_eq!(eas.health_state().breaker().state(), BreakerState::Open);
    // Nothing learned during the outage: a table entry would poison the
    // healthy future.
    assert_eq!(eas.learned_alpha(7), None);
}

#[test]
fn scheduler_recovers_to_near_oracle_after_faults_clear() {
    // The outage covers invocation 0's four observation steps; by the
    // time the quarantine is served and the probe runs, the GPU is
    // healthy again. The probe must close the breaker and the scheduler
    // must land on the oracle ratio for a 1:2 machine under the Time
    // objective: α = R_G/(R_C+R_G) ≈ 0.667, grid → 0.7.
    let mut eas = EasScheduler::new(desktop_model(), EasConfig::new(Objective::Time));
    let mut injector = ChaosInjector::new(FaultPlan::GpuOutage { from: 0, until: 4 });

    for _ in 0..9 {
        let mut b = fake();
        let mut chaos = injector.wrap(&mut b);
        eas.schedule(7, &mut chaos);
        assert_eq!(b.remaining(), 0);
    }

    let h = eas.health();
    assert_eq!(h.recoveries, 1, "{h:?}");
    assert_eq!(h.breaker_trips, 1, "{h:?}");
    assert_eq!(h.probes, 1, "{h:?}");
    assert_eq!(eas.health_state().breaker().state(), BreakerState::Closed);
    let alpha = eas.learned_alpha(7).expect("probe must relearn the kernel");
    assert!(
        (alpha - 0.7).abs() < 1e-9,
        "recovered alpha {alpha} should match the clean-path decision"
    );

    // Once closed, the next invocation reuses the learned ratio directly.
    let mut b = fake();
    let mut chaos = injector.wrap(&mut b);
    eas.schedule(7, &mut chaos);
    assert_eq!(b.log, vec!["split(0.70)"]);
}

#[test]
fn clean_runs_report_fault_free_health() {
    let platform = quiet_desktop();
    let mut runtime = EasRuntime::new(
        platform,
        desktop_model(),
        EasConfig::new(Objective::EnergyDelay),
    );
    for workload in suite::small_suite() {
        let outcome = runtime.run(workload.as_ref());
        assert!(outcome.verification.is_passed());
    }
    let h = runtime.health();
    assert!(
        h.fault_free(),
        "clean run tripped the fault pipeline: {h:?}"
    );
    assert!(h.observations_accepted > 0, "{h:?}");
}

#[test]
fn shared_scheduler_aggregates_health_across_streams() {
    let shared = SharedEas::new(desktop_model(), EasConfig::new(Objective::Time));

    // Stream 1 sees a transient sensor fault; stream 2 is clean.
    let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(0, Fault::EnergyDropout)]));
    let mut b1 = fake();
    let mut chaos = injector.wrap(&mut b1);
    shared.handle().schedule(7, &mut chaos);
    let mut b2 = fake();
    shared.handle().schedule(8, &mut b2);

    let h = shared.health();
    assert_eq!(h.observations_rejected, 1, "{h:?}");
    assert_eq!(h.retries, 1, "{h:?}");
    assert_eq!(h.taints, 1, "{h:?}");
    assert_eq!(h.breaker_trips, 0, "sensor faults never quarantine: {h:?}");
    assert!(h.observations_accepted > 0, "{h:?}");
    // Both kernels still learned ratios despite the fault.
    assert!(shared.learned_alpha(7).is_some());
    assert!(shared.learned_alpha(8).is_some());
}

#[test]
fn stuck_energy_register_is_detected_and_survived() {
    // Fault injected at the simulator's register-read boundary, not the
    // backend wrapper: the guard must flag the zero-joule windows, the
    // run must verify, and measurements recover when the sensor does.
    let mut machine = Machine::new(quiet_desktop());
    machine.inject_energy_fault(EnergyFault::Stuck { reads: 10_000 });
    let mut eas = EasScheduler::new(desktop_model(), EasConfig::new(Objective::EnergyDelay));
    // bfs_small actually reaches the profiling loop (its mid frontiers
    // exceed the GPU profile size), so the dead register is observed.
    let (metrics, v) = run_workload(&mut machine, suite::bfs_small().as_ref(), &mut eas);
    assert!(v.is_passed(), "{v:?}");
    assert!(metrics.items > 0);
    let h = eas.health();
    assert!(
        h.observations_rejected > 0,
        "stuck register unnoticed: {h:?}"
    );
    assert_eq!(
        h.breaker_trips, 0,
        "energy faults must not quarantine the GPU: {h:?}"
    );

    // Once the sensor recovers, a fresh run on the same machine measures
    // sane energy again (reads: 0 clears the injected fault).
    machine.inject_energy_fault(EnergyFault::Stuck { reads: 0 });
    let (metrics2, v2) = run_workload(&mut machine, suite::bfs_small().as_ref(), &mut eas);
    assert!(v2.is_passed());
    assert!(metrics2.energy_joules > 0.0);
}

#[test]
fn faulty_rounds_taint_the_entry_and_force_a_reprofile() {
    let mut eas = EasScheduler::new(desktop_model(), EasConfig::new(Objective::Time));
    let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(0, Fault::EnergyDropout)]));

    // Invocation 0: one rejected round, retried, profiling completes —
    // the learned entry is tainted.
    let mut b0 = fake();
    let mut chaos = injector.wrap(&mut b0);
    eas.schedule(7, &mut chaos);
    assert_eq!(b0.log[0], "profile(2240)", "clean-size first chunk");
    assert_eq!(b0.log[1], "profile(1120)", "retry backs the chunk off");
    let decisions_after_first = eas.decisions();
    let h = eas.health();
    assert_eq!(h.taints, 1, "{h:?}");
    assert_eq!(h.retries, 1, "{h:?}");
    assert!(eas.table().is_tainted(7));

    // Invocation 1 (no faults left): the taint forces a re-profile
    // instead of reuse, and fresh learning clears it.
    let mut b1 = fake();
    let mut chaos = injector.wrap(&mut b1);
    eas.schedule(7, &mut chaos);
    assert!(
        eas.decisions() > decisions_after_first,
        "tainted entry must be re-profiled, not reused"
    );
    assert!(!eas.table().is_tainted(7));

    // Invocation 2: the clean entry is reused outright.
    let decisions_after_second = eas.decisions();
    let mut b2 = fake();
    eas.schedule(7, &mut b2);
    assert_eq!(eas.decisions(), decisions_after_second);
    assert_eq!(b2.log, vec!["split(0.70)"]);
}
