//! # easched — black-box energy-aware scheduling for integrated CPU-GPU systems
//!
//! Facade crate re-exporting the whole `easched` workspace: a reproduction of
//! *"A Black-Box Approach to Energy-Aware Scheduling on Integrated CPU-GPU
//! Systems"* (CGO 2016).
//!
//! See the individual crates for detail:
//!
//! * [`num`] — polynomial fitting and optimization substrate
//! * [`sim`] — deterministic integrated CPU-GPU platform simulator
//! * [`graph`] — CSR graphs and data-parallel graph algorithms
//! * [`kernels`] — the 12 evaluation benchmarks + 8 characterization
//!   micro-benchmarks
//! * [`runtime`] — Concord-style work-stealing heterogeneous runtime
//! * [`core`] — the energy-aware scheduler (EAS) itself
//! * [`telemetry`] — decision tracing, metrics, drift detection
//! * [`replay`] — deterministic record/replay and time-travel debugging
//! * [`fleet`] — multi-node journal replication with chaos-hardened
//!   anti-entropy
//!
//! # Quickstart
//!
//! ```
//! use easched::core::{CharacterizationConfig, EasConfig, EasRuntime, Objective};
//! use easched::kernels::suite;
//! use easched::sim::Platform;
//!
//! // One-time black-box power characterization of the platform.
//! let platform = Platform::haswell_desktop();
//! let model = easched::core::characterize(&platform, &CharacterizationConfig::default());
//!
//! // Run a workload under the energy-aware scheduler, optimizing EDP.
//! let mut runtime = EasRuntime::new(platform, model, EasConfig::new(Objective::EnergyDelay));
//! let workload = suite::mandelbrot_small();
//! let outcome = runtime.run(workload.as_ref());
//! assert!(outcome.energy_joules > 0.0);
//! ```
//!
//! To serve several concurrent workload streams from one learned kernel
//! table, build the scheduler as [`core::SharedEas`] and give each stream
//! an [`core::EasRuntime::with_shared`] runtime (see the `shared_runtime`
//! example and DESIGN.md §8 for the layer diagram).

pub use easched_core as core;
pub use easched_fleet as fleet;
pub use easched_graph as graph;
pub use easched_kernels as kernels;
pub use easched_num as num;
pub use easched_replay as replay;
pub use easched_runtime as runtime;
pub use easched_sim as sim;
pub use easched_telemetry as telemetry;
