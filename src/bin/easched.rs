//! `easched` — command-line interface to the energy-aware scheduler.
//!
//! ```text
//! easched list
//! easched characterize [--platform desktop|tablet] [--save FILE]
//! easched run --workload MB [--platform P] [--objective edp|energy|ed2|time]
//!              [--model FILE] [--decisions FILE]
//! easched compare --workload SM|all [--platform P] [--objective O] [--model FILE]
//! easched record --out FILE [--seed N] [--rounds N] [--rate F]
//!                [--chaos-fs PERMILLE]
//! easched record --out FILE --overload [--seed N] [--ticks N]
//! easched replay --log FILE [--at N] [--bisect] [--perturb N] [--emit-fixture FILE]
//! easched serve [--addr HOST:PORT] [--socket PATH] [--seed N] [--ticks N]
//!               [--out FILE] [--trace FILE] [--hold SECS]
//! easched scrape (--addr HOST:PORT | --socket PATH) [--path /metrics]
//! easched fleet [--nodes N] [--seed N] [--ticks N] [--quiet-fabric]
//!               [--partition A:B:FROM:TO] [--crash NODE:AT:RESTART]
//!               [--taint TICK:NODE:KERNEL] [--chaos-fs PERMILLE]
//!               [--store DIR] [--record FILE] [--metrics]
//! easched fleet --replay FILE [--store DIR]
//! easched fleet --verify-recovery DIR
//! ```
//!
//! `replay` inspects the log's format version: a v2 (admission-event)
//! log re-runs the multi-tenant overload storm, a v1 log the
//! single-tenant chaos storm. Exit codes are part of the contract:
//! 0 byte-identical, 1 divergence, 2 unusable input. `--at N` slices the
//! log to its first `N` events (an SLO exemplar offset) and replays just
//! that prefix.
//!
//! `fleet` runs a simulated multi-node fleet — each node a full scheduler
//! on its own platform and journal — replicating via chaos-hardened
//! anti-entropy (DESIGN.md §15). Exit codes: 0 all replicas converged
//! byte-identically, 1 non-convergence or replay divergence, 2 unusable
//! input. `--verify-recovery DIR` reopens every `node*` journal a
//! previous run (or kill -9) left behind and reports what recovered.
//!
//! `serve` records the observed overload storm while exposing the live
//! observability plane over HTTP: `/metrics` (Prometheus text),
//! `/health` (JSON), `/slo` (burn rates + breach events with exemplar
//! offsets), `/tenants` (admission counters). `scrape` is the matching
//! dependency-free client.

use easched::core::{
    characterize, load_model, save_model, CharacterizationConfig, EasConfig, EasRuntime, Evaluator,
    HealthReport, Objective, PowerModel, RunSeed, TableStore, TenantFrontend,
};
use easched::fleet::{
    expose_fleet, expose_fleet_store, replay_fleet, run_fleet, ChaosConfig, CrashPlan, FleetSpec,
    Partition, TaintPlan,
};
use easched::kernels::{suite, Workload};
use easched::replay::overload::overload_registry;
use easched::replay::{
    bisect_storm, record_chaos_storm, record_overload_storm, record_overload_storm_observed_with,
    replay_chaos_storm, replay_overload_storm, OverloadSpec, RunLog, StormSpec,
    FORMAT_VERSION_ADMISSION, FORMAT_VERSION_FLEET,
};
use easched::runtime::vfs::{ChaosFs, ChaosFsPlan};
use easched::runtime::TickClock;
use easched::sim::Platform;
use easched::telemetry::{
    http_get, to_trace_with_spans, uds_get, Page, Router, ScrapeServer, ServeConfig, TimeSource,
};
use std::sync::Arc;
use std::time::Duration;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    List,
    Characterize {
        platform: PlatformArg,
        save: Option<String>,
    },
    Run {
        workload: String,
        platform: PlatformArg,
        objective: ObjectiveArg,
        model: Option<String>,
        decisions: Option<String>,
    },
    Compare {
        workload: String,
        platform: PlatformArg,
        objective: ObjectiveArg,
        model: Option<String>,
    },
    Record {
        out: String,
        seed: u64,
        rounds: usize,
        rate: f64,
        overload: bool,
        ticks: u64,
        chaos_fs: Option<u16>,
    },
    Replay {
        log: String,
        at: Option<u64>,
        bisect: bool,
        perturb: Option<usize>,
        emit_fixture: Option<String>,
    },
    Serve {
        addr: String,
        socket: Option<String>,
        seed: u64,
        ticks: u64,
        out: Option<String>,
        trace: Option<String>,
        hold: f64,
    },
    Scrape {
        addr: Option<String>,
        socket: Option<String>,
        path: String,
    },
    Fleet {
        nodes: u16,
        seed: u64,
        ticks: u64,
        quiet_fabric: bool,
        partitions: Vec<Partition>,
        crash: Option<CrashPlan>,
        taint: Option<TaintPlan>,
        chaos_fs: Option<u16>,
        store: Option<String>,
        record: Option<String>,
        metrics: bool,
        replay: Option<String>,
        verify_recovery: Option<String>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlatformArg {
    Desktop,
    Tablet,
}

impl PlatformArg {
    fn build(self) -> Platform {
        match self {
            PlatformArg::Desktop => Platform::haswell_desktop(),
            PlatformArg::Tablet => Platform::baytrail_tablet(),
        }
    }

    fn suite(self) -> Vec<Box<dyn Workload>> {
        match self {
            PlatformArg::Desktop => suite::desktop_suite(),
            PlatformArg::Tablet => suite::tablet_suite(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ObjectiveArg {
    Edp,
    Energy,
    Ed2,
    Time,
}

impl ObjectiveArg {
    fn build(self) -> Objective {
        match self {
            ObjectiveArg::Edp => Objective::EnergyDelay,
            ObjectiveArg::Energy => Objective::Energy,
            ObjectiveArg::Ed2 => Objective::EnergyDelaySquared,
            ObjectiveArg::Time => Objective::Time,
        }
    }
}

const USAGE: &str = "\
usage:
  easched list
  easched characterize [--platform desktop|tablet] [--save FILE]
  easched run --workload ABBREV [--platform P] [--objective edp|energy|ed2|time]
               [--model FILE] [--decisions FILE]
  easched compare --workload ABBREV|all [--platform P] [--objective O] [--model FILE]
  easched record --out FILE [--seed N] [--rounds N] [--rate F] [--chaos-fs PERMILLE]
  easched record --out FILE --overload [--seed N] [--ticks N]
  easched replay --log FILE [--at N] [--bisect] [--perturb N] [--emit-fixture FILE]
  easched serve [--addr HOST:PORT] [--socket PATH] [--seed N] [--ticks N]
                [--out FILE] [--trace FILE] [--hold SECS]
  easched scrape (--addr HOST:PORT | --socket PATH) [--path /metrics]
  easched fleet [--nodes N] [--seed N] [--ticks N] [--quiet-fabric]
                [--partition A:B:FROM:TO] [--crash NODE:AT:RESTART]
                [--taint TICK:NODE:KERNEL] [--chaos-fs PERMILLE]
                [--store DIR] [--record FILE] [--metrics]
  easched fleet --replay FILE [--store DIR]
  easched fleet --verify-recovery DIR";

/// Parses an `a:b:c`-shaped flag value into its colon-separated fields.
fn colon_fields<const N: usize>(flag: &str, value: &str) -> Result<[u64; N], String> {
    let parts: Vec<&str> = value.split(':').collect();
    if parts.len() != N {
        return Err(format!(
            "{flag} wants {N} colon-separated fields, got {value:?}"
        ));
    }
    let mut out = [0u64; N];
    for (slot, part) in out.iter_mut().zip(&parts) {
        *slot = part
            .parse()
            .map_err(|e| format!("{flag} field {part:?}: {e}"))?;
    }
    Ok(out)
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let sub = it.next().ok_or_else(|| USAGE.to_string())?;

    let mut platform = PlatformArg::Desktop;
    let mut objective = ObjectiveArg::Edp;
    let mut workload: Option<String> = None;
    let mut model: Option<String> = None;
    let mut save: Option<String> = None;
    let mut decisions: Option<String> = None;
    let mut out: Option<String> = None;
    let mut log: Option<String> = None;
    let mut seed: u64 = 7;
    let mut rounds: usize = 2;
    let mut rate: f64 = 0.2;
    let mut bisect = false;
    let mut perturb: Option<usize> = None;
    let mut emit_fixture: Option<String> = None;
    let mut overload = false;
    let mut ticks: u64 = OverloadSpec::new(0).ticks;
    let mut at: Option<u64> = None;
    let mut addr: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut path: String = "/metrics".to_string();
    let mut hold: f64 = 0.0;
    let mut trace: Option<String> = None;
    let mut nodes: u16 = 3;
    let mut quiet_fabric = false;
    let mut partitions: Vec<Partition> = Vec::new();
    let mut crash: Option<CrashPlan> = None;
    let mut taint: Option<TaintPlan> = None;
    let mut store: Option<String> = None;
    let mut record: Option<String> = None;
    let mut metrics = false;
    let mut replay: Option<String> = None;
    let mut verify_recovery: Option<String> = None;
    let mut chaos_fs: Option<u16> = None;
    let mut ticks_set = false;

    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(str::to_string)
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag {
            "--platform" => {
                platform = match value("--platform")?.as_str() {
                    "desktop" => PlatformArg::Desktop,
                    "tablet" => PlatformArg::Tablet,
                    other => return Err(format!("unknown platform {other:?}")),
                }
            }
            "--objective" => {
                objective = match value("--objective")?.as_str() {
                    "edp" => ObjectiveArg::Edp,
                    "energy" => ObjectiveArg::Energy,
                    "ed2" => ObjectiveArg::Ed2,
                    "time" => ObjectiveArg::Time,
                    other => return Err(format!("unknown objective {other:?}")),
                }
            }
            "--workload" => workload = Some(value("--workload")?),
            "--model" => model = Some(value("--model")?),
            "--save" => save = Some(value("--save")?),
            "--decisions" => decisions = Some(value("--decisions")?),
            "--out" => out = Some(value("--out")?),
            "--log" => log = Some(value("--log")?),
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--rounds" => {
                rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?
            }
            "--rate" => {
                rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--bisect" => bisect = true,
            "--overload" => overload = true,
            "--ticks" => {
                ticks = value("--ticks")?
                    .parse()
                    .map_err(|e| format!("--ticks: {e}"))?;
                ticks_set = true;
            }
            "--nodes" => {
                nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--quiet-fabric" => quiet_fabric = true,
            "--partition" => {
                let [a, b, from_tick, to_tick] =
                    colon_fields::<4>("--partition", &value("--partition")?)?;
                partitions.push(Partition {
                    a: a.try_into().map_err(|_| "--partition: node out of range")?,
                    b: b.try_into().map_err(|_| "--partition: node out of range")?,
                    from_tick,
                    to_tick,
                });
            }
            "--crash" => {
                let [node, at_tick, restart_at_tick] =
                    colon_fields::<3>("--crash", &value("--crash")?)?;
                crash = Some(CrashPlan {
                    node: node.try_into().map_err(|_| "--crash: node out of range")?,
                    at_tick,
                    restart_at_tick,
                });
            }
            "--taint" => {
                let [at_tick, node, kernel_index] =
                    colon_fields::<3>("--taint", &value("--taint")?)?;
                taint = Some(TaintPlan {
                    at_tick,
                    node: node.try_into().map_err(|_| "--taint: node out of range")?,
                    kernel_index,
                });
            }
            "--store" => store = Some(value("--store")?),
            "--record" => record = Some(value("--record")?),
            "--metrics" => metrics = true,
            "--replay" => replay = Some(value("--replay")?),
            "--verify-recovery" => verify_recovery = Some(value("--verify-recovery")?),
            "--chaos-fs" => {
                let rate: u16 = value("--chaos-fs")?
                    .parse()
                    .map_err(|e| format!("--chaos-fs: {e}"))?;
                if rate > 1000 {
                    return Err("--chaos-fs is a per-mille rate (0..=1000)".to_string());
                }
                chaos_fs = Some(rate);
            }
            "--perturb" => {
                perturb = Some(
                    value("--perturb")?
                        .parse()
                        .map_err(|e| format!("--perturb: {e}"))?,
                )
            }
            "--emit-fixture" => emit_fixture = Some(value("--emit-fixture")?),
            "--at" => at = Some(value("--at")?.parse().map_err(|e| format!("--at: {e}"))?),
            "--addr" => addr = Some(value("--addr")?),
            "--socket" => socket = Some(value("--socket")?),
            "--path" => path = value("--path")?,
            "--trace" => trace = Some(value("--trace")?),
            "--hold" => {
                hold = value("--hold")?
                    .parse()
                    .map_err(|e| format!("--hold: {e}"))?
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }

    match sub {
        "list" => Ok(Command::List),
        "characterize" => Ok(Command::Characterize { platform, save }),
        "run" => Ok(Command::Run {
            workload: workload.ok_or("run requires --workload")?,
            platform,
            objective,
            model,
            decisions,
        }),
        "compare" => Ok(Command::Compare {
            workload: workload.ok_or("compare requires --workload")?,
            platform,
            objective,
            model,
        }),
        "record" => Ok(Command::Record {
            out: out.ok_or("record requires --out")?,
            seed,
            rounds,
            rate,
            overload,
            ticks,
            chaos_fs,
        }),
        "replay" => Ok(Command::Replay {
            log: log.ok_or("replay requires --log")?,
            at,
            bisect,
            perturb,
            emit_fixture,
        }),
        "serve" => Ok(Command::Serve {
            addr: addr.unwrap_or_else(|| "127.0.0.1:0".to_string()),
            socket,
            seed,
            ticks,
            out,
            trace,
            hold,
        }),
        "scrape" => {
            if addr.is_none() && socket.is_none() {
                return Err("scrape requires --addr or --socket".to_string());
            }
            Ok(Command::Scrape { addr, socket, path })
        }
        "fleet" => {
            if replay.is_some() && verify_recovery.is_some() {
                return Err("--replay and --verify-recovery are mutually exclusive".to_string());
            }
            if nodes == 0 {
                return Err("--nodes must be at least 1".to_string());
            }
            Ok(Command::Fleet {
                nodes,
                seed,
                ticks: if ticks_set { ticks } else { 6 },
                quiet_fabric,
                partitions,
                crash,
                taint,
                chaos_fs,
                store,
                record,
                metrics,
                replay,
                verify_recovery,
            })
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn obtain_model(platform: &Platform, path: Option<&str>) -> PowerModel {
    match path {
        Some(p) => {
            let model = load_model(p).unwrap_or_else(|e| {
                eprintln!("cannot load model from {p}: {e}");
                std::process::exit(1);
            });
            if model.platform_name() != platform.name {
                eprintln!(
                    "warning: model characterizes {:?}, running on {:?}",
                    model.platform_name(),
                    platform.name
                );
            }
            model
        }
        None => {
            eprintln!(
                "characterizing {} (pass --model FILE to reuse a saved model)...",
                platform.name
            );
            characterize(platform, &CharacterizationConfig::default())
        }
    }
}

fn find_workload(suite: Vec<Box<dyn Workload>>, abbrev: &str) -> Box<dyn Workload> {
    let available: Vec<String> = suite.iter().map(|w| w.spec().abbrev.to_string()).collect();
    suite
        .into_iter()
        .find(|w| w.spec().abbrev.eq_ignore_ascii_case(abbrev))
        .unwrap_or_else(|| {
            eprintln!(
                "unknown workload {abbrev:?}; available: {}",
                available.join(", ")
            );
            std::process::exit(1);
        })
}

fn cmd_list() {
    println!(
        "{:<5} {:<22} {:<5} {:<7} desktop input",
        "abbr", "name", "kind", "tablet"
    );
    for w in suite::desktop_suite() {
        let s = w.spec();
        println!(
            "{:<5} {:<22} {:<5} {:<7} {}",
            s.abbrev,
            s.name,
            if s.regular { "R" } else { "IR" },
            if s.runs_on_tablet { "yes" } else { "no" },
            w.input_description(),
        );
    }
}

fn cmd_characterize(platform: PlatformArg, save: Option<String>) {
    let p = platform.build();
    println!("characterizing {} ...", p.name);
    let model = characterize(&p, &CharacterizationConfig::default());
    for curve in model.curves() {
        println!("  {curve}");
    }
    if let Some(path) = save {
        save_model(&model, &path).unwrap_or_else(|e| {
            eprintln!("cannot save model to {path}: {e}");
            std::process::exit(1);
        });
        println!("model saved to {path}");
    }
}

fn cmd_run(
    workload: &str,
    platform: PlatformArg,
    objective: ObjectiveArg,
    model: Option<String>,
    decisions: Option<String>,
) {
    let p = platform.build();
    let model = obtain_model(&p, model.as_deref());
    let w = find_workload(platform.suite(), workload);
    let mut runtime = EasRuntime::new(p, model, EasConfig::new(objective.build()));
    let outcome = runtime.run(w.as_ref());
    println!(
        "{}: {:.4} s, {:.3} J, EDP {:.4}, mean power {:.2} W, output {}",
        w.spec().abbrev,
        outcome.time,
        outcome.energy_joules,
        outcome.edp,
        outcome.metrics.mean_power(),
        if outcome.verification.is_passed() {
            "verified"
        } else {
            "WRONG"
        },
    );
    if let Some(path) = decisions {
        std::fs::write(&path, runtime.scheduler().decision_log_csv()).unwrap_or_else(|e| {
            eprintln!("cannot write decisions to {path}: {e}");
            std::process::exit(1);
        });
        println!("decision log written to {path}");
    }
    if !outcome.verification.is_passed() {
        std::process::exit(1);
    }
}

fn cmd_compare(
    workload: &str,
    platform: PlatformArg,
    objective: ObjectiveArg,
    model: Option<String>,
) {
    let p = platform.build();
    let model = obtain_model(&p, model.as_deref());
    let ev = Evaluator::new(p, model);
    let objective = objective.build();
    let workloads: Vec<Box<dyn Workload>> = if workload.eq_ignore_ascii_case("all") {
        platform.suite()
    } else {
        vec![find_workload(platform.suite(), workload)]
    };
    println!(
        "{:<5} {:>8} {:>8} {:>8} {:>8} {:>9} (efficiency vs Oracle, {})",
        "abbr",
        "CPU",
        "GPU",
        "PERF",
        "EAS",
        "Oracle α",
        objective.name()
    );
    for w in workloads {
        let c = ev.compare(w.as_ref(), &objective);
        println!(
            "{:<5} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>9.1}",
            c.abbrev,
            100.0 * c.efficiency(c.cpu),
            100.0 * c.efficiency(c.gpu),
            100.0 * c.efficiency(c.perf),
            100.0 * c.efficiency(c.eas),
            c.oracle_alpha,
        );
    }
}

fn cmd_record(
    out: &str,
    seed: u64,
    rounds: usize,
    rate: f64,
    overload: bool,
    ticks: u64,
    chaos_fs: Option<u16>,
) {
    let log = if overload {
        let spec = OverloadSpec {
            ticks,
            ..OverloadSpec::new(seed)
        };
        eprintln!("recording overload storm: seed {seed}, {ticks} tick(s) ...");
        let recorded = record_overload_storm(&spec);
        println!(
            "storm: {} offered, {} shed, {} executed, fair-share deficit {:.4}, \
             EDP efficiency {:.3}",
            recorded.offered,
            recorded.shed,
            recorded.executed,
            recorded.fair_share_deficit,
            recorded.edp_efficiency(),
        );
        recorded.log
    } else {
        let mut spec = StormSpec::new(seed);
        spec.rounds = rounds;
        spec.chaos_rate = rate;
        eprintln!("recording chaos storm: seed {seed}, {rounds} round(s), fault rate {rate} ...");
        record_chaos_storm(&spec).log
    };
    let decisions = log.decisions().len();
    let events = log.events.len();
    match chaos_fs {
        None => std::fs::write(out, log.to_text()).unwrap_or_else(|e| {
            eprintln!("cannot write log to {out}: {e}");
            std::process::exit(2);
        }),
        // Storage chaos on the save path (DESIGN.md §16): the log is
        // written through a deterministic fault-injecting filesystem,
        // retried until the fault window passes. The log *contents* are
        // untouched — a fault-free replay of a chaos-saved log is still
        // byte-identical.
        Some(per_mille) => {
            let vfs = ChaosFs::new(
                RunSeed::new(seed).derive("chaos-fs"),
                ChaosFsPlan::storm(per_mille),
                Arc::new(TickClock::new()),
            );
            match log.save_with_retries(&vfs, std::path::Path::new(out), 32) {
                Ok(0) => {}
                Ok(failed) => eprintln!(
                    "chaos-fs: {failed} save attempt(s) absorbed injected faults \
                     before the log landed"
                ),
                Err(e) => {
                    eprintln!("cannot write log to {out} (after 32 chaotic attempts): {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    println!("recorded {decisions} decisions ({events} events) to {out}");
}

/// The wall-clock adapter behind the scrape server's time seam.
fn wall_time() -> TimeSource {
    let origin = std::time::Instant::now();
    Arc::new(move || origin.elapsed().as_secs_f64())
}

/// Renders a [`HealthReport`] as JSON for the `/health` page.
fn health_json(h: &HealthReport) -> String {
    format!(
        "{{\"fault_free\":{},\"observations_accepted\":{},\"observations_rejected\":{},\
         \"retries\":{},\"degraded_invocations\":{},\"breaker_trips\":{},\"probes\":{},\
         \"recoveries\":{},\"taints\":{},\"quarantined_invocations\":{},\
         \"drift_reprofiles\":{},\"reprofiles_suppressed\":{},\"watchdog_trips\":{},\
         \"split_overruns\":{},\"throttled_invocations\":{},\"requests_shed\":{},\
         \"requests_queued\":{},\"quota_denials\":{},\"brownout_transitions\":{},\
         \"store_io_errors\":{},\"store_degraded\":{},\"store_bytes\":{}}}",
        h.fault_free(),
        h.observations_accepted,
        h.observations_rejected,
        h.retries,
        h.degraded_invocations,
        h.breaker_trips,
        h.probes,
        h.recoveries,
        h.taints,
        h.quarantined_invocations,
        h.drift_reprofiles,
        h.reprofiles_suppressed,
        h.watchdog_trips,
        h.split_overruns,
        h.throttled_invocations,
        h.requests_shed,
        h.requests_queued,
        h.quota_denials,
        h.brownout_transitions,
        h.store_io_errors,
        h.store_degraded,
        h.store_bytes,
    )
}

/// Renders the per-tenant admission counters as JSON for `/tenants`.
fn tenants_json(frontend: &TenantFrontend) -> String {
    let registry = overload_registry();
    let mut out = format!(
        "{{\"brownout_level\":{},\"tenants\":[",
        frontend.level().code()
    );
    for tenant in 0..registry.len() {
        let stats = frontend.tenant_stats(tenant);
        if tenant > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{tenant},\"name\":{:?},\"offered\":{},\"admitted\":{},\"queued\":{},\
             \"shed\":{},\"quota_denials\":{},\"gpu_seconds\":{:.6},\"queue_len\":{},\
             \"queue_high_water\":{}}}",
            registry.spec(tenant).name,
            stats.offered,
            stats.admitted,
            stats.queued,
            stats.shed,
            stats.quota_denials,
            stats.gpu_seconds,
            stats.queue_len,
            stats.queue_high_water,
        ));
    }
    out.push_str("]}");
    out
}

fn cmd_serve(
    addr: &str,
    socket: Option<&str>,
    seed: u64,
    ticks: u64,
    out: Option<String>,
    trace: Option<String>,
    hold: f64,
) {
    let spec = OverloadSpec {
        ticks,
        ..OverloadSpec::new(seed)
    };
    eprintln!("recording observed overload storm: seed {seed}, {ticks} tick(s) ...");
    let mut server: Option<ScrapeServer> = None;
    let observed = record_overload_storm_observed_with(&spec, |live| {
        let time = wall_time();
        let metrics = live.ring.metrics();
        metrics.set_build_info(
            env!("CARGO_PKG_VERSION"),
            option_env!("EASCHED_COMMIT").unwrap_or("unknown"),
        );
        metrics.mark_started(time());
        let router = {
            let metrics_page = {
                let ring = Arc::clone(&live.ring);
                let time = Arc::clone(&time);
                move || {
                    let m = ring.metrics();
                    m.observe_now(time());
                    Page::metrics(m.expose())
                }
            };
            let health_page = {
                let frontend = Arc::clone(&live.frontend);
                move || Page::json(health_json(&frontend.shared().health()))
            };
            let slo_page = {
                let slo = Arc::clone(&live.slo);
                // Burn windows run on storm virtual time (1 tick = 1 s);
                // render them against the end of the run.
                move || Page::json(slo.render_json(ticks as f64))
            };
            let tenants_page = {
                let frontend = Arc::clone(&live.frontend);
                move || Page::json(tenants_json(&frontend))
            };
            Router::new()
                .route("/metrics", metrics_page)
                .route("/health", health_page)
                .route("/slo", slo_page)
                .route("/tenants", tenants_page)
        };
        let cfg = ServeConfig::default();
        let bound = match socket {
            Some(path) => ScrapeServer::bind_unix(std::path::Path::new(path), router, cfg, time),
            None => ScrapeServer::bind_tcp(addr, router, cfg, time),
        };
        match bound {
            Ok(s) => {
                match s.local_addr() {
                    Some(a) => println!("serving on http://{a}"),
                    None => println!("serving on unix socket {}", socket.unwrap_or("?")),
                }
                println!("routes: /metrics /health /slo /tenants");
                use std::io::Write;
                let _ = std::io::stdout().flush();
                server = Some(s);
            }
            Err(e) => {
                eprintln!("cannot bind scrape server: {e}");
                std::process::exit(2);
            }
        }
    });

    let recorded = &observed.recorded;
    println!(
        "storm complete: {} offered, {} shed, {} executed, EDP efficiency {:.3}",
        recorded.offered,
        recorded.shed,
        recorded.executed,
        recorded.edp_efficiency(),
    );
    let events = observed.slo.events();
    println!(
        "captured {} spans, {} slo breach event(s)",
        observed.ring.span_snapshot().len(),
        events.len()
    );
    for e in &events {
        println!(
            "  breach: tenant {} {} burn {:.2}/{:.2} at t={:.0} — \
             replay with: easched replay --log <LOG> --at {}",
            e.tenant,
            e.kind.as_str(),
            e.burn_short,
            e.burn_long,
            e.at,
            e.exemplar_offset,
        );
    }
    if let Some(out) = out {
        std::fs::write(&out, recorded.log.to_text()).unwrap_or_else(|e| {
            eprintln!("cannot write log to {out}: {e}");
            std::process::exit(2);
        });
        println!("run log written to {out}");
    }
    if let Some(trace) = trace {
        let text = to_trace_with_spans(&observed.ring.snapshot(), &observed.ring.span_snapshot());
        std::fs::write(&trace, text).unwrap_or_else(|e| {
            eprintln!("cannot write span trace to {trace}: {e}");
            std::process::exit(2);
        });
        println!("span trace written to {trace} (open in Perfetto)");
    }
    use std::io::Write;
    let _ = std::io::stdout().flush();
    if hold > 0.0 {
        eprintln!("holding the scrape server for {hold} s ...");
        std::thread::sleep(Duration::from_secs_f64(hold));
    }
    if let Some(server) = server {
        server.shutdown();
    }
}

fn cmd_scrape(addr: Option<&str>, socket: Option<&str>, path: &str) {
    let timeout = Duration::from_secs(5);
    let result = match (addr, socket) {
        (_, Some(sock)) => uds_get(std::path::Path::new(sock), path, timeout),
        (Some(addr), None) => {
            use std::net::ToSocketAddrs;
            let resolved = addr.to_socket_addrs().ok().and_then(|mut it| it.next());
            match resolved {
                Some(sa) => http_get(&sa, path, timeout),
                None => {
                    eprintln!("cannot resolve {addr}");
                    std::process::exit(2);
                }
            }
        }
        (None, None) => unreachable!("parse_args enforces --addr or --socket"),
    };
    match result {
        Ok((200, body)) => print!("{body}"),
        Ok((status, body)) => {
            eprintln!("HTTP {status}");
            print!("{body}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("scrape failed: {e}");
            std::process::exit(2);
        }
    }
}

fn load_log(path: &str) -> RunLog {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read log {path}: {e}");
        std::process::exit(2);
    });
    let log = RunLog::from_text(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse log {path}: {e}");
        std::process::exit(2);
    });
    if !log.complete {
        eprintln!(
            "warning: {path} has a torn tail; replaying the {} sealed events",
            log.events.len()
        );
    }
    log
}

fn cmd_replay(
    path: &str,
    at: Option<u64>,
    bisect: bool,
    perturb: Option<usize>,
    emit_fixture: Option<String>,
) {
    if emit_fixture.is_some() && !bisect {
        eprintln!("--emit-fixture requires --bisect");
        std::process::exit(2);
    }
    if at.is_some() && bisect {
        eprintln!("--at and --bisect are mutually exclusive");
        std::process::exit(2);
    }
    let mut log = load_log(path);
    if let Some(step) = perturb {
        if !log.perturb_step(step) {
            eprintln!("--perturb {step}: log has no such step");
            std::process::exit(2);
        }
        eprintln!("perturbed recorded step {step} (energy scaled; intentional divergence)");
    }
    if let Some(offset) = at {
        let full = log.events.len();
        log = log.slice_at(offset);
        eprintln!(
            "sliced at offset {offset}: replaying the first {} of {full} events",
            log.events.len()
        );
    }

    if log.version == FORMAT_VERSION_ADMISSION {
        if bisect {
            eprintln!("--bisect does not support overload (v2) logs yet");
            std::process::exit(2);
        }
        match replay_overload_storm(&log) {
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
            Ok(outcome) => {
                if at.is_some() {
                    // A slice cuts mid-tick: the replay regenerates the
                    // rest of the final tick, so the identity claim is
                    // prefix equality up to the cut.
                    let slice_text = log.to_text();
                    let replay_text = outcome.replayed.to_text();
                    let body_lines = slice_text.lines().count().saturating_sub(1);
                    let divergence = slice_text
                        .lines()
                        .zip(replay_text.lines())
                        .take(body_lines)
                        .enumerate()
                        .find(|(_, (a, b))| a != b);
                    match divergence {
                        Some((i, (a, b))) => {
                            println!(
                                "sliced overload replay diverged:\nline {}: recorded `{a}` / \
                                 replayed `{b}`",
                                i + 1
                            );
                            std::process::exit(1);
                        }
                        None => println!(
                            "{path}: overload slice replayed byte-identically up to the cut \
                             ({} events)",
                            log.events.len()
                        ),
                    }
                    return;
                }
                if !outcome.identical {
                    println!(
                        "overload replay diverged:\n{}",
                        outcome.first_difference.as_deref().unwrap_or("?")
                    );
                    std::process::exit(1);
                }
                println!(
                    "{path}: overload run replayed byte-identically ({} events)",
                    outcome.replayed.events.len()
                );
            }
        }
        return;
    }

    if bisect {
        match bisect_storm(&log) {
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
            Ok(None) => println!("{path}: replay is byte-identical; nothing to bisect"),
            Ok(Some(report)) => {
                println!("{}", report.render());
                if let Some(fixture) = emit_fixture {
                    std::fs::write(&fixture, report.minimal.to_text()).unwrap_or_else(|e| {
                        eprintln!("cannot write fixture to {fixture}: {e}");
                        std::process::exit(2);
                    });
                    println!(
                        "minimal reproducer ({} of {} invocations) written to {fixture}",
                        report.kept_invocations, report.original_invocations
                    );
                }
                std::process::exit(1);
            }
        }
    } else {
        match replay_chaos_storm(&log) {
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
            Ok(outcome) => {
                if let Some(divergence) = outcome.divergence {
                    println!("{}", divergence.render());
                    std::process::exit(1);
                }
                println!(
                    "{path}: replayed {} invocations, {} decisions byte-identical",
                    outcome.invocations_replayed,
                    outcome.live.len()
                );
            }
        }
    }
}

/// Reopens every `node*` journal under `dir` and reports what recovered —
/// the cold half of the kill -9 smoke: a crashed fleet's stores must come
/// back without manual repair.
fn verify_fleet_recovery(dir: &str) {
    let mut node_dirs: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.is_dir()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("node"))
            })
            .collect(),
        Err(e) => {
            eprintln!("cannot read {dir}: {e}");
            std::process::exit(2);
        }
    };
    node_dirs.sort();
    if node_dirs.is_empty() {
        eprintln!("no node* journals under {dir}");
        std::process::exit(2);
    }
    let mut failed = false;
    for d in &node_dirs {
        match TableStore::open(d) {
            Ok((_store, rec)) => println!(
                "{}: generation {}, {} entry(ies), {} replayed, {} discarded",
                d.display(),
                rec.generation,
                rec.table.len(),
                rec.replayed,
                rec.discarded,
            ),
            Err(e) => {
                failed = true;
                eprintln!("{}: FAILED to recover: {e}", d.display());
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("all {} journal(s) recovered cleanly", node_dirs.len());
}

struct FleetArgs {
    nodes: u16,
    seed: u64,
    ticks: u64,
    quiet_fabric: bool,
    partitions: Vec<Partition>,
    crash: Option<CrashPlan>,
    taint: Option<TaintPlan>,
    chaos_fs: Option<u16>,
    store: Option<String>,
    record: Option<String>,
    metrics: bool,
    replay: Option<String>,
    verify_recovery: Option<String>,
}

fn cmd_fleet(args: FleetArgs) {
    if let Some(dir) = args.verify_recovery {
        verify_fleet_recovery(&dir);
        return;
    }
    if let Some(path) = args.replay {
        let log = load_log(&path);
        if log.version != FORMAT_VERSION_FLEET {
            eprintln!(
                "{path} is a v{} log, not a fleet (v{FORMAT_VERSION_FLEET}) log",
                log.version
            );
            std::process::exit(2);
        }
        let store_root = args.store.map(std::path::PathBuf::from).unwrap_or_default();
        match replay_fleet(&log, store_root) {
            Ok(report) => println!(
                "{path}: fleet run replayed byte-identically \
                 ({} fleet events, digest {:016x})",
                report.log.fleet_lines().len(),
                report.digest,
            ),
            Err(e) => {
                println!("fleet replay diverged:\n{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let presets = ["haswell-desktop", "baytrail-tablet", "skylake-minipc"];
    let mut spec = FleetSpec::three_nodes(args.seed);
    spec.platforms = (0..args.nodes)
        .map(|i| presets[usize::from(i) % presets.len()].to_string())
        .collect();
    spec.ticks = args.ticks;
    if args.quiet_fabric {
        spec.chaos = ChaosConfig::quiet();
    }
    spec.chaos.partitions = args.partitions;
    spec.crash = args.crash;
    spec.taint = args.taint;
    spec.chaos_fs = args.chaos_fs;
    spec.store_root = args.store.map(std::path::PathBuf::from).unwrap_or_default();
    eprintln!(
        "running a {}-node fleet: seed {}, {} tick(s), fabric {}{}{}{} ...",
        args.nodes,
        args.seed,
        args.ticks,
        if args.quiet_fabric {
            "quiet"
        } else {
            "chaotic"
        },
        if spec.chaos.partitions.is_empty() {
            String::new()
        } else {
            format!(", {} partition window(s)", spec.chaos.partitions.len())
        },
        spec.crash.map_or(String::new(), |c| format!(
            ", kill -9 node {} at tick {}",
            c.node, c.at_tick
        )),
        spec.chaos_fs
            .map_or(String::new(), |p| format!(", storage chaos {p}\u{2030}")),
    );
    let report = run_fleet(&spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!(
        "{:<5} {:<16} {:>8} {:>6} {:>4} {:>6} {:>6} {:>6} {:>7} digest",
        "node", "platform", "applied", "stale", "gap", "confl", "prior", "taint", "dropped"
    );
    for n in &report.nodes {
        println!(
            "{:<5} {:<16} {:>8} {:>6} {:>4} {:>6} {:>6} {:>6} {:>7} {:016x}",
            n.label,
            n.platform,
            n.stats.entries_applied,
            n.stats.entries_rejected_stale,
            n.stats.entries_deferred_gap,
            n.stats.conflicts_resolved,
            n.stats.priors_applied,
            n.stats.taints_replicated,
            n.stats.frames_dropped + n.stats.frames_torn,
            n.digest,
        );
    }
    if spec.chaos_fs.is_some() {
        println!(
            "{:<5} {:>9} {:>8} {:>11} {:>6} {:>7} {:>10}",
            "node", "io-errors", "degraded", "transitions", "rearms", "dropped", "bytes"
        );
        for n in &report.nodes {
            println!(
                "{:<5} {:>9} {:>8} {:>11} {:>6} {:>7} {:>10}",
                n.label,
                n.store.io_errors,
                u8::from(n.store.degraded),
                n.store.degraded_transitions,
                n.store.rearms,
                n.store.buffered_dropped,
                n.store.bytes_written,
            );
        }
    }
    if args.metrics {
        let labeled: Vec<(String, easched::fleet::FleetStats)> = report
            .nodes
            .iter()
            .map(|n| (n.label.clone(), n.stats))
            .collect();
        print!("{}", expose_fleet(&labeled));
        let stores: Vec<(String, easched::core::StoreHealth)> = report
            .nodes
            .iter()
            .map(|n| (n.label.clone(), n.store))
            .collect();
        print!("{}", expose_fleet_store(&stores));
    }
    if let Some(out) = args.record {
        std::fs::write(&out, report.log.to_text()).unwrap_or_else(|e| {
            eprintln!("cannot write log to {out}: {e}");
            std::process::exit(2);
        });
        println!("fleet log written to {out}");
    }
    if report.converged {
        println!(
            "fleet converged after {} drain round(s): digest {:016x}",
            report.drain_rounds, report.digest
        );
    } else {
        println!(
            "fleet DID NOT converge within {} drain rounds",
            easched::fleet::MAX_DRAIN_ROUNDS
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Command::List) => cmd_list(),
        Ok(Command::Characterize { platform, save }) => cmd_characterize(platform, save),
        Ok(Command::Run {
            workload,
            platform,
            objective,
            model,
            decisions,
        }) => cmd_run(&workload, platform, objective, model, decisions),
        Ok(Command::Compare {
            workload,
            platform,
            objective,
            model,
        }) => cmd_compare(&workload, platform, objective, model),
        Ok(Command::Record {
            out,
            seed,
            rounds,
            rate,
            overload,
            ticks,
            chaos_fs,
        }) => cmd_record(&out, seed, rounds, rate, overload, ticks, chaos_fs),
        Ok(Command::Replay {
            log,
            at,
            bisect,
            perturb,
            emit_fixture,
        }) => cmd_replay(&log, at, bisect, perturb, emit_fixture),
        Ok(Command::Serve {
            addr,
            socket,
            seed,
            ticks,
            out,
            trace,
            hold,
        }) => cmd_serve(&addr, socket.as_deref(), seed, ticks, out, trace, hold),
        Ok(Command::Scrape { addr, socket, path }) => {
            cmd_scrape(addr.as_deref(), socket.as_deref(), &path)
        }
        Ok(Command::Fleet {
            nodes,
            seed,
            ticks,
            quiet_fabric,
            partitions,
            crash,
            taint,
            chaos_fs,
            store,
            record,
            metrics,
            replay,
            verify_recovery,
        }) => cmd_fleet(FleetArgs {
            nodes,
            seed,
            ticks,
            quiet_fabric,
            partitions,
            crash,
            taint,
            chaos_fs,
            store,
            record,
            metrics,
            replay,
            verify_recovery,
        }),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Command, String> {
        let owned: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        parse_args(&owned)
    }

    #[test]
    fn parses_list() {
        assert_eq!(parse(&["list"]).unwrap(), Command::List);
    }

    #[test]
    fn parses_characterize_with_flags() {
        let c = parse(&["characterize", "--platform", "tablet", "--save", "m.txt"]).unwrap();
        assert_eq!(
            c,
            Command::Characterize {
                platform: PlatformArg::Tablet,
                save: Some("m.txt".into())
            }
        );
    }

    #[test]
    fn parses_run_defaults() {
        let c = parse(&["run", "--workload", "MB"]).unwrap();
        assert_eq!(
            c,
            Command::Run {
                workload: "MB".into(),
                platform: PlatformArg::Desktop,
                objective: ObjectiveArg::Edp,
                model: None,
                decisions: None,
            }
        );
    }

    #[test]
    fn parses_compare_all_with_objective() {
        let c = parse(&["compare", "--workload", "all", "--objective", "energy"]).unwrap();
        match c {
            Command::Compare {
                workload,
                objective,
                ..
            } => {
                assert_eq!(workload, "all");
                assert_eq!(objective, ObjectiveArg::Energy);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_requires_workload() {
        assert!(parse(&["run"]).unwrap_err().contains("--workload"));
    }

    #[test]
    fn parses_record_with_defaults_and_overrides() {
        let c = parse(&["record", "--out", "run.log"]).unwrap();
        assert_eq!(
            c,
            Command::Record {
                out: "run.log".into(),
                seed: 7,
                rounds: 2,
                rate: 0.2,
                overload: false,
                ticks: OverloadSpec::new(0).ticks,
                chaos_fs: None,
            }
        );
        let c = parse(&[
            "record",
            "--out",
            "r.log",
            "--seed",
            "1009",
            "--rounds",
            "3",
            "--rate",
            "0.5",
            "--chaos-fs",
            "150",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Record {
                out: "r.log".into(),
                seed: 1009,
                rounds: 3,
                rate: 0.5,
                overload: false,
                ticks: OverloadSpec::new(0).ticks,
                chaos_fs: Some(150),
            }
        );
        assert!(parse(&["record"]).unwrap_err().contains("--out"));
        assert!(parse(&["record", "--out", "r.log", "--chaos-fs", "1200"])
            .unwrap_err()
            .contains("per-mille"));
    }

    #[test]
    fn parses_replay_variants() {
        let c = parse(&["replay", "--log", "run.log"]).unwrap();
        assert_eq!(
            c,
            Command::Replay {
                log: "run.log".into(),
                at: None,
                bisect: false,
                perturb: None,
                emit_fixture: None,
            }
        );
        let c = parse(&[
            "replay",
            "--log",
            "run.log",
            "--bisect",
            "--perturb",
            "12",
            "--emit-fixture",
            "min.log",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Replay {
                log: "run.log".into(),
                at: None,
                bisect: true,
                perturb: Some(12),
                emit_fixture: Some("min.log".into()),
            }
        );
        let c = parse(&["replay", "--log", "run.log", "--at", "230"]).unwrap();
        assert_eq!(
            c,
            Command::Replay {
                log: "run.log".into(),
                at: Some(230),
                bisect: false,
                perturb: None,
                emit_fixture: None,
            }
        );
        assert!(parse(&["replay"]).unwrap_err().contains("--log"));
        assert!(parse(&["replay", "--log", "x", "--perturb", "abc"]).is_err());
        assert!(parse(&["replay", "--log", "x", "--at", "xyz"]).is_err());
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        let c = parse(&["serve"]).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                socket: None,
                seed: 7,
                ticks: OverloadSpec::new(0).ticks,
                out: None,
                trace: None,
                hold: 0.0,
            }
        );
        let c = parse(&[
            "serve",
            "--addr",
            "0.0.0.0:9100",
            "--seed",
            "23",
            "--ticks",
            "64",
            "--out",
            "run.log",
            "--trace",
            "run.trace.json",
            "--hold",
            "30",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "0.0.0.0:9100".into(),
                socket: None,
                seed: 23,
                ticks: 64,
                out: Some("run.log".into()),
                trace: Some("run.trace.json".into()),
                hold: 30.0,
            }
        );
        let c = parse(&["serve", "--socket", "/tmp/eas.sock"]).unwrap();
        match c {
            Command::Serve { socket, .. } => assert_eq!(socket.as_deref(), Some("/tmp/eas.sock")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_scrape_and_requires_a_target() {
        let c = parse(&["scrape", "--addr", "127.0.0.1:9100"]).unwrap();
        assert_eq!(
            c,
            Command::Scrape {
                addr: Some("127.0.0.1:9100".into()),
                socket: None,
                path: "/metrics".into(),
            }
        );
        let c = parse(&["scrape", "--socket", "/tmp/eas.sock", "--path", "/slo"]).unwrap();
        assert_eq!(
            c,
            Command::Scrape {
                addr: None,
                socket: Some("/tmp/eas.sock".into()),
                path: "/slo".into(),
            }
        );
        assert!(parse(&["scrape"])
            .unwrap_err()
            .contains("--addr or --socket"));
    }

    #[test]
    fn parses_fleet_with_defaults_and_overrides() {
        let c = parse(&["fleet"]).unwrap();
        assert_eq!(
            c,
            Command::Fleet {
                nodes: 3,
                seed: 7,
                ticks: 6,
                quiet_fabric: false,
                partitions: vec![],
                crash: None,
                taint: None,
                chaos_fs: None,
                store: None,
                record: None,
                metrics: false,
                replay: None,
                verify_recovery: None,
            }
        );
        let c = parse(&[
            "fleet",
            "--nodes",
            "5",
            "--seed",
            "1009",
            "--ticks",
            "8",
            "--quiet-fabric",
            "--partition",
            "0:2:1:4",
            "--crash",
            "1:3:6",
            "--taint",
            "2:0:1",
            "--chaos-fs",
            "250",
            "--store",
            "/tmp/f",
            "--record",
            "fleet.log",
            "--metrics",
        ])
        .unwrap();
        match c {
            Command::Fleet {
                nodes,
                seed,
                ticks,
                quiet_fabric,
                partitions,
                crash,
                taint,
                chaos_fs,
                store,
                record,
                metrics,
                ..
            } => {
                assert_eq!((nodes, seed, ticks), (5, 1009, 8));
                assert!(quiet_fabric && metrics);
                assert_eq!(
                    partitions,
                    vec![Partition {
                        a: 0,
                        b: 2,
                        from_tick: 1,
                        to_tick: 4
                    }]
                );
                assert_eq!(
                    crash,
                    Some(CrashPlan {
                        node: 1,
                        at_tick: 3,
                        restart_at_tick: 6
                    })
                );
                assert_eq!(
                    taint,
                    Some(TaintPlan {
                        at_tick: 2,
                        node: 0,
                        kernel_index: 1
                    })
                );
                assert_eq!(chaos_fs, Some(250));
                assert_eq!(store.as_deref(), Some("/tmp/f"));
                assert_eq!(record.as_deref(), Some("fleet.log"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fleet_flag_shapes_are_validated() {
        assert!(parse(&["fleet", "--nodes", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["fleet", "--partition", "0:2:1"])
            .unwrap_err()
            .contains("4 colon-separated fields"));
        assert!(parse(&["fleet", "--crash", "1:3:6:9"]).is_err());
        assert!(parse(&["fleet", "--taint", "a:b:c"]).is_err());
        assert!(
            parse(&["fleet", "--replay", "f.log", "--verify-recovery", "/tmp/f"])
                .unwrap_err()
                .contains("mutually exclusive")
        );
        let c = parse(&["fleet", "--replay", "f.log"]).unwrap();
        match c {
            Command::Fleet { replay, .. } => assert_eq!(replay.as_deref(), Some("f.log")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unknowns() {
        assert!(parse(&["bogus"]).is_err());
        assert!(parse(&["run", "--workload", "MB", "--objective", "joules"]).is_err());
        assert!(parse(&["run", "--workload", "MB", "--platform", "phone"]).is_err());
        assert!(parse(&["list", "--what"]).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn flag_missing_value_reported() {
        let err = parse(&["characterize", "--save"]).unwrap_err();
        assert!(err.contains("requires a value"));
    }

    #[test]
    fn objective_args_map_to_objectives() {
        assert_eq!(ObjectiveArg::Edp.build().name(), "EDP");
        assert_eq!(ObjectiveArg::Energy.build().name(), "energy");
        assert_eq!(ObjectiveArg::Ed2.build().name(), "ED2P");
        assert_eq!(ObjectiveArg::Time.build().name(), "time");
    }
}
