//! Shared scheduler: N concurrent workload streams learning into — and
//! reusing from — one global kernel table through an `Arc<SharedEas>`.
//!
//! Each thread gets its own `EasRuntime` (its own simulated machine), but
//! all of them drive the same scheduler: the first stream to profile a
//! kernel pays the profiling cost, every later stream on *any* thread
//! reuses the learned ratio through a lock-light table probe.
//!
//! ```text
//! cargo run --release --example shared_runtime
//! ```

use easched::core::{
    characterize, table_to_text, CharacterizationConfig, EasConfig, EasRuntime, Objective,
    SharedEas,
};
use easched::kernels::suite;
use easched::runtime::kernel_id_of;
use easched::sim::Platform;
use std::sync::Arc;

const STREAMS: usize = 8;

fn main() {
    let platform = Platform::haswell_desktop();
    println!("characterizing {} ...", platform.name);
    let model = characterize(&platform, &CharacterizationConfig::default());

    // One scheduler, shared by every stream.
    let eas = SharedEas::new(model, EasConfig::new(Objective::EnergyDelay));

    std::thread::scope(|s| {
        for stream in 0..STREAMS {
            let eas = Arc::clone(&eas);
            let platform = platform.clone();
            s.spawn(move || {
                let mut rt = EasRuntime::with_shared(platform, eas);
                for workload in [suite::blackscholes_small(), suite::mandelbrot_small()] {
                    let spec = workload.spec();
                    let outcome = rt.run(workload.as_ref());
                    assert!(outcome.verification.is_passed());
                    println!(
                        "stream {stream}: {:>4}  {:>8.4} s  {:>8.3} J  EDP {:>9.4}",
                        spec.abbrev, outcome.time, outcome.energy_joules, outcome.edp,
                    );
                }
            });
        }
    });

    // The table holds one learned ratio per kernel, no matter how many
    // streams ran it; profiling decisions were made once per kernel, not
    // once per stream.
    println!();
    for workload in [suite::blackscholes_small(), suite::mandelbrot_small()] {
        let kernel = kernel_id_of(workload.as_ref());
        let stat = eas.table().stat(kernel).unwrap();
        println!(
            "{:>4}: learned α = {:.2}  (weight {:.0}, {} reuse invocations)",
            workload.spec().abbrev,
            stat.alpha,
            stat.weight,
            stat.invocations_seen,
        );
    }
    println!(
        "total α decisions across {STREAMS} streams: {} (reuse is decision-free)",
        eas.decisions()
    );

    // The learned table persists like the power model does, so the next
    // process warm-starts instead of re-profiling.
    println!("\npersisted table:\n{}", table_to_text(eas.table()));
}
