//! Shared scheduler: N concurrent workload streams learning into — and
//! reusing from — one global kernel table through an `Arc<SharedEas>`.
//!
//! Each thread gets its own `EasRuntime` (its own simulated machine), but
//! all of them drive the same scheduler: the first stream to profile a
//! kernel pays the profiling cost, every later stream on *any* thread
//! reuses the learned ratio through a lock-light table probe.
//!
//! ```text
//! cargo run --release --example shared_runtime
//! cargo run --release --example shared_runtime -- --trace shared.trace.json
//! ```
//!
//! With `--trace <path>`, all streams' `DecisionRecord`s land in one
//! shared ring sink and are dumped as a Chrome Trace Event file — open it
//! in Perfetto (ui.perfetto.dev) or chrome://tracing to see which stream
//! paid the profiling cost and which got table hits (see README
//! "Inspecting decision traces").

use easched::core::telemetry::{parse_trace, to_trace};
use easched::core::{
    characterize, table_to_text, CharacterizationConfig, EasConfig, EasRuntime, Objective,
    RingSink, SharedEas, TelemetrySink,
};
use easched::kernels::suite;
use easched::runtime::kernel_id_of;
use easched::sim::Platform;
use std::path::PathBuf;
use std::sync::Arc;

const STREAMS: usize = 8;

/// `--trace <path>` from argv, if given.
fn trace_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(PathBuf::from(
                args.next().expect("--trace requires a file path"),
            ));
        }
    }
    None
}

fn main() {
    let platform = Platform::haswell_desktop();
    println!("characterizing {} ...", platform.name);
    let model = characterize(&platform, &CharacterizationConfig::default());
    let tracing = trace_path().map(|p| (p, Arc::new(RingSink::with_capacity(1 << 14))));

    // One scheduler, shared by every stream.
    let config = EasConfig::new(Objective::EnergyDelay);
    let eas = match &tracing {
        Some((_, sink)) => {
            SharedEas::with_telemetry(model, config, sink.clone() as Arc<dyn TelemetrySink>)
        }
        None => SharedEas::new(model, config),
    };

    std::thread::scope(|s| {
        for stream in 0..STREAMS {
            let eas = Arc::clone(&eas);
            let platform = platform.clone();
            s.spawn(move || {
                let mut rt = EasRuntime::with_shared(platform, eas);
                for workload in [suite::blackscholes_small(), suite::mandelbrot_small()] {
                    let spec = workload.spec();
                    let outcome = rt.run(workload.as_ref());
                    assert!(outcome.verification.is_passed());
                    println!(
                        "stream {stream}: {:>4}  {:>8.4} s  {:>8.3} J  EDP {:>9.4}",
                        spec.abbrev, outcome.time, outcome.energy_joules, outcome.edp,
                    );
                }
            });
        }
    });

    // The table holds one learned ratio per kernel, no matter how many
    // streams ran it; profiling decisions were made once per kernel, not
    // once per stream.
    println!();
    for workload in [suite::blackscholes_small(), suite::mandelbrot_small()] {
        let kernel = kernel_id_of(workload.as_ref());
        let stat = eas.table().stat(kernel).unwrap();
        println!(
            "{:>4}: learned α = {:.2}  (weight {:.0}, {} reuse invocations)",
            workload.spec().abbrev,
            stat.alpha,
            stat.weight,
            stat.invocations_seen,
        );
    }
    println!(
        "total α decisions across {STREAMS} streams: {} (reuse is decision-free)",
        eas.decisions()
    );

    // The learned table persists like the power model does, so the next
    // process warm-starts instead of re-profiling.
    println!("\npersisted table:\n{}", table_to_text(eas.table()));

    if let Some((path, sink)) = &tracing {
        let records = sink.snapshot();
        let trace = to_trace(&records);
        // Self-check: the exported trace must round-trip through the
        // analyzer before we hand it to the user (bit-level, since
        // PartialEq cannot see NaN == NaN).
        let reparsed = parse_trace(&trace).expect("exported trace must parse");
        assert!(
            reparsed.len() == records.len()
                && reparsed.iter().zip(&records).all(|(a, b)| a.bitwise_eq(b)),
            "trace round-trip must be lossless"
        );
        std::fs::write(path, trace).expect("write trace file");
        println!(
            "wrote {} decision records to {} (open in Perfetto or chrome://tracing)",
            records.len(),
            path.display()
        );
    }
}
