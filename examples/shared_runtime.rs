//! Shared scheduler: N concurrent workload streams learning into — and
//! reusing from — one global kernel table through an `Arc<SharedEas>`.
//!
//! Each thread gets its own `EasRuntime` (its own simulated machine), but
//! all of them drive the same scheduler: the first stream to profile a
//! kernel pays the profiling cost, every later stream on *any* thread
//! reuses the learned ratio through a lock-light table probe.
//!
//! ```text
//! cargo run --release --example shared_runtime
//! cargo run --release --example shared_runtime -- --trace shared.trace.json
//! cargo run --release --example shared_runtime -- --store table.d --repeat 50
//! cargo run --release --example shared_runtime -- --store table.d --verify-recovery
//! cargo run --release --example shared_runtime -- --record run.runlog --seed 7
//! cargo run --release --example shared_runtime -- --replay run.runlog
//! ```
//!
//! With `--trace <path>`, all streams' `DecisionRecord`s land in one
//! shared ring sink and are dumped as a Chrome Trace Event file — open it
//! in Perfetto (ui.perfetto.dev) or chrome://tracing to see which stream
//! paid the profiling cost and which got table hits (see README
//! "Inspecting decision traces").
//!
//! With `--store <dir>`, every table mutation is journaled to a crash-safe
//! store (DESIGN.md §11): the next run with the same `--store` warm-starts
//! from the recovered table instead of re-profiling — even after a
//! `kill -9`. `--repeat N` loops the workload set N times per stream
//! (long enough to kill mid-flight), and `--verify-recovery` skips the run
//! entirely: it opens the store, audits every recovered entry, and exits
//! non-zero if recovery surfaced anything corrupt — the assertion half of
//! ci.sh's SIGKILL smoke test.
//!
//! With `--chaos-fs <per-mille>`, the store's filesystem is wrapped in a
//! seed-deterministic `ChaosFs` (DESIGN.md §16) that injects ENOSPC,
//! short writes, and fsync failures at the given per-mille rate. The
//! scheduler must keep deciding at full fidelity while the store degrades
//! to memory and re-arms; the final checkpoint is retried a bounded
//! number of times and a persistent failure is reported, not fatal —
//! exactly the behaviour ci.sh's storage-chaos stage asserts.
//!
//! With `--record <file>`, one stream runs the workload set through the
//! shared scheduler with every determinism seam tapped (virtual clock,
//! seeded config, recorded observations — DESIGN.md §12) and writes a
//! sealed `RunLog`; `--replay <file>` re-executes it against a freshly
//! built scheduler and diffs the decision streams, exiting non-zero on
//! the first divergent decision. Recording collapses to a single stream
//! because replay is sequential: a multi-stream run's decision order is
//! an OS scheduling artifact, which is exactly the nondeterminism the
//! record mode exists to exclude (see README "Replaying a run").

use easched::core::telemetry::{parse_trace, to_trace};
use easched::core::{
    characterize, table_to_text, CharacterizationConfig, EasConfig, EasRuntime, Objective,
    RingSink, RunSeed, SharedEas, TableStore, TelemetrySink,
};
use easched::kernels::suite;
use easched::runtime::kernel_id_of;
use easched::runtime::vfs::{ChaosFs, ChaosFsPlan, StdFs, Vfs};
use easched::runtime::TickClock;
use easched::sim::Platform;
use std::path::PathBuf;
use std::sync::Arc;

const STREAMS: usize = 8;

struct Options {
    trace: Option<PathBuf>,
    store: Option<PathBuf>,
    repeat: usize,
    verify_recovery: bool,
    record: Option<PathBuf>,
    replay: Option<PathBuf>,
    seed: u64,
    chaos_fs: Option<u16>,
}

fn options() -> Options {
    let mut opts = Options {
        trace: None,
        store: None,
        repeat: 1,
        verify_recovery: false,
        record: None,
        replay: None,
        seed: 7,
        chaos_fs: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                opts.trace = Some(PathBuf::from(
                    args.next().expect("--trace requires a file path"),
                ))
            }
            "--store" => {
                opts.store = Some(PathBuf::from(
                    args.next().expect("--store requires a directory"),
                ))
            }
            "--repeat" => {
                opts.repeat = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--repeat requires a count")
            }
            "--verify-recovery" => opts.verify_recovery = true,
            "--record" => {
                opts.record = Some(PathBuf::from(
                    args.next().expect("--record requires a file path"),
                ))
            }
            "--replay" => {
                opts.replay = Some(PathBuf::from(
                    args.next().expect("--replay requires a file path"),
                ))
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--seed requires an integer")
            }
            "--chaos-fs" => {
                let rate: u16 = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("--chaos-fs requires a per-mille rate (0..=1000)");
                assert!(rate <= 1000, "--chaos-fs rate must be 0..=1000 per mille");
                opts.chaos_fs = Some(rate);
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    opts
}

/// Opens the store, audits what recovery produced, and exits the process:
/// 0 when every recovered entry is well-formed, 1 otherwise. Run after a
/// `kill -9` to prove the journal brought the table back intact — a torn
/// tail line is expected and fine (it is discarded), corrupt *values*
/// are not.
fn verify_recovery(dir: &PathBuf) -> ! {
    let (_store, rec) = TableStore::open(dir).unwrap_or_else(|e| {
        eprintln!("recovery failed to open {}: {e}", dir.display());
        std::process::exit(1);
    });
    println!(
        "recovered generation {} (+{} journal records, {} torn/corrupt lines discarded)",
        rec.generation, rec.replayed, rec.discarded
    );
    println!("breaker: {:?}", rec.breaker);
    let mut kernels = 0usize;
    let mut bad = 0usize;
    for (kernel, stat, tainted) in rec.table.snapshot_with_taint() {
        kernels += 1;
        let ok = stat.alpha.is_finite()
            && (0.0..=1.0).contains(&stat.alpha)
            && stat.weight.is_finite()
            && stat.weight > 0.0;
        if !ok {
            bad += 1;
        }
        println!(
            "  kernel {kernel}: α = {:.4}  weight {:.0}  seen {}  tainted {tainted}  {}",
            stat.alpha,
            stat.weight,
            stat.invocations_seen,
            if ok { "ok" } else { "CORRUPT" },
        );
    }
    if kernels == 0 {
        eprintln!("recovery produced an empty table — the journal never made it to disk");
        std::process::exit(1);
    }
    if bad > 0 {
        eprintln!("{bad}/{kernels} recovered entries are corrupt");
        std::process::exit(1);
    }
    println!("{kernels} kernels recovered clean");
    std::process::exit(0);
}

/// `--record`: one stream, every nondeterminism seam tapped. The shared
/// scheduler is built by `recording_setup` (storm platform, seeded
/// config, virtual clock, recorder attached as telemetry sink), then
/// each workload runs through the same `Shared` adapter the concurrent
/// streams use — wrapped in a `RecordingScheduler` so every backend
/// observation lands in the log alongside the decision stream.
fn record_run(path: &PathBuf, seed: u64) -> ! {
    use easched::replay::{recording_setup, storm_platform, RecordingScheduler};
    use easched::runtime::{run_workload, Shared};
    use easched::sim::Machine;

    println!("recording single-stream run (seed {seed}) ...");
    let (eas, recorder) = recording_setup(easched::core::RunSeed::new(seed));
    let shared = eas.into_shared(); // carries the recorder sink + TickClock
    let mut adapter = Shared::new(shared);
    let mut machine = Machine::new(storm_platform());
    for workload in [suite::blackscholes_small(), suite::mandelbrot_small()] {
        let label = workload.spec().abbrev;
        let mut recording = RecordingScheduler::new(&mut adapter, Arc::clone(&recorder), label);
        let (_, verification) = run_workload(&mut machine, workload.as_ref(), &mut recording);
        assert!(verification.is_passed());
    }
    let log = recorder.finish();
    std::fs::write(path, log.to_text()).expect("write run log");
    println!(
        "recorded {} decisions ({} events) to {}",
        log.decisions().len(),
        log.events.len(),
        path.display()
    );
    println!("replay with: cargo run --release --example shared_runtime -- --replay <file>");
    std::process::exit(0);
}

/// `--replay`: rebuild the scheduler from the log's fingerprints, re-feed
/// the recorded observations, diff the decision streams bit-for-bit.
fn replay_run(path: &PathBuf) -> ! {
    use easched::replay::{replay_chaos_storm, RunLog};

    let text = std::fs::read_to_string(path).expect("read run log");
    let log = RunLog::from_text(&text).unwrap_or_else(|e| {
        eprintln!("{} is not a run log: {e:?}", path.display());
        std::process::exit(2);
    });
    match replay_chaos_storm(&log) {
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
        Ok(outcome) => {
            if let Some(divergence) = outcome.divergence {
                println!("{}", divergence.render());
                std::process::exit(1);
            }
            println!(
                "{}: replayed {} invocations, {} decisions byte-identical",
                path.display(),
                outcome.invocations_replayed,
                outcome.live.len()
            );
            std::process::exit(0);
        }
    }
}

fn main() {
    let opts = options();
    if opts.verify_recovery {
        let dir = opts
            .store
            .as_ref()
            .expect("--verify-recovery requires --store <dir>");
        verify_recovery(dir);
    }
    if let Some(path) = &opts.replay {
        replay_run(path);
    }
    if let Some(path) = &opts.record {
        record_run(path, opts.seed);
    }

    let platform = Platform::haswell_desktop();
    println!("characterizing {} ...", platform.name);
    let model = characterize(&platform, &CharacterizationConfig::default());
    let tracing = opts
        .trace
        .map(|p| (p, Arc::new(RingSink::with_capacity(1 << 14))));

    // One scheduler, shared by every stream. With `--store`, it first
    // recovers whatever an earlier process learned (crashed or not).
    // `--chaos-fs` swaps the store's filesystem for a seed-deterministic
    // fault injector; everything above the Vfs seam is unchanged.
    let config = EasConfig::new(Objective::EnergyDelay);
    let vfs: Arc<dyn Vfs> = match opts.chaos_fs {
        None => Arc::new(StdFs),
        Some(rate) => {
            println!(
                "storage chaos: ChaosFs storm at {rate}\u{2030} (seed {})",
                opts.seed
            );
            Arc::new(ChaosFs::new(
                RunSeed::new(opts.seed).derive("chaos-fs"),
                ChaosFsPlan::storm(rate),
                Arc::new(TickClock::new()),
            ))
        }
    };
    let eas = match (&opts.store, &tracing) {
        (Some(dir), Some((_, sink))) => SharedEas::with_telemetry_persistence_vfs(
            model,
            config,
            dir,
            sink.clone() as Arc<dyn TelemetrySink>,
            vfs,
        )
        .expect("open table store"),
        (Some(dir), None) => {
            SharedEas::with_persistence_vfs(model, config, dir, vfs).expect("open table store")
        }
        (None, Some((_, sink))) => {
            SharedEas::with_telemetry(model, config, sink.clone() as Arc<dyn TelemetrySink>)
        }
        (None, None) => SharedEas::new(model, config),
    };
    if opts.store.is_some() && !eas.table().is_empty() {
        println!(
            "warm-started from recovered table ({} kernels)",
            eas.table().snapshot_with_taint().len()
        );
    }

    std::thread::scope(|s| {
        for stream in 0..STREAMS {
            let eas = Arc::clone(&eas);
            let platform = platform.clone();
            let repeat = opts.repeat;
            s.spawn(move || {
                let mut rt = EasRuntime::with_shared(platform, eas);
                for round in 0..repeat {
                    for workload in [suite::blackscholes_small(), suite::mandelbrot_small()] {
                        let spec = workload.spec();
                        let outcome = rt.run(workload.as_ref());
                        assert!(outcome.verification.is_passed());
                        if round == 0 {
                            println!(
                                "stream {stream}: {:>4}  {:>8.4} s  {:>8.3} J  EDP {:>9.4}",
                                spec.abbrev, outcome.time, outcome.energy_joules, outcome.edp,
                            );
                        }
                    }
                }
            });
        }
    });

    // The table holds one learned ratio per kernel, no matter how many
    // streams ran it; profiling decisions were made once per kernel, not
    // once per stream.
    println!();
    for workload in [suite::blackscholes_small(), suite::mandelbrot_small()] {
        let kernel = kernel_id_of(workload.as_ref());
        let stat = eas.table().stat(kernel).unwrap();
        println!(
            "{:>4}: learned α = {:.2}  (weight {:.0}, {} reuse invocations)",
            workload.spec().abbrev,
            stat.alpha,
            stat.weight,
            stat.invocations_seen,
        );
    }
    println!(
        "total α decisions across {STREAMS} streams: {} (reuse is decision-free)",
        eas.decisions()
    );

    // The learned table persists like the power model does, so the next
    // process warm-starts instead of re-profiling.
    println!("\npersisted table:\n{}", table_to_text(eas.table()));
    if opts.store.is_some() {
        // Under `--chaos-fs` the checkpoint may hit injected faults; each
        // retry advances the fault stream past the window, so a bounded
        // loop re-arms durability. A still-failing disk is reported, not
        // fatal — the scheduler kept full fidelity the whole run.
        let attempts = if opts.chaos_fs.is_some() { 32 } else { 1 };
        let mut failed = 0u32;
        loop {
            match eas.checkpoint() {
                Ok(()) => {
                    if failed > 0 {
                        println!("checkpoint re-armed after {failed} injected faults");
                    }
                    println!("checkpointed store (journal compacted into a fresh snapshot)");
                    break;
                }
                Err(e) if opts.chaos_fs.is_some() => {
                    failed += 1;
                    if failed >= attempts {
                        println!("checkpoint still failing after {failed} attempts ({e}); store stays degraded-to-memory");
                        break;
                    }
                }
                Err(e) => panic!("checkpoint table store: {e}"),
            }
        }
        let health = eas.health();
        if opts.chaos_fs.is_some() {
            println!(
                "store health: {} io errors absorbed, degraded {}, {} journal bytes",
                health.store_io_errors,
                health.store_degraded != 0,
                health.store_bytes
            );
        }
    }

    if let Some((path, sink)) = &tracing {
        let records = sink.snapshot();
        let trace = to_trace(&records);
        // Self-check: the exported trace must round-trip through the
        // analyzer before we hand it to the user (bit-level, since
        // PartialEq cannot see NaN == NaN).
        let reparsed = parse_trace(&trace).expect("exported trace must parse");
        assert!(
            reparsed.len() == records.len()
                && reparsed.iter().zip(&records).all(|(a, b)| a.bitwise_eq(b)),
            "trace round-trip must be lossless"
        );
        std::fs::write(path, trace).expect("write trace file");
        println!(
            "wrote {} decision records to {} (open in Perfetto or chrome://tracing)",
            records.len(),
            path.display()
        );
    }
}
