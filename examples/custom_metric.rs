//! The scheduler optimizes *any* metric expressible as f(power, time)
//! (paper §1, contribution 2). This example defines a custom
//! thermally-weighted metric P²·T — penalizing high power draw harder than
//! the energy-delay product does — and compares the splits EAS chooses for
//! different objectives on the same workload.
//!
//! ```text
//! cargo run --release --example custom_metric
//! ```

use easched::core::{characterize, CharacterizationConfig, EasConfig, EasRuntime, Objective};
use easched::kernels::suite;
use easched::sim::Platform;
use std::sync::Arc;

fn main() {
    let platform = Platform::haswell_desktop();
    let model = characterize(&platform, &CharacterizationConfig::default());

    let thermal = Objective::Custom {
        name: "P²T (thermal)",
        f: Arc::new(|power, time| power * power * time),
    };

    println!(
        "{:<16} {:>10} {:>12} {:>10} {:>8}",
        "objective", "time (s)", "energy (J)", "avg W", "EAS α"
    );
    for objective in [
        Objective::Time,
        Objective::EnergyDelay,
        Objective::Energy,
        thermal,
    ] {
        let name = objective.name();
        let mut runtime =
            EasRuntime::new(platform.clone(), model.clone(), EasConfig::new(objective));
        let workload = suite::seismic_desktop();
        let outcome = runtime.run(workload.as_ref());
        assert!(outcome.verification.is_passed());
        // The learned split for the seismic kernel.
        let alpha = runtime.scheduler().learned_alpha(kernel_id("SM"));
        println!(
            "{:<16} {:>10.3} {:>12.2} {:>10.1} {:>8}",
            name,
            outcome.time,
            outcome.energy_joules,
            outcome.energy_joules / outcome.time,
            alpha.map_or("-".into(), |a| format!("{a:.2}")),
        );
    }
    println!("\nhigher power-sensitivity pushes the split toward the 30 W GPU");
}

/// The runtime keys kernels by an FNV hash of the abbreviation (see
/// `easched_runtime::sim_backend`).
fn kernel_id(abbrev: &str) -> u64 {
    abbrev.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}
