//! Fault injection and graceful degradation: the EAS pipeline surviving a
//! GPU driver outage (DESIGN.md §9).
//!
//! A `ChaosInjector` corrupts what the scheduler *observes* — never what
//! executes — first with a sustained GPU hang, then with noisy sensor
//! faults. Watch the circuit breaker trip, the quarantined invocations run
//! CPU-only, the recovery probe close the breaker, and the health
//! telemetry account for every step.
//!
//! ```text
//! cargo run --release --example chaos_runtime
//! ```

use easched::core::{characterize, CharacterizationConfig, EasConfig, EasScheduler, Objective};
use easched::kernels::suite;
use easched::runtime::chaos::{run_workload_chaos, ChaosInjector, Fault, FaultPlan};
use easched::sim::{Machine, Platform};

fn main() {
    let platform = Platform::haswell_desktop();
    println!("characterizing {} ...", platform.name);
    let model = characterize(&platform, &CharacterizationConfig::default());

    // --- Act 1: a GPU driver outage that later clears. -------------------
    // The first observation steps all hang; the breaker trips, quarantines
    // the GPU, and a probe invocation discovers the recovery.
    let mut eas = EasScheduler::new(model.clone(), EasConfig::new(Objective::EnergyDelay));
    let mut injector = ChaosInjector::new(FaultPlan::GpuOutage { from: 0, until: 4 });
    println!("\n== GPU outage across the first observation steps ==");
    for round in 0..10 {
        let mut machine = Machine::new(platform.clone());
        let (metrics, v) = run_workload_chaos(
            &mut machine,
            suite::bfs_small().as_ref(),
            &mut eas,
            &mut injector,
        );
        assert!(v.is_passed(), "faults must never corrupt outputs");
        let h = eas.health();
        println!(
            "run {round}: {:>8.4} s  breaker={:?}  quarantined={} probes={} recoveries={}",
            metrics.time,
            eas.health_state().breaker().state(),
            h.quarantined_invocations,
            h.probes,
            h.recoveries,
        );
    }
    let h = eas.health();
    assert!(
        h.recoveries > 0,
        "the probe should have found a healthy GPU"
    );

    // --- Act 2: flaky sensors under a fresh scheduler. -------------------
    // Random energy/counter/NaN glitches: rejected rounds are retried with
    // backed-off chunks, learned entries are tainted and re-profiled, and
    // the workload still verifies.
    let mut eas = EasScheduler::new(model, EasConfig::new(Objective::EnergyDelay));
    let mut injector = ChaosInjector::new(FaultPlan::Random {
        seed: 42,
        rate: 0.3,
        kinds: vec![
            Fault::EnergyDropout,
            Fault::EnergyWrap,
            Fault::CounterCorrupt,
            Fault::NanObservation,
        ],
    });
    println!("\n== flaky sensors (30% fault rate) ==");
    for workload in [suite::bfs_small(), suite::mandelbrot_small()] {
        let mut machine = Machine::new(platform.clone());
        let (metrics, v) =
            run_workload_chaos(&mut machine, workload.as_ref(), &mut eas, &mut injector);
        assert!(v.is_passed());
        println!(
            "{:>4}: {:>8.4} s  {:>8.3} J  (verified)",
            workload.spec().abbrev,
            metrics.time,
            metrics.energy_joules,
        );
    }
    let h = eas.health();
    println!(
        "\nhealth: accepted={} rejected={} retries={} taints={} degraded={} trips={}",
        h.observations_accepted,
        h.observations_rejected,
        h.retries,
        h.taints,
        h.degraded_invocations,
        h.breaker_trips,
    );
    println!(
        "injected {} faults over {} steps",
        injector.injected(),
        injector.steps()
    );
    assert_eq!(h.breaker_trips, 0, "sensor faults never quarantine the GPU");
}
