//! Fault injection and graceful degradation: the EAS pipeline surviving a
//! GPU driver outage (DESIGN.md §9).
//!
//! A `ChaosInjector` corrupts what the scheduler *observes* — never what
//! executes — first with a sustained GPU hang, then with noisy sensor
//! faults. Watch the circuit breaker trip, the quarantined invocations run
//! CPU-only, the recovery probe close the breaker, and the health
//! telemetry account for every step.
//!
//! ```text
//! cargo run --release --example chaos_runtime
//! cargo run --release --example chaos_runtime -- --trace chaos.trace.json
//! ```
//!
//! With `--trace <path>`, every invocation's `DecisionRecord` is dumped as
//! a Chrome Trace Event file — open it in Perfetto (ui.perfetto.dev) or
//! chrome://tracing to see the degraded/quarantined/probe invocations on
//! per-kernel tracks (see README "Inspecting decision traces").

use easched::core::telemetry::{parse_trace, to_trace};
use easched::core::{
    characterize, CharacterizationConfig, EasConfig, EasScheduler, Objective, RingSink,
    TelemetrySink,
};
use easched::kernels::suite;
use easched::runtime::chaos::{run_workload_chaos, ChaosInjector, Fault, FaultPlan};
use easched::sim::{Machine, Platform};
use std::path::PathBuf;
use std::sync::Arc;

/// `--trace <path>` from argv, if given.
fn trace_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(PathBuf::from(
                args.next().expect("--trace requires a file path"),
            ));
        }
    }
    None
}

fn main() {
    let platform = Platform::haswell_desktop();
    println!("characterizing {} ...", platform.name);
    let model = characterize(&platform, &CharacterizationConfig::default());
    let tracing = trace_path().map(|p| (p, Arc::new(RingSink::with_capacity(1 << 14))));

    // --- Act 1: a GPU driver outage that later clears. -------------------
    // The first observation steps all hang; the breaker trips, quarantines
    // the GPU, and a probe invocation discovers the recovery.
    let mut eas = EasScheduler::new(model.clone(), EasConfig::new(Objective::EnergyDelay));
    if let Some((_, sink)) = &tracing {
        eas.set_telemetry(Some(sink.clone() as Arc<dyn TelemetrySink>));
    }
    let mut injector = ChaosInjector::new(FaultPlan::GpuOutage { from: 0, until: 4 });
    println!("\n== GPU outage across the first observation steps ==");
    for round in 0..10 {
        let mut machine = Machine::new(platform.clone());
        let (metrics, v) = run_workload_chaos(
            &mut machine,
            suite::bfs_small().as_ref(),
            &mut eas,
            &mut injector,
        );
        assert!(v.is_passed(), "faults must never corrupt outputs");
        let h = eas.health();
        println!(
            "run {round}: {:>8.4} s  breaker={:?}  quarantined={} probes={} recoveries={}",
            metrics.time,
            eas.health_state().breaker().state(),
            h.quarantined_invocations,
            h.probes,
            h.recoveries,
        );
    }
    let h = eas.health();
    assert!(
        h.recoveries > 0,
        "the probe should have found a healthy GPU"
    );

    // --- Act 2: flaky sensors under a fresh scheduler. -------------------
    // Random energy/counter/NaN glitches: rejected rounds are retried with
    // backed-off chunks, learned entries are tainted and re-profiled, and
    // the workload still verifies.
    let mut eas = EasScheduler::new(model, EasConfig::new(Objective::EnergyDelay));
    if let Some((_, sink)) = &tracing {
        eas.set_telemetry(Some(sink.clone() as Arc<dyn TelemetrySink>));
    }
    let mut injector = ChaosInjector::new(FaultPlan::Random {
        seed: 42,
        rate: 0.3,
        kinds: vec![
            Fault::EnergyDropout,
            Fault::EnergyWrap,
            Fault::CounterCorrupt,
            Fault::NanObservation,
        ],
    });
    println!("\n== flaky sensors (30% fault rate) ==");
    for workload in [suite::bfs_small(), suite::mandelbrot_small()] {
        let mut machine = Machine::new(platform.clone());
        let (metrics, v) =
            run_workload_chaos(&mut machine, workload.as_ref(), &mut eas, &mut injector);
        assert!(v.is_passed());
        println!(
            "{:>4}: {:>8.4} s  {:>8.3} J  (verified)",
            workload.spec().abbrev,
            metrics.time,
            metrics.energy_joules,
        );
    }
    let h = eas.health();
    println!(
        "\nhealth: accepted={} rejected={} retries={} taints={} degraded={} trips={}",
        h.observations_accepted,
        h.observations_rejected,
        h.retries,
        h.taints,
        h.degraded_invocations,
        h.breaker_trips,
    );
    println!(
        "injected {} faults over {} steps",
        injector.injected(),
        injector.steps()
    );
    assert_eq!(h.breaker_trips, 0, "sensor faults never quarantine the GPU");

    if let Some((path, sink)) = &tracing {
        let records = sink.snapshot();
        let trace = to_trace(&records);
        // Self-check: the exported trace must round-trip through the
        // analyzer before we hand it to the user (bit-level: fault runs
        // legitimately record NaN phase totals, and NaN != NaN).
        let reparsed = parse_trace(&trace).expect("exported trace must parse");
        assert!(
            reparsed.len() == records.len()
                && reparsed.iter().zip(&records).all(|(a, b)| a.bitwise_eq(b)),
            "trace round-trip must be lossless"
        );
        std::fs::write(path, trace).expect("write trace file");
        println!(
            "\nwrote {} decision records to {} (open in Perfetto or chrome://tracing)",
            records.len(),
            path.display()
        );
    }
}
