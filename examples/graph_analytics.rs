//! Graph analytics on a road network using the frontier engines and the
//! real work-stealing CPU pool — the runtime substrate the scheduler
//! partitions over, shown standalone with actual OS threads.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use easched::graph::{
    delta_stepping::delta_stepping, gen, graph_stats, reference, BfsEngine, SsspEngine,
};
use easched::runtime::parallel_for;
use std::time::Instant;

fn main() {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    println!("building a 400×400 road network, {workers} CPU workers...");
    let g = gen::road_network(400, 400, 42);
    let stats = graph_stats(&g);
    println!(
        "|V| = {}, |E| = {}, mean degree {:.2}, max degree {}, pseudo-diameter {} \
         (W-USA-like: high diameter, flat degrees)",
        stats.vertices, stats.edges, stats.mean_degree, stats.max_degree, stats.pseudo_diameter
    );

    // Level-synchronous BFS: every level is one parallel_for over the
    // frontier (the invocation structure the paper's BFS workload has).
    let t0 = Instant::now();
    let mut bfs = BfsEngine::new(&g, 0);
    let mut levels = 0;
    let mut max_frontier = 0;
    while !bfs.is_done() {
        let n = bfs.frontier_len();
        max_frontier = max_frontier.max(n);
        let engine = &bfs;
        parallel_for(n as u64, workers, &|i| engine.process_item(i));
        bfs.advance();
        levels += 1;
    }
    let bfs_time = t0.elapsed();
    let reached = bfs.distances().iter().filter(|&&d| d != u32::MAX).count();
    println!(
        "BFS: {levels} levels (= kernel invocations), max frontier {max_frontier}, \
         {reached} vertices reached in {bfs_time:.2?}"
    );

    // Weighted shortest paths with the same structure.
    let t0 = Instant::now();
    let mut sssp = SsspEngine::new(&g, 0);
    let mut rounds = 0;
    while !sssp.is_done() {
        let n = sssp.frontier_len();
        let engine = &sssp;
        parallel_for(n as u64, workers, &|i| engine.process_item(i));
        sssp.advance();
        rounds += 1;
    }
    println!("SSSP: {rounds} relaxation rounds in {:.2?}", t0.elapsed());

    // Sanity: three independent algorithms agree.
    let t0 = Instant::now();
    let serial = reference::dijkstra(&g, 0);
    let dijkstra_time = t0.elapsed();
    let t0 = Instant::now();
    let ds = delta_stepping(&g, 0, 50);
    let ds_time = t0.elapsed();
    assert_eq!(ds, serial);
    let sample = (g.vertex_count() / 2) as usize;
    assert_eq!(sssp.distances()[sample], serial[sample]);
    println!(
        "distance to vertex {sample}: {} (Bellman-Ford rounds = Dijkstra {dijkstra_time:.2?} = \
         delta-stepping {ds_time:.2?})",
        serial[sample]
    );
}
