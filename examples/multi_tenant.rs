//! Multi-tenant overload protection: eight tenants at twice the drain
//! capacity, surviving admission control, backpressure, and the
//! brownout ladder (DESIGN.md §13).
//!
//! The canonical overload storm drives a `TenantFrontend` — bounded
//! per-tenant queues, weighted fair-share draining, quota windows, and
//! the three-rung brownout ladder — in front of one shared scheduler
//! while a bursty co-tenant fault plan hammers the package. The run is
//! recorded as a v2 run log; `--ci` additionally asserts the
//! acceptance gates (bounded queues, fair-share deficit ≤ 5 %,
//! admitted-work EDP ≥ 70 % of clean) and replays the log
//! byte-identically.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! cargo run --release --example multi_tenant -- --seed 23 --ci
//! ```

use easched::replay::overload::{overload_registry, overload_traffic};
use easched::replay::{record_overload_storm, replay_overload_storm, OverloadSpec};

fn traffic_desc(t: &easched::runtime::TenantTraffic) -> String {
    if t.burst_every > 0 {
        format!(
            "bursty({:.1}, x{:.1} every {})",
            t.rate, t.burst_factor, t.burst_every
        )
    } else {
        format!("poisson({:.1})", t.rate)
    }
}

fn args() -> (u64, bool) {
    let mut seed = 7u64;
    let mut ci = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed requires an integer")
            }
            "--ci" => ci = true,
            other => panic!("unknown flag {other:?} (usage: multi_tenant [--seed N] [--ci])"),
        }
    }
    (seed, ci)
}

fn main() {
    let (seed, ci) = args();
    let spec = OverloadSpec::new(seed);
    let registry = overload_registry();
    let traffic = overload_traffic();

    println!(
        "recording the canonical overload storm: seed {seed}, {} ticks, 8 tenants ...",
        spec.ticks
    );
    let r = record_overload_storm(&spec);

    println!(
        "\noffered {} requests, shed {}, executed {} — ~{:.1}x the drain capacity",
        r.offered,
        r.shed,
        r.executed,
        r.offered as f64 / r.executed as f64,
    );
    println!(
        "brownout: {} transitions, final rung {:?}",
        r.brownout_transitions, r.final_level
    );
    println!(
        "admitted-work EDP efficiency vs clean: {:.3} (gate: >= 0.7)",
        r.edp_efficiency()
    );
    println!(
        "worst fair-share deficit: {:.4} (gate: <= 0.05)",
        r.fair_share_deficit
    );

    // Per-tenant ledger. Entitlement is the weight share of the
    // fairness-eligible set (unmetered, above the shed waterline);
    // quota-metered and sheddable tenants are policy-limited, not
    // entitled.
    let eligible: Vec<usize> = registry
        .iter()
        .filter(|(_, s)| s.quota.is_none() && s.priority > 0)
        .map(|(t, _)| t)
        .collect();
    let total_weight: f64 = eligible.iter().map(|&t| registry.spec(t).weight).sum();
    let total_debt: f64 = eligible
        .iter()
        .map(|&t| r.tenant_stats[t].1.gpu_seconds)
        .sum();
    println!(
        "\n{:<8} {:>6} {:>9} {:>9} {:>8} {:>7} {:>7}  traffic",
        "tenant", "weight", "entitled", "received", "offered", "queued", "shed"
    );
    for (t, (name, st)) in r.tenant_stats.iter().enumerate() {
        let spec_t = registry.spec(t);
        let (entitled, received) = if eligible.contains(&t) {
            (
                format!("{:>8.1}%", 100.0 * spec_t.weight / total_weight),
                format!("{:>8.1}%", 100.0 * st.gpu_seconds / total_debt),
            )
        } else {
            ("       —".to_string(), "       —".to_string())
        };
        println!(
            "{name:<8} {:>6.1} {entitled} {received} {:>8} {:>7} {:>7}  {}",
            spec_t.weight,
            st.offered,
            st.queued,
            st.shed,
            traffic_desc(&traffic[t]),
        );
    }

    if ci {
        assert!(r.queues_bounded, "queues must stay bounded");
        assert!(r.offered > r.executed as u64, "storm must oversubscribe");
        assert!(
            r.fair_share_deficit <= 0.05,
            "fair-share deficit {} exceeds 5%",
            r.fair_share_deficit
        );
        assert!(
            r.edp_efficiency() >= 0.7,
            "admitted-work EDP efficiency {} below 0.7",
            r.edp_efficiency()
        );
        println!("\nreplaying the recorded run ...");
        let outcome = replay_overload_storm(&r.log).expect("log is replayable");
        assert!(
            outcome.identical,
            "overload replay diverged: {}",
            outcome.first_difference.as_deref().unwrap_or("?")
        );
        println!("byte-identical; all overload gates hold");
    }
}
