//! The paper's runtime architecture on real OS threads: work-stealing CPU
//! workers plus a GPU proxy thread, driven by the EAS policy in wall-clock
//! time.
//!
//! The "GPU" is the proxy-paced device emulation from
//! `easched_runtime::ThreadBackend` (we have no OpenCL device — see
//! DESIGN.md §2); everything else is the real machinery: shared-counter
//! profiling, throughput measurement, α decisions, split execution.
//!
//! ```text
//! cargo run --release --example thread_runtime
//! ```

use easched::core::{characterize, CharacterizationConfig, EasConfig, EasScheduler, Objective};
use easched::runtime::{Scheduler, ThreadBackend, ThreadBackendConfig};
use easched::sim::Platform;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

fn main() {
    let platform = Platform::haswell_desktop();
    let model = characterize(&platform, &CharacterizationConfig::default());
    let mut eas = EasScheduler::new(model, EasConfig::new(Objective::EnergyDelay));

    // A real Mandelbrot render: items are pixels, executed by whichever
    // "device" claims them.
    let (width, height, max_iter) = (1024usize, 512usize, 192u32);
    let pixels: Vec<AtomicU32> = (0..width * height).map(|_| AtomicU32::new(0)).collect();
    let render = |i: usize| {
        let (x, y) = (i % width, i / width);
        let (cx, cy) = (
            -2.2 + 3.2 * (x as f64 + 0.5) / width as f64,
            -1.2 + 2.4 * (y as f64 + 0.5) / height as f64,
        );
        let (mut zx, mut zy) = (0.0f64, 0.0);
        let mut it = 0;
        while zx * zx + zy * zy <= 4.0 && it < max_iter {
            let t = zx * zx - zy * zy + cx;
            zy = 2.0 * zx * zy + cy;
            zx = t;
            it += 1;
        }
        pixels[i].store(it, Ordering::Relaxed);
    };

    let workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    // Emulated GPU: 3M pixels/s wall-clock.
    let config = ThreadBackendConfig::new(workers, 3.0e6);
    let traits = easched::sim::KernelTraits::builder("mandelbrot")
        .cpu_rate(2.0e6)
        .gpu_rate(3.0e6)
        .memory_intensity(0.85)
        .build();

    println!("rendering {width}×{height} Mandelbrot on {workers} CPU workers + GPU proxy thread");
    let t0 = Instant::now();
    let mut backend =
        ThreadBackend::new(config, &platform, &traits, (width * height) as u64, &render);
    eas.schedule(1, &mut backend);
    let elapsed = t0.elapsed();

    let interior = pixels
        .iter()
        .filter(|p| p.load(Ordering::Relaxed) == max_iter)
        .count();
    println!(
        "done in {elapsed:.2?}: {} pixels, {interior} interior points, learned α = {:?}",
        width * height,
        eas.learned_alpha(1)
    );
    assert!(interior > 0, "the render must contain set members");

    // Crude ASCII proof that real work happened.
    for row in (0..height).step_by(height / 12) {
        let line: String = (0..width)
            .step_by(width / 72)
            .map(|col| {
                let it = pixels[row * width + col].load(Ordering::Relaxed);
                match it {
                    i if i == max_iter => '#',
                    i if i > 24 => '+',
                    i if i > 8 => '.',
                    _ => ' ',
                }
            })
            .collect();
        println!("{line}");
    }
}
