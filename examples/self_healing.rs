//! The self-healing control loop closing end to end (DESIGN.md §11):
//! injected model drift → EWMA breach → budgeted auto-reprofile →
//! re-convergence, narrated through the telemetry control events.
//!
//! A `ChaosInjector` surges every observed energy reading by 2.5× — the
//! readings stay internally plausible, so §9 vetting passes them and only
//! the drift monitor can notice that realized EDP has left the learned
//! reference behind. Watch the per-kernel EWMA climb past the bound,
//! the reprofile fire (spending a token from the global budget), the α
//! re-learn under the new conditions, and the whole story repeat in
//! reverse when the surge clears.
//!
//! ```text
//! cargo run --release --example self_healing
//! cargo run --release --example self_healing -- --trace selfheal.trace.json
//! ```
//!
//! With `--trace <path>`, every invocation's `DecisionRecord` is dumped as
//! a Chrome Trace Event file (see README "Inspecting decision traces").

use easched::core::telemetry::{parse_trace, to_trace};
use easched::core::{
    characterize, CharacterizationConfig, DriftPolicy, EasConfig, EasScheduler, Objective,
    RingSink, TelemetrySink,
};
use easched::kernels::suite;
use easched::runtime::chaos::{run_workload_chaos, ChaosInjector, FaultPlan};
use easched::runtime::kernel_id_of;
use easched::sim::{Machine, Platform};
use std::path::PathBuf;
use std::sync::Arc;

/// `--trace <path>` from argv, if given.
fn trace_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(PathBuf::from(
                args.next().expect("--trace requires a file path"),
            ));
        }
    }
    None
}

fn main() {
    // A quiet machine: zero measurement noise keeps the EWMA story crisp.
    let mut platform = Platform::haswell_desktop();
    platform.pcu.measurement_noise = 0.0;
    println!("characterizing {} ...", platform.name);
    let model = characterize(&platform, &CharacterizationConfig::default());

    // The default drift policy is deliberately deaf to anything below a
    // 2× misprediction; a 2.5× energy surge lands at relative EDP error
    // |1 − 2.5| / 2.5 = 0.6, so this demo tightens the bound to hear it
    // while keeping all three reaction guards (K consecutive breaches,
    // per-kernel cooldown, global token budget) in play.
    let mut config = EasConfig::new(Objective::EnergyDelay);
    config.reprofile_every = None; // only the drift monitor may re-profile
    config.drift = DriftPolicy {
        enabled: true,
        bound: 0.3,
        breach_invocations: 3,
        ewma_weight: 0.6,
        cooldown: 4,
        rearm_ratio: 0.5,
        bucket_capacity: 2.0,
        bucket_refill: 0.0,
    };
    let mut eas = EasScheduler::new(model, config);
    let sink = Arc::new(RingSink::with_capacity(1 << 12));
    eas.set_telemetry(Some(sink.clone() as Arc<dyn TelemetrySink>));

    let workload = suite::mandelbrot_desktop();
    let kernel = kernel_id_of(workload.as_ref());
    let act = |label: &str, runs: usize, plan: FaultPlan, eas: &mut EasScheduler| {
        println!("\n== {label} ==");
        let mut injector = ChaosInjector::new(plan);
        for run in 0..runs {
            let mut machine = Machine::new(platform.clone());
            let (metrics, v) =
                run_workload_chaos(&mut machine, workload.as_ref(), eas, &mut injector);
            assert!(v.is_passed(), "drift must never corrupt outputs");
            let h = eas.health();
            let ewma = sink
                .metrics()
                .kernel_drift(kernel)
                .map_or("   --".into(), |e| format!("{e:5.2}"));
            println!(
                "run {run}: {:>7.3} s  α {:.2}  drift EWMA {ewma}  reprofiles={} suppressed={}",
                metrics.time,
                eas.learned_alpha(kernel).unwrap_or(0.0),
                h.drift_reprofiles,
                h.reprofiles_suppressed,
            );
        }
    };

    // Act 1 — healthy: profile once, settle into table reuse. The EWMA
    // hovers near zero because realized EDP tracks the learned reference.
    act("healthy baseline", 4, FaultPlan::None, &mut eas);
    let baseline = eas.health();
    assert_eq!(baseline.drift_reprofiles, 0);

    // Act 2 — the platform shifts (thermal envelope, co-runner, firmware:
    // the monitor is black-box and does not care which). Every reading
    // burns 2.5× the energy; after K consecutive breaches the monitor
    // taints the entry and the next invocation re-profiles automatically.
    act(
        "sustained 2.5x energy surge",
        8,
        FaultPlan::Drift {
            from: 0,
            until: u64::MAX,
        },
        &mut eas,
    );
    let surged = eas.health();
    assert!(
        surged.drift_reprofiles > baseline.drift_reprofiles,
        "sustained drift must trigger a reprofile: {surged:?}"
    );
    assert!(surged.fault_free(), "adaptation is not a fault: {surged:?}");

    // Act 3 — the surge clears. Reused splits now undershoot the surged
    // reference (error (2.5 − 1)/1 = 1.5), so the monitor reacts again —
    // re-profiling if the budget allows, suppressing once it runs dry.
    act("surge clears", 8, FaultPlan::None, &mut eas);
    let healed = eas.health();
    assert!(healed.fault_free(), "{healed:?}");
    println!(
        "\nhealth: reprofiles={} suppressed={} watchdog_trips={} taints={}",
        healed.drift_reprofiles, healed.reprofiles_suppressed, healed.watchdog_trips, healed.taints,
    );
    println!("\nprometheus exposition:\n{}", sink.metrics().expose());

    if let Some(path) = trace_path() {
        let records = sink.snapshot();
        let trace = to_trace(&records);
        let reparsed = parse_trace(&trace).expect("exported trace must parse");
        assert!(
            reparsed.len() == records.len()
                && reparsed.iter().zip(&records).all(|(a, b)| a.bitwise_eq(b)),
            "trace round-trip must be lossless"
        );
        std::fs::write(&path, trace).expect("write trace file");
        println!(
            "wrote {} decision records to {} (open in Perfetto or chrome://tracing)",
            records.len(),
            path.display()
        );
    }
}
