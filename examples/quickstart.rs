//! Quickstart: characterize a platform once, then run workloads under the
//! energy-aware scheduler.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use easched::core::{characterize, CharacterizationConfig, EasConfig, EasRuntime, Objective};
use easched::kernels::suite;
use easched::sim::Platform;

fn main() {
    // 1. One-time black-box power characterization of the platform
    //    (the paper's §2: eight micro-benchmarks swept over GPU offload
    //    ratios, sixth-order polynomial fits).
    let platform = Platform::haswell_desktop();
    println!("characterizing {} ...", platform.name);
    let model = characterize(&platform, &CharacterizationConfig::default());
    for curve in model.curves() {
        println!("  {curve}");
    }

    // 2. Run applications under EAS, optimizing the energy-delay product.
    let mut runtime = EasRuntime::new(platform, model, EasConfig::new(Objective::EnergyDelay));
    for workload in [suite::blackscholes_small(), suite::mandelbrot_small()] {
        let spec = workload.spec();
        let outcome = runtime.run(workload.as_ref());
        println!(
            "{:>4}: {:>8.4} s  {:>8.3} J  EDP {:>9.4}  output {}",
            spec.abbrev,
            outcome.time,
            outcome.energy_joules,
            outcome.edp,
            if outcome.verification.is_passed() {
                "verified"
            } else {
                "WRONG"
            },
        );
        assert!(outcome.verification.is_passed());
    }
    println!(
        "scheduling decisions made: {} (the kernel table reuses learned ratios)",
        runtime.scheduler().decisions()
    );
}
