//! Compares the paper's five scheduling schemes (CPU / GPU / PERF / EAS /
//! Oracle) on one workload — a miniature of the paper's Figure 9.
//!
//! ```text
//! cargo run --release --example compare_schemes
//! ```

use easched::core::{characterize, CharacterizationConfig, Evaluator, Objective};
use easched::kernels::suite;
use easched::sim::Platform;

fn main() {
    let platform = Platform::haswell_desktop();
    let model = characterize(&platform, &CharacterizationConfig::default());
    let evaluator = Evaluator::new(platform, model);

    let workload = suite::seismic_desktop();
    println!("workload: {} (SM), objective: EDP\n", workload.spec().name);

    let c = evaluator.compare(workload.as_ref(), &Objective::EnergyDelay);
    let rows = [
        ("CPU-alone", c.cpu),
        ("GPU-alone", c.gpu),
        ("PERF", c.perf),
        ("EAS", c.eas),
        ("Oracle", c.oracle),
    ];
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12}",
        "scheme", "time (s)", "energy (J)", "EDP", "vs Oracle"
    );
    for (name, r) in rows {
        println!(
            "{:<10} {:>10.3} {:>12.2} {:>12.1} {:>11.1}%",
            name,
            r.metrics.time,
            r.metrics.energy_joules,
            r.metrics.edp(),
            100.0 * c.efficiency(r),
        );
    }
    println!(
        "\nOracle fixed split: α = {:.1}; EAS learned α = {:?}",
        c.oracle_alpha, c.eas_alpha
    );
}
