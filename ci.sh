#!/usr/bin/env sh
# Minimal CI gate for the easched workspace. Run from the repo root.
#
# Mirrors the tier-1 acceptance commands (build + root-package tests) and
# adds the full workspace test suite, formatting, and lints.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> chaos matrix: release, full desktop suite"
cargo test -q --release --test chaos

echo "==> chaos matrix: debug seed sweep"
for seed in 7 23 1009; do
    echo "    EASCHED_CHAOS_SEED=$seed"
    EASCHED_CHAOS_SEED=$seed cargo test -q --test chaos
done

echo "==> telemetry smoke: traced example round-trips, drift study emits CSV"
cargo run --release --example chaos_runtime -- --trace target/ci-chaos.trace.json > /dev/null
test -s target/ci-chaos.trace.json
cargo run --release -p easched-bench --bin figures -- --out target/ci-results telemetry > /dev/null
test -s target/ci-results/telemetry.csv

echo "==> self-healing smoke: drift injection -> auto-reprofile -> convergence"
cargo run --release --example self_healing > /dev/null

echo "==> crash-recovery smoke: SIGKILL mid-run, journal must restore the table"
rm -rf target/ci-crash.d
cargo build --release --example shared_runtime
# One completed run guarantees the store has content, then a long run is
# killed hard mid-flight; recovery must still produce a clean table.
./target/release/examples/shared_runtime --store target/ci-crash.d > /dev/null
./target/release/examples/shared_runtime --store target/ci-crash.d --repeat 5000 > /dev/null 2>&1 &
CRASH_PID=$!
sleep 2
kill -9 "$CRASH_PID" 2>/dev/null || true
wait "$CRASH_PID" 2>/dev/null || true
./target/release/examples/shared_runtime --store target/ci-crash.d --verify-recovery

echo "==> storm chaos: hang + power-surge storm, release"
cargo test -q --release --test selfheal

echo "==> replay smoke: record a chaos storm, replay must be byte-identical"
./target/release/easched record --out target/ci-replay.runlog --seed 7 > /dev/null
./target/release/easched replay --log target/ci-replay.runlog

echo "==> replay bisect: perturbed log must diverge and shrink to a reproducer"
if ./target/release/easched replay --log target/ci-replay.runlog \
    --perturb 40 --bisect --emit-fixture target/ci-replay-min.runlog > target/ci-bisect.out; then
    echo "perturbed replay did not diverge -- the reporter is broken"
    exit 1
fi
grep -q "first divergent decision" target/ci-bisect.out
test -s target/ci-replay-min.runlog

echo "==> overload storm: 8 tenants at 2x load, seed matrix, all gates"
cargo build --release --example multi_tenant
for seed in 7 23 1009; do
    echo "    multi_tenant --seed $seed --ci"
    ./target/release/examples/multi_tenant --seed "$seed" --ci > /dev/null
done

echo "==> overload replay: record one overloaded run, byte-identical via easched replay"
./target/release/easched record --out target/ci-overload.runlog --overload --seed 7 > /dev/null
./target/release/easched replay --log target/ci-overload.runlog

echo "==> observability plane: live scrape during a storm + SLO exemplar replay"
rm -f target/ci-serve.out
./target/release/easched serve --addr 127.0.0.1:0 --seed 7 --ticks 32 \
    --out target/ci-serve.runlog --trace target/ci-serve.trace.json \
    --hold 20 > target/ci-serve.out 2>/dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q '^serving on http://' target/ci-serve.out 2>/dev/null && break
    sleep 0.2
done
SERVE_ADDR=$(sed -n 's|^serving on http://||p' target/ci-serve.out | head -n 1)
test -n "$SERVE_ADDR"
./target/release/easched scrape --addr "$SERVE_ADDR" --path /metrics > target/ci-serve-metrics.txt
./target/release/easched scrape --addr "$SERVE_ADDR" --path /health > target/ci-serve-health.txt
./target/release/easched scrape --addr "$SERVE_ADDR" --path /slo > target/ci-serve-slo.txt
grep -q '^easched_invocations_total' target/ci-serve-metrics.txt
grep -q '^easched_slo_breaches_total' target/ci-serve-metrics.txt
grep -q '^easched_build_info{' target/ci-serve-metrics.txt
grep -q '^easched_uptime_seconds' target/ci-serve-metrics.txt
grep -q '"fault_free"' target/ci-serve-health.txt
grep -q '"burn_threshold"' target/ci-serve-slo.txt
# Wait for the post-storm artifacts (run log, then span trace) so a
# breach exemplar can be replayed to its slice.
for _ in $(seq 1 150); do
    grep -q '^span trace written' target/ci-serve.out 2>/dev/null && break
    sleep 0.2
done
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_OFFSET=$(sed -n 's/.*--at \([0-9]*\)$/\1/p' target/ci-serve.out | head -n 1)
test -n "$SERVE_OFFSET"
./target/release/easched replay --log target/ci-serve.runlog --at "$SERVE_OFFSET" > /dev/null
grep -q '"cat":"span"' target/ci-serve.trace.json

echo "==> fleet chaos matrix: 3-node convergence under drops/dups/reorder/partition"
for seed in 7 23 1009; do
    echo "    fleet --seed $seed"
    rm -rf "target/ci-fleet-$seed.d"
    ./target/release/easched fleet --seed "$seed" \
        --store "target/ci-fleet-$seed.d" \
        --record "target/ci-fleet-$seed.runlog" > /dev/null
done

echo "==> fleet kill -9: SIGKILL a live fleet, every journal must recover clean"
rm -rf target/ci-fleet-crash.d
# One completed run seeds the stores; the long run then dies mid-flight.
./target/release/easched fleet --seed 7 --quiet-fabric --ticks 3 \
    --store target/ci-fleet-crash.d > /dev/null
./target/release/easched fleet --seed 7 --quiet-fabric --ticks 5000 \
    --store target/ci-fleet-crash.d > /dev/null 2>&1 &
FLEET_PID=$!
sleep 2
kill -9 "$FLEET_PID" 2>/dev/null || true
wait "$FLEET_PID" 2>/dev/null || true
./target/release/easched fleet --verify-recovery target/ci-fleet-crash.d

echo "==> fleet replay: recorded chaos run must be byte-identical"
./target/release/easched fleet --replay target/ci-fleet-7.runlog

echo "==> storage chaos: every-fault-point sweep (DESIGN.md §16)"
cargo test -q --release -p easched-core --test storage_chaos

echo "==> storage chaos: seeded write-fault storms through the shared store"
for seed in 7 23 1009; do
    echo "    shared_runtime --chaos-fs 150 --seed $seed"
    rm -rf "target/ci-schaos-$seed.d"
    ./target/release/examples/shared_runtime --store "target/ci-schaos-$seed.d" \
        --chaos-fs 150 --seed "$seed" > /dev/null
    ./target/release/examples/shared_runtime --store "target/ci-schaos-$seed.d" \
        --verify-recovery > /dev/null
done

echo "==> storage chaos: recorded run under injected faults replays byte-identically"
./target/release/easched record --out target/ci-schaos.runlog --seed 7 --chaos-fs 150 > /dev/null
./target/release/easched replay --log target/ci-schaos.runlog

echo "==> storage chaos: fleet on failing disks converges, records, replays"
./target/release/easched fleet --seed 7 --chaos-fs 200 --crash 1:2:4 \
    --record target/ci-schaos-fleet.runlog > /dev/null
./target/release/easched fleet --replay target/ci-schaos-fleet.runlog

echo "==> storage chaos: real ENOSPC on a full tmpfs (skipped without mount privileges)"
ENOSPC_DIR=target/ci-enospc-mnt
rm -rf "$ENOSPC_DIR"; mkdir -p "$ENOSPC_DIR"
if mount -t tmpfs -o size=256k tmpfs "$ENOSPC_DIR" 2>/dev/null; then
    # Seed durable state while the disk has room, then fill the device
    # solid: the next run hits genuine ENOSPC on every journal write.
    # `--chaos-fs 0` injects nothing but enables the tolerant
    # checkpoint path — the run must survive (degrade-to-memory), and
    # once the filler is gone, recovery must audit the seeded state.
    ./target/release/examples/shared_runtime --store "$ENOSPC_DIR/table.d" \
        > /dev/null 2>&1 || { umount "$ENOSPC_DIR"; exit 1; }
    dd if=/dev/zero of="$ENOSPC_DIR/filler" bs=1k count=300 2>/dev/null || true
    ./target/release/examples/shared_runtime --store "$ENOSPC_DIR/table.d" \
        --chaos-fs 0 --repeat 3 > /dev/null 2>&1 || {
        echo "run on a full tmpfs must not fail hard"
        umount "$ENOSPC_DIR"; exit 1
    }
    rm -f "$ENOSPC_DIR/filler"
    ./target/release/examples/shared_runtime --store "$ENOSPC_DIR/table.d" \
        --verify-recovery > /dev/null || { umount "$ENOSPC_DIR"; exit 1; }
    umount "$ENOSPC_DIR"
    echo "    ENOSPC smoke passed"
else
    echo "    tmpfs mount unavailable; skipped"
fi

echo "==> decide-path budget: fresh measurement vs committed BENCH_decide.json"
./target/release/bench_decide --out target/ci-bench-decide.json --check BENCH_decide.json

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy: no print!/eprintln! in library crates"
for p in easched-num easched-sim easched-graph easched-kernels \
         easched-runtime easched-core easched-telemetry easched-replay \
         easched-fleet easched-bench easched; do
    cargo clippy -q -p "$p" --lib -- -D warnings \
        -D clippy::print_stdout -D clippy::print_stderr
done

echo "CI green."
