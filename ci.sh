#!/usr/bin/env sh
# Minimal CI gate for the easched workspace. Run from the repo root.
#
# Mirrors the tier-1 acceptance commands (build + root-package tests) and
# adds the full workspace test suite, formatting, and lints.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> chaos matrix: release, full desktop suite"
cargo test -q --release --test chaos

echo "==> chaos matrix: debug seed sweep"
for seed in 7 23 1009; do
    echo "    EASCHED_CHAOS_SEED=$seed"
    EASCHED_CHAOS_SEED=$seed cargo test -q --test chaos
done

echo "==> telemetry smoke: traced example round-trips, drift study emits CSV"
cargo run --release --example chaos_runtime -- --trace target/ci-chaos.trace.json > /dev/null
test -s target/ci-chaos.trace.json
cargo run --release -p easched-bench --bin figures -- --out target/ci-results telemetry > /dev/null
test -s target/ci-results/telemetry.csv

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy: no print!/eprintln! in library crates"
for p in easched-num easched-sim easched-graph easched-kernels \
         easched-runtime easched-core easched-telemetry easched-bench easched; do
    cargo clippy -q -p "$p" --lib -- -D warnings \
        -D clippy::print_stdout -D clippy::print_stderr
done

echo "CI green."
