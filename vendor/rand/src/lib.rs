//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `rand` to this crate (see `[patch.crates-io]` in the
//! root manifest). It implements exactly the API surface the workspace
//! uses — `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen`, `gen_bool`, and `gen_range` — with a deterministic
//! xoshiro256++ generator. Streams differ from upstream `rand`'s ChaCha12
//! `StdRng`, but every consumer in this workspace only requires seeded
//! determinism, not upstream-bit-exact streams.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.gen_range(0u64..100), b.gen_range(0u64..100));
//! ```

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from OS entropy. This offline stand-in has no
    /// entropy source; it derives a seed from the monotonic clock instead,
    /// which is enough for the non-reproducible call sites (none in this
    /// workspace).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

/// SplitMix64 — used to expand a 64-bit seed into generator state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Deterministic, fast, and passes
    /// BigCrush — statistically interchangeable with upstream's StdRng for
    /// simulation inputs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut x = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut x);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that `Rng::gen` can produce (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value from the full/unit range.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T` (full integer range,
    /// `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-6i64..=6);
            assert!((-6..=6).contains(&w));
            let f = rng.gen_range(-4.0..4.0f64);
            assert!((-4.0..4.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn int_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
