//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `proptest` to this crate. It implements the subset of the proptest API
//! the workspace's property tests use: the `proptest!` macro (with
//! `#![proptest_config(..)]`), range/tuple/`Just`/`prop_oneof!`/`prop_map`
//! strategies, `prop::collection::vec`, `any::<T>()`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with the case index and the
//!   assertion message; seeds are deterministic per test name, so failures
//!   reproduce exactly on re-run.
//! * **Uniform sampling only** — upstream biases toward edge values;
//!   here every case is drawn uniformly.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration and the deterministic test RNG.

    /// Per-test configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic xoshiro256++ RNG; the seed is derived from the test
    /// name so each property has a stable, independent stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// A generator seeded from an arbitrary string (the test name).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut h);
            }
            TestRng { s }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` for property tests.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(std::rc::Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among several strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical full-range strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `elem` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Namespace alias mirroring upstream's `prop::` paths.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias mirroring upstream's `prop::` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Skips the rest of the current case when its inputs don't satisfy a
/// precondition. (Upstream proptest rejects and redraws; here the case is
/// simply abandoned, which preserves soundness — no false failures — at a
/// small cost in effective case count.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("property failed: {}", format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}: {}", format!($($fmt)*));
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{a:?} == {b:?}");
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Mirrors upstream's macro shape:
///
/// ```text
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = <$crate::test_runner::Config as Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                let run = || -> () { $body };
                if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {case}/{} of {} failed",
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 0u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -3.0..3.0f64, n in 1u32..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_maps(p in pairs().prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 200);
        }

        #[test]
        fn oneof_picks_all(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn any_produces_values(x in any::<u64>(), y in any::<u32>()) {
            let _ = (x, y);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
