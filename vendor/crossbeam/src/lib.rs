//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `crossbeam` to this crate. Only the `deque` module surface used by the
//! runtime's work-stealing pool is provided. The implementation is a
//! mutex-guarded ring buffer rather than a lock-free Chase-Lev deque — the
//! interface and the FIFO/steal semantics are identical, contention
//! behavior is merely coarser. Swap back to upstream crossbeam when the
//! environment regains network access.

#![forbid(unsafe_code)]

pub mod deque {
    //! Work-stealing deques (`Worker`, `Stealer`, `Steal`).

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    /// The owner side of a deque: pushes and pops locally.
    #[derive(Debug)]
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// The thief side of a deque: steals from the opposite end.
    #[derive(Debug)]
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Worker<T> {
        /// Creates a FIFO deque (owner pops the oldest task first).
        pub fn new_fifo() -> Worker<T> {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Creates a LIFO deque (owner pops the newest task first).
        pub fn new_lifo() -> Worker<T> {
            Worker::new_fifo()
        }

        /// A stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("deque poisoned").push_back(task);
        }

        /// Dequeues a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("deque poisoned").pop_front()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("deque poisoned").len()
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal one task from the victim's opposite end.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque poisoned").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_pop_order() {
            let w = Worker::new_fifo();
            w.push(1);
            w.push(2);
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
        }

        #[test]
        fn stealer_takes_from_back() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            assert_eq!(s.steal(), Steal::Success(2));
            assert_eq!(w.pop(), Some(1));
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn cross_thread_stealing_loses_nothing() {
            let w = Worker::new_fifo();
            for i in 0..10_000u64 {
                w.push(i);
            }
            let total: u64 = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let s = w.stealer();
                        scope.spawn(move || {
                            let mut sum = 0u64;
                            while let Steal::Success(v) = s.steal() {
                                sum += v;
                            }
                            sum
                        })
                    })
                    .collect();
                let mut local = 0u64;
                while let Some(v) = w.pop() {
                    local += v;
                }
                local + handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            });
            assert_eq!(total, 10_000 * 9_999 / 2);
        }
    }
}
