//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `criterion` to this minimal timing harness. It supports the subset of
//! the criterion API the benches use — `benchmark_group`, `sample_size`,
//! `measurement_time`, `throughput`, `bench_function`, `iter` — and prints
//! one line per benchmark: median ns/iteration over the collected samples
//! (plus element throughput when configured). There is no statistical
//! regression analysis or HTML report; the numbers are honest wall-clock
//! medians, good enough for the EXPERIMENTS.md tables.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle, passed to every bench target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        self.benchmark_group("").bench_function(name, f);
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for measurement of each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its median time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let name = name.into();
        let label = if self.name.is_empty() {
            name
        } else {
            format!("{}/{}", self.name, name)
        };

        // Calibrate: how many iterations fit one sample's time slice?
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let slice = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = (slice.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 24) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];

        let thrpt = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  thrpt: {:.3} Melem/s", n as f64 * 1e3 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 * 1e9 / median / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{label:<44} time: [{} {} {}]{thrpt}",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
    }

    /// Ends the group (printing is incremental; this is a no-op kept for
    /// API compatibility).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine `iters` times and records the elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn group_macros_compile() {
        fn target(c: &mut Criterion) {
            c.benchmark_group("m")
                .measurement_time(Duration::from_millis(10))
                .sample_size(2)
                .bench_function("x", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(g, target);
        g();
    }
}
